"""Zero-dependency line-coverage measurement for offline environments.

CI measures coverage with ``pytest-cov`` (see ``.github/workflows/ci.yml``),
but the offline container this reproduction targets has neither
``coverage`` nor ``pytest-cov``.  This tool fills the gap with the
stdlib only: a ``sys.settrace`` hook records every executed line in
``src/repro`` while the test suite runs, and the denominator comes from
compiling each source file and walking its code objects' ``co_lines``
tables — the same definition of "executable line" coverage.py uses.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py              # full suite
    PYTHONPATH=src python tools/measure_coverage.py tests/obs    # a subset
    PYTHONPATH=src python tools/measure_coverage.py --fail-under 80

Tracing costs roughly a 2-4x slowdown; expect the full suite to take a
few minutes.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")


def executable_lines(path: str) -> set:
    """Every line number the compiler can attribute bytecode to."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # the compiler attributes module setup to line 0 on some versions
    lines.discard(0)
    return lines


def source_files() -> list:
    found = []
    for root, _dirs, names in os.walk(SRC):
        for name in sorted(names):
            if name.endswith(".py"):
                found.append(os.path.join(root, name))
    return found


class LineCollector:
    """A trace function that records executed (file, line) pairs.

    The global hook prunes at call granularity: frames outside
    ``src/repro`` return ``None`` so their lines are never traced,
    which keeps the slowdown tolerable.
    """

    def __init__(self) -> None:
        self.hits = {}

    def _local(self, frame, event, _arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def global_trace(self, frame, event, _arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(SRC):
            return None
        if filename not in self.hits:
            self.hits[filename] = set()
        return self._local

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "pytest_args",
        nargs="*",
        default=[],
        help="arguments forwarded to pytest (default: the whole suite)",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero if total coverage is below PCT",
    )
    parser.add_argument(
        "--show-files",
        action="store_true",
        help="print per-file coverage, worst first",
    )
    args = parser.parse_args(argv)

    import pytest

    collector = LineCollector()
    collector.install()
    try:
        exit_code = pytest.main(list(args.pytest_args) + ["-q", "-p", "no:cacheprovider"])
    finally:
        collector.uninstall()
    if exit_code != 0:
        print(f"test run failed (exit {exit_code}); coverage not reported")
        return int(exit_code)

    total_lines = 0
    total_hit = 0
    rows = []
    for path in source_files():
        lines = executable_lines(path)
        hit = collector.hits.get(path, set()) & lines
        total_lines += len(lines)
        total_hit += len(hit)
        if lines:
            rows.append((len(hit) / len(lines), path, len(hit), len(lines)))

    percent = 100.0 * total_hit / total_lines if total_lines else 100.0
    if args.show_files:
        for ratio, path, hit, count in sorted(rows):
            rel = os.path.relpath(path, REPO)
            print(f"{100 * ratio:6.1f}%  {hit:4d}/{count:<4d}  {rel}")
    print(
        f"TOTAL {percent:.1f}% line coverage "
        f"({total_hit}/{total_lines} lines, {len(rows)} files)"
    )
    if args.fail_under is not None and percent < args.fail_under:
        print(f"FAIL: coverage {percent:.1f}% is under the floor {args.fail_under}%")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
