"""Legacy setup shim for offline environments.

`pip install -e .` needs the `wheel` package (PEP 517/660 editable
installs build a wheel); fully offline boxes without it can install
with ``python setup.py develop`` instead. Metadata lives in
pyproject.toml either way.
"""

from setuptools import setup

setup()
