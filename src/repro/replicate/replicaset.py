"""The per-shard replication coordinator: quorum writes and failover.

A :class:`ReplicaSet` owns one shard's primary plus its replica stacks
and the shipping links to them, and holds the whole protocol state: the
record **stream** (what has been committed on the primary, in order),
the per-link shipping cursors, the **epoch** (bumped by every
failover; fences the previous primary), and the **failure detector**.

The write path is *commit-then-ship with revert*: the plan commits on
the primary (journal, audit, breaker — unchanged), the fresh committed
audit records are taken off a :class:`~repro.obs.audit.ShippingCursor`
and shipped to every link, and the client is acked only if at least
``quorum`` replicas confirmed durable receipt. A write that cannot
reach quorum is **reverted** on the primary (cells forced back to
before-images, audit resolved ``rolled_back``) and on any replica that
did receive it, then refused with
:class:`~repro.errors.ReplicationQuorumError` — the quorum-reachability
pre-check makes this revert path rare, exactly like the circuit
breaker's fail-fast before the write lock.

Failover promotes the most-caught-up live replica: drain its inbox
(replay the journal tail), bump the epoch, fence the old primary,
truncate the stream to the promoted prefix, and re-point everything —
:class:`~repro.shard.sharded.Shard` resolves ``serving`` through
``replica_set.primary`` dynamically, so routing follows automatically.
Because every acked write is on at least ``quorum ≥ 1`` replicas and
every replica holds a stream *prefix*, the promoted maximum contains
the union of all replicated records: no committed-acked write is lost.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

import repro.obs as obs
from repro.errors import (
    DegradedServiceError,
    FailoverInProgressError,
    FencedWriteError,
    PrimaryDownError,
    ReplicationError,
    ReplicationQuorumError,
    TransientEngineError,
)
from repro.obs.audit import ROLLED_BACK, AuditRecord, ShippingCursor
from repro.relational.operations import UpdatePlan
from repro.replicate.link import ShippingLink
from repro.replicate.replica import ReplicaStack, ShippedRecord
from repro.serve.concurrent import ConcurrentPenguin, ServedRead
from repro.structural.schema_graph import StructuralSchema

__all__ = ["FailureDetector", "ReplicaSet", "ReplicationConfig"]

#: Checkpoint hook: called with (stage, shard_id) at every shipping and
#: promotion step; the chaos-failover campaign kills primaries from it.
Checkpoint = Callable[[str, int], None]

#: The stages a checkpoint hook sees, in write-path then failover order.
CHECKPOINT_STAGES = (
    "pre_apply",
    "post_apply",
    "pre_ship",
    "post_ship",
    "pre_promote",
    "post_drain",
    "post_promote",
)


class ReplicationConfig:
    """How a :class:`~repro.shard.sharded.ShardedPenguin` replicates.

    Parameters
    ----------
    replicas:
        Replica stacks per shard.
    quorum:
        Durable receipts (replica acks) a write needs before the client
        is acked; defaults to 1. ``0`` means best-effort asynchronous
        shipping; must not exceed ``replicas``.
    miss_threshold:
        Consecutive missed probes/attempts before the failure detector
        declares the primary down and failover runs. Count-based, like
        the circuit breaker, so chaos runs are deterministic.
    apply_inline:
        Apply shipped records synchronously inside receive instead of
        on the applier thread — deterministic tests only; production
        keeps apply off the ack path.
    verify_images:
        Replicas verify every applied record against its shipped
        after-images byte for byte (divergent stacks are excluded from
        promotion). On by default.
    engine_factory:
        Zero-argument callable producing the relational engine each
        fresh replica stack stores into (e.g. ``SqliteEngine``). A
        replica that may be promoted should persist the way its
        primary does; ``None`` keeps the in-memory default.
    """

    def __init__(
        self,
        replicas: int = 1,
        quorum: Optional[int] = None,
        miss_threshold: int = 3,
        apply_inline: bool = False,
        verify_images: bool = True,
        engine_factory: Optional[Callable[[], Any]] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("replication needs at least one replica")
        if quorum is None:
            quorum = 1
        if not 0 <= quorum <= replicas:
            raise ValueError(
                f"quorum must be between 0 and {replicas}, got {quorum}"
            )
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        self.replicas = replicas
        self.quorum = quorum
        self.miss_threshold = miss_threshold
        self.apply_inline = apply_inline
        self.verify_images = verify_images
        self.engine_factory = engine_factory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicationConfig(replicas={self.replicas}, "
            f"quorum={self.quorum}, miss_threshold={self.miss_threshold})"
        )


class FailureDetector:
    """Count-based probe tracking, one per replica set.

    Deterministic on purpose (mirroring the circuit breaker's
    count-based probing): ``miss_threshold`` consecutive misses —
    failed writes against a dead primary, failed heartbeats — flip
    :attr:`down` and authorize failover; any success resets the count.
    """

    def __init__(self, miss_threshold: int = 3) -> None:
        self.miss_threshold = miss_threshold
        self.misses = 0
        self.total_misses = 0

    def record_ok(self) -> None:
        self.misses = 0

    def record_miss(self) -> None:
        self.misses += 1
        self.total_misses += 1

    @property
    def down(self) -> bool:
        return self.misses >= self.miss_threshold

    def reset(self) -> None:
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FailureDetector({self.misses}/{self.miss_threshold} missed)"
        )


class ReplicaSet:
    """One shard's primary + replicas, kept in sync by log shipping."""

    def __init__(
        self,
        shard_id: int,
        primary_serving: ConcurrentPenguin,
        graph: StructuralSchema,
        config: Optional[ReplicationConfig] = None,
        metric=None,
    ) -> None:
        self.shard_id = shard_id
        self.config = config or ReplicationConfig()
        self.graph = graph
        self.epoch = 1
        self.failovers = 0
        self.failing_over = False
        #: Optional (stage, shard_id) hook; see :data:`CHECKPOINT_STAGES`.
        self.failpoint: Optional[Checkpoint] = None
        self.primary = ReplicaStack(shard_id, "primary", serving=primary_serving)
        self.detector = FailureDetector(self.config.miss_threshold)
        self._replicas: List[ReplicaStack] = []
        self._links: Dict[str, ShippingLink] = {}
        for index in range(self.config.replicas):
            replica = ReplicaStack(
                shard_id,
                f"r{index + 1}",
                graph=graph,
                metric=metric,
                apply_inline=self.config.apply_inline,
                verify_images=self.config.verify_images,
                engine_factory=self.config.engine_factory,
            )
            self._replicas.append(replica)
            self._links[replica.name] = ShippingLink(replica)
        self._stream: List[ShippedRecord] = []
        self._cursor = ShippingCursor(self.primary.audit)
        # Serializes apply+ship per shard so stream positions stay
        # dense and ordered; reads never take it.
        self._mutex = threading.RLock()
        obs.metrics().gauge(
            "replication_epoch", shard=str(shard_id)
        ).set(self.epoch)

    # -- topology accessors --------------------------------------------------

    @property
    def replicas(self) -> List[ReplicaStack]:
        return list(self._replicas)

    def replica(self, name: str) -> ReplicaStack:
        for replica in self._replicas:
            if replica.name == name:
                return replica
        raise KeyError(name)

    def link(self, name: str) -> ShippingLink:
        return self._links[name]

    @property
    def stream_length(self) -> int:
        return len(self._stream)

    def lag(self, replica: ReplicaStack) -> int:
        """Stream records this replica has not applied yet."""
        return max(0, len(self._stream) - replica.applied_count)

    def quorum_reachable(self) -> bool:
        """Whether enough replicas could plausibly ack a write now."""
        reachable = sum(
            1
            for replica in self._replicas
            if not replica.divergent and self._links[replica.name].reachable
        )
        return reachable >= self.config.quorum

    def _checkpoint(self, stage: str) -> None:
        if self.failpoint is not None:
            self.failpoint(stage, self.shard_id)

    # -- the replicated write path -------------------------------------------

    def apply_plan(
        self, name: str, plan: UpdatePlan, op: str = "update", items: int = 1
    ) -> UpdatePlan:
        """Commit on the primary, ship, ack only on quorum receipt."""
        with self._mutex:
            self._ensure_primary_up()
            if not self.quorum_reachable():
                obs.metrics().counter(
                    "replication_refused_total",
                    shard=str(self.shard_id),
                    reason="quorum_unreachable",
                ).inc()
                raise ReplicationQuorumError(
                    f"shard {self.shard_id}: only "
                    f"{sum(1 for r in self._replicas if self._links[r.name].reachable)}"
                    f" replica link(s) reachable, quorum is "
                    f"{self.config.quorum}; write refused"
                )
            self._checkpoint("pre_apply")
            audit = self.primary.audit
            result = self.primary.serving.apply_plan(
                name, plan, op=op, items=items
            )
            self._checkpoint("post_apply")
            for record in self._cursor.take():
                shipped = ShippedRecord.from_audit(record)
                try:
                    self._append_and_ship(shipped)
                except ReplicationQuorumError:
                    self._revert_primary(record)
                    raise
            self._update_lag_metrics()
            return result

    def ship_record(self, record: ShippedRecord) -> None:
        """Ship an externally built record (the 2PC sub-plan path).

        Appends to the stream and requires the same quorum as a local
        write; on failure the record is retracted everywhere and
        :class:`~repro.errors.ReplicationQuorumError` propagates into
        the caller's abort path.
        """
        with self._mutex:
            self._ensure_primary_up()
            self._append_and_ship(record)
            self._update_lag_metrics()

    def retract_last(self) -> None:
        """Undo the newest shipped record everywhere (cross-shard abort)."""
        with self._mutex:
            if not self._stream:
                return
            self._retract(len(self._stream), self._stream[-1])

    def skip_externally_shipped(self, asn: int) -> None:
        """Mark a primary audit record as replicated by another channel.

        The cross-shard path ships each participant its sub-plan during
        the transaction, then audits the *full* coalesced plan on the
        owner; the shipping cursor must skip that owner record or the
        next local write would ship foreign sub-plans to this shard's
        replicas.
        """
        with self._mutex:
            self._cursor.skip(asn)

    def catch_up(self) -> int:
        """Re-ship every backlog and drain every replica; returns ships.

        The heal path after a partition: wedged links accumulate
        backlog, :meth:`catch_up` (or the next write) pushes it, and
        the lag gauge returns to zero.
        """
        shipped = 0
        with self._mutex:
            for replica in self._replicas:
                link = self._links[replica.name]
                before = link.cursor
                try:
                    self._ship_backlog(link)
                except (TransientEngineError, ReplicationError):
                    pass
                shipped += link.cursor - before
            self._update_lag_metrics()
        for replica in self._replicas:
            if not replica.killed:
                replica.drain()
        self._update_lag_metrics()
        return shipped

    # -- write-path internals ------------------------------------------------

    def _ensure_primary_up(self) -> None:
        """Fail, fail over, or fall through — the write-path detector.

        Every attempt against a dead or fenced primary counts one miss;
        once the detector crosses its threshold the failover runs right
        here and the write proceeds against the new primary.
        """
        if self.failing_over:
            raise FailoverInProgressError(
                f"shard {self.shard_id}: failover in progress; retry"
            )
        while self.primary.killed or self.primary.fenced:
            self.detector.record_miss()
            obs.metrics().counter(
                "replication_probe_misses_total", shard=str(self.shard_id)
            ).inc()
            if not self.detector.down:
                raise PrimaryDownError(
                    f"shard {self.shard_id}: primary unreachable "
                    f"({self.detector.misses}/{self.detector.miss_threshold}"
                    f" missed probes)"
                )
            self._failover()

    def _append_and_ship(self, shipped: ShippedRecord) -> None:
        with obs.tracer().span(
            "replicate.ship",
            shard=self.shard_id,
            object=shipped.object_name,
        ) as span:
            self._append_and_ship_traced(shipped, span)

    def _append_and_ship_traced(
        self, shipped: ShippedRecord, span
    ) -> None:
        self._stream.append(shipped)
        position = len(self._stream)
        acks = 0
        for replica in self._replicas:
            link = self._links[replica.name]
            self._checkpoint("pre_ship")
            if self.primary.killed:
                # The primary died before this record left the box: the
                # client is not acked. Replicas that already hold it
                # keep it — the plan applied atomically, nothing tears.
                self.detector.record_miss()
                raise PrimaryDownError(
                    f"shard {self.shard_id}: primary died mid-ship"
                )
            try:
                self._ship_backlog(link)
            except FencedWriteError:
                obs.metrics().counter(
                    "replication_ships_total",
                    shard=str(self.shard_id),
                    outcome="fenced",
                ).inc()
                continue
            except (TransientEngineError, ReplicationError):
                obs.metrics().counter(
                    "replication_ships_total",
                    shard=str(self.shard_id),
                    outcome="fault",
                ).inc()
                continue
            if link.cursor >= position:
                acks += 1
        self._checkpoint("post_ship")
        span.set(position=position, acks=acks)
        if acks < self.config.quorum:
            self._retract(position, shipped)
            obs.metrics().counter(
                "replication_refused_total",
                shard=str(self.shard_id),
                reason="quorum_failed",
            ).inc()
            obs.anomaly(
                "quorum_revert",
                shard=self.shard_id,
                acks=acks,
                quorum=self.config.quorum,
                object=shipped.object_name,
            )
            raise ReplicationQuorumError(
                f"shard {self.shard_id}: write reached {acks} replica(s), "
                f"quorum is {self.config.quorum}; reverted"
            )
        obs.metrics().counter(
            "replication_ships_total", shard=str(self.shard_id), outcome="ok"
        ).inc()

    def _ship_backlog(self, link: ShippingLink) -> None:
        """Push everything past this link's cursor, in stream order."""
        while link.cursor < len(self._stream):
            record = self._stream[link.cursor]
            link.send(self.epoch, link.cursor + 1, record)
            link.cursor += 1

    def _retract(self, position: int, record: ShippedRecord) -> None:
        if position != len(self._stream):
            raise ReplicationError(
                f"shard {self.shard_id}: can only retract the stream head"
            )
        self._stream.pop()
        for replica in self._replicas:
            link = self._links[replica.name]
            if link.cursor >= position:
                replica.retract(position, record)
                link.cursor = position - 1

    def _revert_primary(self, record: AuditRecord) -> None:
        """Roll the primary's own commit back after a quorum failure."""
        from repro.shard.twophase import _force_images

        _force_images(self.primary.engine, record.images(), to_after=False)
        self.primary.audit.resolve(
            record.asn,
            ROLLED_BACK,
            error="replication quorum not reached",
        )

    # -- failure detection and failover --------------------------------------

    def probe(self) -> Dict[str, Any]:
        """One heartbeat: update the detector, fail over if warranted."""
        with self._mutex:
            up = not (self.primary.killed or self.primary.fenced)
            if up:
                self.detector.record_ok()
            else:
                self.detector.record_miss()
                obs.metrics().counter(
                    "replication_probe_misses_total",
                    shard=str(self.shard_id),
                ).inc()
                if self.detector.down:
                    try:
                        self._failover()
                    except DegradedServiceError:
                        pass  # no promotable replica; stay down
            return self.health()

    def _failover(self) -> None:
        """Promote the most-caught-up live replica; fence the old primary.

        Caller holds the mutex. Raises
        :class:`~repro.errors.PrimaryDownError` when no replica can be
        promoted (all dead or divergent) — the shard is then fully down.
        """
        self.failing_over = True
        try:
            self._checkpoint("pre_promote")
            old = self.primary
            old.fenced = True
            candidates = [
                replica
                for replica in self._replicas
                if not replica.killed and not replica.divergent
            ]
            if not candidates:
                raise PrimaryDownError(
                    f"shard {self.shard_id}: primary is down and no live "
                    f"replica can be promoted"
                )
            candidates.sort(key=lambda r: (-r.received_count, r.name))
            chosen = candidates[0]
            chosen.drain()  # replay the journal tail before serving
            self._checkpoint("post_drain")
            self.epoch += 1
            chosen.epoch = self.epoch
            promoted_prefix = chosen.applied_count
            self._replicas.remove(chosen)
            del self._links[chosen.name]
            self.primary = chosen
            # Every surviving replica holds a prefix of the promoted
            # prefix (the chosen had the maximum), so truncating the
            # stream and clamping cursors keeps positions dense.
            self._stream = self._stream[:promoted_prefix]
            for replica in self._replicas:
                link = self._links[replica.name]
                link.cursor = min(link.cursor, replica.received_count)
            self._cursor = ShippingCursor(chosen.audit)
            self.detector.reset()
            self.failovers += 1
            registry = obs.metrics()
            registry.counter(
                "replication_failovers_total", shard=str(self.shard_id)
            ).inc()
            registry.gauge(
                "replication_epoch", shard=str(self.shard_id)
            ).set(self.epoch)
            self._update_lag_metrics()
            obs.anomaly(
                "failover",
                shard=self.shard_id,
                promoted=chosen.name,
                fenced=old.name,
                epoch=self.epoch,
            )
            self._checkpoint("post_promote")
        finally:
            self.failing_over = False

    # -- reads ---------------------------------------------------------------

    def get_served(self, name: str, key: Sequence[Any]) -> ServedRead:
        primary = self._live_primary()
        if primary is not None:
            try:
                return primary.serving.get_served(name, key)
            except DegradedServiceError:
                pass
        return self._replica_read("get", name, key=key)

    def query_served(
        self, name: str, text: Optional[str] = None
    ) -> ServedRead:
        primary = self._live_primary()
        if primary is not None:
            try:
                return primary.serving.query_served(name, text)
            except DegradedServiceError:
                pass
        return self._replica_read("query", name, text=text)

    def _live_primary(self) -> Optional[ReplicaStack]:
        """The primary if it can serve; None routes to a replica.

        A read against a dead primary feeds the failure detector too,
        so a read-only workload still converges on failover.
        """
        if self.failing_over:
            raise FailoverInProgressError(
                f"shard {self.shard_id}: failover in progress; retry"
            )
        if not (self.primary.killed or self.primary.fenced):
            return self.primary
        with self._mutex:
            if self.primary.killed or self.primary.fenced:
                self.detector.record_miss()
                obs.metrics().counter(
                    "replication_probe_misses_total",
                    shard=str(self.shard_id),
                ).inc()
                if self.detector.down:
                    try:
                        self._failover()
                    except DegradedServiceError:
                        return None
            if self.primary.killed or self.primary.fenced:
                return None
            return self.primary

    def _replica_read(
        self,
        mode: str,
        name: str,
        key: Optional[Sequence[Any]] = None,
        text: Optional[str] = None,
    ) -> ServedRead:
        """Serve from the most-caught-up live replica, marked stale."""
        candidates = [
            replica
            for replica in self._replicas
            if not replica.killed and not replica.divergent
        ]
        candidates.sort(key=lambda r: (-r.received_count, r.name))
        for replica in candidates:
            try:
                replica.drain()
                if mode == "get":
                    served = replica.serving.get_served(name, key)
                else:
                    served = replica.serving.query_served(name, text)
            except DegradedServiceError:
                continue
            served.stale = True
            served.source = f"replica:{replica.name}"
            obs.metrics().counter(
                "replication_stale_reads_total", shard=str(self.shard_id)
            ).inc()
            return served
        raise DegradedServiceError(
            f"shard {self.shard_id}: primary is unavailable and no "
            f"replica can serve {name!r}"
        )

    # -- observability -------------------------------------------------------

    def _update_lag_metrics(self) -> None:
        registry = obs.metrics()
        for replica in self._replicas:
            registry.gauge(
                "replication_lag",
                shard=str(self.shard_id),
                replica=replica.name,
            ).set(self.lag(replica))

    def health(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "primary": self.primary.name,
            "primary_up": not (self.primary.killed or self.primary.fenced),
            "failing_over": self.failing_over,
            "failovers": self.failovers,
            "missed_probes": self.detector.misses,
            "stream": len(self._stream),
            "quorum": self.config.quorum,
            "replicas": [
                {
                    "name": replica.name,
                    "received": replica.received_count,
                    "applied": replica.applied_count,
                    "lag": self.lag(replica),
                    "killed": replica.killed,
                    "divergent": replica.divergent,
                    "link_wedged": self._links[replica.name].wedged,
                }
                for replica in self._replicas
            ],
        }

    def close(self) -> None:
        for replica in self._replicas:
            replica.close()
        self.primary.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaSet(shard={self.shard_id}, epoch={self.epoch}, "
            f"primary={self.primary.name!r}, "
            f"replicas={[r.name for r in self._replicas]})"
        )
