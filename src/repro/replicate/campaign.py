"""Seeded chaos-failover campaign: kill primaries, lose nothing.

``python -m repro chaos-failover --seed 0`` runs four legs against a
replicated :class:`~repro.shard.sharded.ShardedPenguin` and checks the
replication layer's invariants after each:

1. **Kill sweep** — the primary (or, in the promotion stages, the
   leading replica) is killed at every shipping and promotion
   checkpoint (:data:`~repro.replicate.replicaset.CHECKPOINT_STAGES`)
   while a seeded write stream runs. After the dust settles, every
   *acked* write must be readable with the exact content written, the
   promoted stack's audit replay must match its live state (the
   single-Penguin oracle), structural integrity must be clean, and
   every surviving replica must be byte-identical to its new primary.
2. **Concurrent load** — writer threads hammer inserts while a chaos
   controller kills shard primaries mid-load; same invariants, plus
   no writer may observe a torn result.
3. **Quorum & fencing** — the revert path (links wedged between commit
   and ship: the write must be rolled back everywhere and refused),
   the fail-fast path (all links wedged: refused before the primary
   commits), zombie fencing (a fenced epoch's late ship is rejected),
   and flaky-link backlog catch-up.
4. **Cross-shard** — a replicated cross-shard pivot re-homing commits
   on every participant's quorum and converges all replicas; with a
   participant's links wedged the transaction aborts untorn.

Unacked writes (the client saw an error) may legitimately be present
*or* absent afterwards — at-least-once ambiguity — but acked writes
must never be lost and no state may ever be torn.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    DegradedServiceError,
    FailoverInProgressError,
    FencedWriteError,
    PrimaryDownError,
    ReplicationQuorumError,
    ReproError,
)
from repro.obs.history import divergence
from repro.replicate.link import ShippingLink
from repro.replicate.replicaset import ReplicationConfig
from repro.shard import ShardedPenguin, sharded_loader
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)

__all__ = [
    "FailoverReport",
    "run_failover_campaign",
    "run_kill_sweep",
    "run_concurrent_load",
    "run_quorum_and_fencing",
    "run_cross_shard",
]

OBJECT_NAME = "patient_chart"

#: Checkpoints where the *primary* dies mid-write.
WRITE_STAGES = ("pre_apply", "post_apply", "pre_ship", "post_ship")
#: Checkpoints where the *promotion target* dies mid-failover.
PROMOTION_STAGES = ("pre_promote", "post_drain", "post_promote")


class FailoverReport:
    """Aggregated results and invariant violations of one campaign."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.kill_points = 0
        self.kills_injected = 0
        self.failovers = 0
        self.acked_writes = 0
        self.unacked_writes = 0
        self.lost_writes = 0
        self.torn_states = 0
        self.reverted_writes = 0
        self.refused_writes = 0
        self.fenced_ships = 0
        self.stale_reads = 0
        self.flaky_faults = 0
        self.oracle_replays = 0
        self.failures: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def require(self, condition: bool, message: str) -> None:
        if not condition:
            self.fail(message)

    def summary(self) -> str:
        lines = [
            f"chaos-failover campaign (seed={self.seed})",
            f"  kill sweep       : {self.kill_points} kill points, "
            f"{self.kills_injected} kills injected, "
            f"{self.failovers} failovers",
            f"  writes           : {self.acked_writes} acked, "
            f"{self.unacked_writes} unacked, "
            f"{self.lost_writes} LOST, {self.torn_states} torn",
            f"  quorum           : {self.reverted_writes} reverted, "
            f"{self.refused_writes} refused fast, "
            f"{self.fenced_ships} zombie ships fenced",
            f"  degraded reads   : {self.stale_reads} served stale "
            f"from replicas",
            f"  flaky shipping   : {self.flaky_faults} link faults "
            f"absorbed by backlog re-ship",
            f"  oracle           : {self.oracle_replays} audit replays "
            f"matched live state",
        ]
        if self.ok:
            lines.append("  invariants       : all held")
        else:
            lines.append(f"  invariants       : {len(self.failures)} VIOLATED")
            for message in self.failures:
                lines.append(f"    - {message}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Workload plumbing
# ---------------------------------------------------------------------------


def _chart(pid: int, label: str) -> Dict[str, Any]:
    return {
        "patient_id": pid,
        "name": label,
        "birth_year": 1960 + (pid % 40),
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "failover",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


def _build(
    patients: int = 4,
    shards: int = 2,
    replicas: int = 2,
    quorum: int = 1,
    miss_threshold: int = 3,
    apply_inline: bool = True,
) -> ShardedPenguin:
    graph = hospital_schema()
    sharded = ShardedPenguin(
        graph,
        "PATIENT",
        num_shards=shards,
        replication=ReplicationConfig(
            replicas=replicas,
            quorum=quorum,
            miss_threshold=miss_threshold,
            apply_inline=apply_inline,
        ),
    )
    populate_hospital(sharded_loader(sharded), HospitalConfig(patients=patients))
    sharded.register_object(patient_chart_object(graph))
    return sharded


def _insert_with_retry(
    sharded: ShardedPenguin,
    chart: Dict[str, Any],
    attempts: int = 12,
) -> bool:
    """One client write with realistic retries.

    Returns True iff the write was *acked* — either the insert
    succeeded, or a retry hit a duplicate key and the chart is readable
    (the first attempt landed before the primary died: at-least-once).
    """
    key = (chart["patient_id"],)
    for _ in range(attempts):
        try:
            sharded.insert(OBJECT_NAME, chart)
            return True
        except (
            PrimaryDownError,
            FailoverInProgressError,
            ReplicationQuorumError,
        ):
            continue
        except ReproError:
            try:
                if sharded.get(OBJECT_NAME, key) is not None:
                    return True
            except ReproError:
                pass
            return False
    return False


def _read_chart(
    sharded: ShardedPenguin, key: Tuple[Any, ...], attempts: int = 12
) -> Optional[Dict[str, Any]]:
    for _ in range(attempts):
        try:
            instance = sharded.get(OBJECT_NAME, key)
        except (FailoverInProgressError, DegradedServiceError):
            continue
        return None if instance is None else instance.to_dict()
    return None


def _verify_acked(
    report: FailoverReport,
    sharded: ShardedPenguin,
    acked: Dict[Tuple[Any, ...], str],
    context: str,
) -> None:
    """Every acked write must be readable with the content written."""
    for key, label in sorted(acked.items()):
        chart = _read_chart(sharded, key)
        if chart is None:
            report.lost_writes += 1
            report.fail(f"{context}: acked write {key} LOST")
        elif chart["name"] != label:
            report.torn_states += 1
            report.fail(
                f"{context}: acked write {key} torn — read "
                f"{chart['name']!r}, wrote {label!r}"
            )


def _verify_converged(
    report: FailoverReport,
    sharded: ShardedPenguin,
    context: str,
    oracle: bool = True,
) -> None:
    """Integrity, replica convergence, lag, and the audit-replay oracle.

    ``oracle=False`` skips the per-shard audit replay: a cross-shard
    transaction audits the *full* coalesced plan on the owner shard, so
    that shard's trail legitimately explains more than its own engine —
    the cross-shard leg verifies state equality directly instead.
    """
    violations = sharded.check_integrity()
    report.require(
        not violations,
        f"{context}: {len(violations)} structural integrity violations",
    )
    for shard in sharded.shards:
        replica_set = shard.replica_set
        replica_set.catch_up()
        for replica in replica_set.replicas:
            if replica.killed:
                continue
            if replica.divergent:
                report.fail(
                    f"{context}: shard {shard.shard_id} replica "
                    f"{replica.name} marked divergent: {replica.apply_error}"
                )
                continue
            differing = divergence(shard.engine, replica.engine)
            report.require(
                not differing,
                f"{context}: shard {shard.shard_id} replica {replica.name} "
                f"not byte-identical ({len(differing)} cells, first: "
                f"{differing[:1]})",
            )
            report.require(
                replica_set.lag(replica) == 0,
                f"{context}: shard {shard.shard_id} replica {replica.name} "
                f"lag stuck at {replica_set.lag(replica)}",
            )
        if oracle:
            replay = shard.penguin.replay_audit()
            report.oracle_replays += 1
            report.require(
                replay.ok,
                f"{context}: shard {shard.shard_id} audit replay diverged "
                f"from live state (oracle violation)",
            )


# ---------------------------------------------------------------------------
# Leg 1: kill sweep over every checkpoint
# ---------------------------------------------------------------------------


def _arm_kill(
    sharded: ShardedPenguin, stage: str, after_hits: int
) -> Dict[str, Any]:
    """Install a one-shot failpoint killing the right stack at ``stage``.

    Write-path stages kill the shard's *primary* mid-write; promotion
    stages kill the most-caught-up replica (the promotion target)
    mid-failover, forcing the failover to re-route or re-run.
    """
    state = {"hits": 0, "armed": True, "killed": None}

    def hook(hit_stage: str, shard_id: int) -> None:
        if not state["armed"] or hit_stage != stage:
            return
        state["hits"] += 1
        if state["hits"] < after_hits:
            return
        state["armed"] = False
        replica_set = sharded.shard(shard_id).replica_set
        if stage in PROMOTION_STAGES and stage != "post_promote":
            live = [r for r in replica_set.replicas if not r.killed]
            if not live:
                return
            target = max(live, key=lambda r: (r.received_count, r.name))
        else:
            target = replica_set.primary
        target.kill()
        state["killed"] = f"shard {shard_id} {target.name}"

    for shard in sharded.shards:
        shard.replica_set.failpoint = hook
    return state


def run_kill_sweep(
    report: FailoverReport,
    seed: int = 0,
    patients: int = 4,
    writes: int = 8,
) -> FailoverReport:
    """Kill the primary at every checkpoint stage during a write stream."""
    for stage in WRITE_STAGES:
        sharded = _build(patients=patients)
        trigger = 3 + (seed % 3)
        state = _arm_kill(sharded, stage, trigger)
        report.kill_points += 1
        acked: Dict[Tuple[Any, ...], str] = {}
        for i in range(writes):
            label = f"sweep {stage} {i}"
            chart = _chart(70_000 + i, label)
            if _insert_with_retry(sharded, chart):
                acked[(chart["patient_id"],)] = label
                report.acked_writes += 1
            else:
                report.unacked_writes += 1
        if state["killed"] is not None:
            report.kills_injected += 1
        _verify_acked(report, sharded, acked, f"kill sweep {stage}")
        _verify_converged(report, sharded, f"kill sweep {stage}")
        report.failovers += sum(
            shard.replica_set.failovers for shard in sharded.shards
        )
        sharded.close()

    # Promotion-stage kills: down the primary first, then kill the
    # promotion target while the failover itself is running.
    for stage in PROMOTION_STAGES:
        sharded = _build(patients=patients)
        acked = {}
        for i in range(writes // 2):
            label = f"promote {stage} {i}"
            chart = _chart(71_000 + i, label)
            if _insert_with_retry(sharded, chart):
                acked[(chart["patient_id"],)] = label
                report.acked_writes += 1
        victim_shard = sharded.shard(seed % sharded.num_shards)
        state = _arm_kill(sharded, stage, 1)
        victim_shard.replica_set.primary.kill()
        report.kill_points += 1
        for i in range(writes // 2, writes):
            label = f"promote {stage} {i}"
            chart = _chart(71_000 + i, label)
            if _insert_with_retry(sharded, chart):
                acked[(chart["patient_id"],)] = label
                report.acked_writes += 1
            else:
                report.unacked_writes += 1
        if state["killed"] is not None:
            report.kills_injected += 1
        _verify_acked(report, sharded, acked, f"promotion kill {stage}")
        _verify_converged(report, sharded, f"promotion kill {stage}")
        report.failovers += sum(
            shard.replica_set.failovers for shard in sharded.shards
        )
        sharded.close()
    return report


# ---------------------------------------------------------------------------
# Leg 2: concurrent load with mid-load primary kills
# ---------------------------------------------------------------------------


def run_concurrent_load(
    report: FailoverReport,
    seed: int = 0,
    patients: int = 4,
    writers: int = 4,
    writes_per_writer: int = 8,
) -> FailoverReport:
    """Writer threads vs. a chaos controller killing primaries mid-load."""
    sharded = _build(patients=patients, apply_inline=False)
    acked: Dict[Tuple[Any, ...], str] = {}
    acked_lock = threading.Lock()
    total = writers * writes_per_writer

    def writer(index: int) -> None:
        for i in range(writes_per_writer):
            pid = 72_000 + index * 1_000 + i
            label = f"concurrent {index}.{i}"
            chart = _chart(pid, label)
            if _insert_with_retry(sharded, chart, attempts=20):
                with acked_lock:
                    acked[(pid,)] = label
                    report.acked_writes += 1
            else:
                with acked_lock:
                    report.unacked_writes += 1

    threads = [
        threading.Thread(target=writer, args=(index,), daemon=True)
        for index in range(writers)
    ]
    for thread in threads:
        thread.start()

    # Kill each shard's primary once the load is genuinely mid-flight.
    kill_order = sorted(
        range(sharded.num_shards), key=lambda s: (s + seed) % sharded.num_shards
    )
    killed = 0
    deadline = time.monotonic() + 10.0
    for shard_id in kill_order:
        threshold = (killed + 1) * total // (sharded.num_shards + 1)
        while time.monotonic() < deadline:
            with acked_lock:
                done = report.acked_writes + report.unacked_writes
            if done >= threshold:
                break
            time.sleep(0.001)
        sharded.shard(shard_id).replica_set.primary.kill()
        report.kill_points += 1
        report.kills_injected += 1
        killed += 1
    for thread in threads:
        thread.join(timeout=10.0)
    report.require(
        not any(thread.is_alive() for thread in threads),
        "concurrent load: a writer thread wedged",
    )

    _verify_acked(report, sharded, acked, "concurrent load")
    _verify_converged(report, sharded, "concurrent load")
    report.failovers += sum(
        shard.replica_set.failovers for shard in sharded.shards
    )
    report.require(
        all(shard.replica_set.failovers >= 1 for shard in sharded.shards),
        "concurrent load: a killed shard never failed over",
    )
    sharded.close()
    return report


# ---------------------------------------------------------------------------
# Leg 3: quorum refusal, revert, fencing, stale reads, flaky links
# ---------------------------------------------------------------------------


def _relation_states(engine) -> Dict[str, List[Tuple[Any, ...]]]:
    return {
        name: sorted(engine.scan(name), key=repr)
        for name in engine.relation_names()
    }


def run_quorum_and_fencing(
    report: FailoverReport, seed: int = 0, patients: int = 4
) -> FailoverReport:
    """The quorum, fencing, stale-read, and flaky-link invariants."""
    # -- revert path: links die between primary commit and ship ------------
    sharded = _build(patients=patients)
    shard = sharded.shard(0)
    replica_set = shard.replica_set

    def wedge_all(stage: str, shard_id: int) -> None:
        if stage == "post_apply" and shard_id == 0:
            for replica in replica_set.replicas:
                replica_set.link(replica.name).wedge()

    replica_set.failpoint = wedge_all
    before = _relation_states(shard.engine)
    chart = _chart(73_000, "must revert")
    owner = sharded.router.shard_of((73_000,))
    if owner != 0:  # route the probe chart to the wedged shard
        chart = _chart(73_000 + 1, "must revert")
        while sharded.router.shard_of((chart["patient_id"],)) != 0:
            chart["patient_id"] += 1
            chart["VISIT"][0]["patient_id"] = chart["patient_id"]
    try:
        sharded.insert(OBJECT_NAME, chart)
        report.fail("revert: write acked without reaching quorum")
    except ReplicationQuorumError:
        report.reverted_writes += 1
    replica_set.failpoint = None
    report.require(
        _relation_states(shard.engine) == before,
        "revert: primary state changed after a quorum-failed write",
    )
    tail = shard.penguin.audit.records()[-1]
    report.require(
        tail.outcome == "rolled_back",
        f"revert: audit tail is {tail.outcome!r}, expected 'rolled_back'",
    )
    # Heal and prove the shard still works, replicas untorn.
    for replica in replica_set.replicas:
        replica_set.link(replica.name).heal()
    report.require(
        _insert_with_retry(sharded, _chart(73_100, "after heal")),
        "revert: write refused after links healed",
    )
    _verify_converged(report, sharded, "revert")

    # -- fail-fast path: wedged links refuse before the primary commits ----
    for replica in replica_set.replicas:
        replica_set.link(replica.name).wedge()
    before = _relation_states(shard.engine)
    probe = _chart(chart["patient_id"] + 50, "must refuse")
    while sharded.router.shard_of((probe["patient_id"],)) != 0:
        probe["patient_id"] += 1
        probe["VISIT"][0]["patient_id"] = probe["patient_id"]
    try:
        sharded.insert(OBJECT_NAME, probe)
        report.fail("fail-fast: write acked with every link wedged")
    except ReplicationQuorumError:
        report.refused_writes += 1
    report.require(
        _relation_states(shard.engine) == before,
        "fail-fast: refused write touched the primary",
    )
    for replica in replica_set.replicas:
        replica_set.link(replica.name).heal()
    sharded.close()

    # -- stale reads + zombie fencing --------------------------------------
    sharded = _build(patients=patients, miss_threshold=10)
    shard = sharded.shard(0)
    replica_set = shard.replica_set
    label = "stale witness"
    witness = _chart(74_000, label)
    while sharded.router.shard_of((witness["patient_id"],)) != 0:
        witness["patient_id"] += 1
        witness["VISIT"][0]["patient_id"] = witness["patient_id"]
    _insert_with_retry(sharded, witness)
    old_primary = replica_set.primary
    old_epoch = replica_set.epoch
    old_primary.kill()
    # The detector threshold is high, so reads fall through to replicas.
    for _ in range(3):
        served = sharded.get_served(OBJECT_NAME, (witness["patient_id"],))
        report.require(
            served.stale and str(served.source).startswith("replica:"),
            f"stale reads: expected a marked replica read, got "
            f"stale={served.stale} source={served.source!r}",
        )
        report.require(
            served.value is not None
            and served.value.to_dict()["name"] == label,
            "stale reads: replica served wrong content",
        )
        report.stale_reads += 1
    # Force the failover, then replay the zombie's ship at the old epoch.
    probe = _chart(74_500, "post failover")
    while sharded.router.shard_of((probe["patient_id"],)) != 0:
        probe["patient_id"] += 1
        probe["VISIT"][0]["patient_id"] = probe["patient_id"]
    attempts = 0
    while replica_set.failovers == 0 and attempts < 50:
        attempts += 1
        try:
            sharded.insert(OBJECT_NAME, probe)
        except ReproError:
            continue
    report.require(
        replica_set.failovers > 0,
        "fencing: the dead primary never failed over under write load",
    )
    report.failovers += replica_set.failovers
    survivor = replica_set.replicas[0]
    zombie_link = ShippingLink(survivor)
    zombie_link.cursor = survivor.received_count
    try:
        zombie_link.send(
            old_epoch,
            survivor.received_count + 1,
            replica_set._stream[-1],
        )
        report.fail("fencing: a zombie primary's late ship was accepted")
    except FencedWriteError:
        report.fenced_ships += 1
    report.require(
        survivor.fenced_ships >= 1,
        "fencing: the survivor did not count the fenced ship",
    )
    sharded.close()

    # -- flaky links: transient ship faults absorbed by backlog re-ship ----
    from repro.relational.faults import FaultHook, FaultPlan

    sharded = _build(patients=patients)
    shard = sharded.shard(0)
    replica_set = shard.replica_set
    flaky = replica_set.link(replica_set.replicas[0].name)
    flaky.hook = FaultHook(FaultPlan(seed).transient_rate(0.4, ("ship",)))
    for i in range(10):
        label = f"flaky {i}"
        chart = _chart(75_000 + i, label)
        report.require(
            _insert_with_retry(sharded, chart),
            f"flaky links: write {i} refused despite a healthy quorum peer",
        )
        report.acked_writes += 1
    report.flaky_faults += flaky.hook.injected["transient"]
    report.require(
        flaky.hook.injected["transient"] > 0,
        "flaky links: the fault plan never fired",
    )
    flaky.hook = FaultHook(None)
    _verify_converged(report, sharded, "flaky links")
    sharded.close()
    return report


# ---------------------------------------------------------------------------
# Leg 4: replicated cross-shard transactions
# ---------------------------------------------------------------------------


def run_cross_shard(
    report: FailoverReport, seed: int = 0, patients: int = 4
) -> FailoverReport:
    """2PC commits on every participant's quorum — or aborts untorn."""
    sharded = _build(patients=patients)
    router = sharded.router
    pids = sorted(row[0] for row in sharded.all_rows("PATIENT"))
    old_pid = pids[seed % len(pids)]
    new_pid = next(
        candidate
        for candidate in range(80_000, 80_100)
        if router.shard_of((candidate,)) != router.shard_of((old_pid,))
    )

    def rehome(node: Dict[str, Any], pid: int) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key, value in node.items():
            if key == "patient_id":
                out[key] = pid
            elif isinstance(value, list):
                out[key] = [rehome(child, pid) for child in value]
            else:
                out[key] = value
        return out

    moved = rehome(sharded.get(OBJECT_NAME, (old_pid,)).to_dict(), new_pid)
    sharded.replace(OBJECT_NAME, (old_pid,), moved)
    report.acked_writes += 1
    chart = _read_chart(sharded, (new_pid,))
    report.require(
        chart is not None and _read_chart(sharded, (old_pid,)) is None,
        "cross-shard: re-homed chart not moved",
    )
    _verify_converged(report, sharded, "cross-shard commit", oracle=False)

    # Wedge the *other* participant's links: the transaction must abort
    # before any commit marker, leaving both shards untouched.
    victim_pid = next(p for p in pids if p != old_pid)
    target_pid = next(
        candidate
        for candidate in range(81_000, 81_100)
        if router.shard_of((candidate,)) != router.shard_of((victim_pid,))
    )
    target_shard = sharded.shard(router.shard_of((target_pid,)))
    for replica in target_shard.replica_set.replicas:
        target_shard.replica_set.link(replica.name).wedge()
    states = [_relation_states(s.engine) for s in sharded.shards]
    moved = rehome(
        sharded.get(OBJECT_NAME, (victim_pid,)).to_dict(), target_pid
    )
    try:
        sharded.replace(OBJECT_NAME, (victim_pid,), moved)
        report.fail("cross-shard: committed with a participant quorum down")
    except ReplicationQuorumError:
        report.refused_writes += 1
    report.require(
        [_relation_states(s.engine) for s in sharded.shards] == states,
        "cross-shard: aborted transaction left a torn participant",
    )
    for replica in target_shard.replica_set.replicas:
        target_shard.replica_set.link(replica.name).heal()
    _verify_converged(report, sharded, "cross-shard fail-fast", oracle=False)

    # Mid-transaction quorum loss: the pre-check passes, then the
    # participant's links die during shipping. The 2PC must abort
    # inline — every participant reverted, no commit markers.
    target_rs = target_shard.replica_set

    def wedge_mid_ship(stage: str, shard_id: int) -> None:
        if stage == "pre_ship":
            for replica in target_rs.replicas:
                target_rs.link(replica.name).wedge()

    target_rs.failpoint = wedge_mid_ship
    states = [_relation_states(s.engine) for s in sharded.shards]
    moved = rehome(
        sharded.get(OBJECT_NAME, (victim_pid,)).to_dict(), target_pid
    )
    try:
        sharded.replace(OBJECT_NAME, (victim_pid,), moved)
        report.fail("cross-shard: committed despite a mid-ship quorum loss")
    except ReplicationQuorumError:
        report.reverted_writes += 1
    target_rs.failpoint = None
    for replica in target_rs.replicas:
        target_rs.link(replica.name).heal()
    report.require(
        [_relation_states(s.engine) for s in sharded.shards] == states,
        "cross-shard: mid-ship abort left a torn participant",
    )
    _verify_converged(report, sharded, "cross-shard mid-ship abort", oracle=False)
    sharded.close()
    return report


# ---------------------------------------------------------------------------
# The full campaign
# ---------------------------------------------------------------------------


def run_failover_campaign(
    seed: int = 0, patients: int = 4, writes: int = 8
) -> FailoverReport:
    """All four legs; returns the aggregated report (``report.ok``)."""
    report = FailoverReport(seed)
    run_kill_sweep(report, seed=seed, patients=patients, writes=writes)
    run_concurrent_load(report, seed=seed, patients=patients)
    run_quorum_and_fencing(report, seed=seed, patients=patients)
    run_cross_shard(report, seed=seed, patients=patients)
    return report
