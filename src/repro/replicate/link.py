"""The shipping link: the fault surface between primary and replica.

A :class:`ShippingLink` is the only path a shipped record takes to its
replica, which makes it the natural place to model network failure.
Two mechanisms cover the failure modes the tests and the chaos
campaign need:

* an explicit partition — :meth:`ShippingLink.wedge` makes every send
  fail with :class:`~repro.errors.TransientEngineError` until
  :meth:`ShippingLink.heal`; deterministic, no rule bookkeeping;
* a seeded :class:`~repro.relational.faults.FaultPlan`, ticked through
  a :class:`~repro.relational.faults.FaultHook` under the operation
  name ``"ship"`` — the same rule language the engines use
  (``transient_rate``, ``transient_burst``, ``latency``, ...), so a
  flaky link is reproducible from a seed.

A failed send does not lose the record: the primary's
:class:`~repro.replicate.replicaset.ReplicaSet` keeps the stream and
re-ships the backlog from this link's cursor on the next write (or an
explicit catch-up), and the replica's position check makes re-delivery
idempotent.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransientEngineError
from repro.relational.faults import FaultHook, FaultPlan
from repro.replicate.replica import ReplicaStack, ShippedRecord

__all__ = ["ShippingLink"]


class ShippingLink:
    """One primary-to-replica shipping channel with injectable faults.

    :attr:`cursor` is the primary-side shipping position: how many
    stream records this replica has confirmed durable receipt of. It
    only advances when :meth:`send` returns, so a fault leaves the
    backlog intact for redelivery.
    """

    def __init__(
        self, replica: ReplicaStack, plan: Optional[FaultPlan] = None
    ) -> None:
        self.replica = replica
        self.hook = FaultHook(plan)
        self.cursor = 0
        self.sends = 0
        self._wedged = False

    # -- partition control ---------------------------------------------------

    def wedge(self) -> None:
        """Partition the link: every send fails until :meth:`heal`."""
        self._wedged = True

    def heal(self) -> None:
        self._wedged = False

    @property
    def wedged(self) -> bool:
        return self._wedged

    @property
    def reachable(self) -> bool:
        """Whether a send could plausibly succeed right now."""
        return not self._wedged and not self.replica.killed

    # -- shipping ------------------------------------------------------------

    def send(self, epoch: int, position: int, record: ShippedRecord) -> None:
        """Deliver one stream record; raises on partition/fault/fence."""
        if self._wedged:
            raise TransientEngineError(
                f"shipping link to replica {self.replica.name!r} is "
                f"partitioned"
            )
        self.hook.tick("ship")
        self.replica.receive(epoch, position, record)
        self.sends += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShippingLink(to={self.replica.name!r}, cursor={self.cursor}, "
            f"wedged={self._wedged})"
        )
