"""Per-shard replication: log shipping, failure detection, failover.

PR 6 made every shard a full stack — and a single point of failure.
This package gives each shard a **primary** and N **replica** stacks
kept in sync by *log shipping*: the primary's committed audit records
(ASN-ordered coalesced plans, PR 5) are streamed over a
:class:`~repro.replicate.link.ShippingLink` and applied on the replica
through the same ``apply_plan`` flush-half entry point the sharded
write path uses — plans propagate as deltas, never re-translated
(Incremental Relational Lenses, PAPERS.md), and every applied record is
verified byte-identically against its shipped after-images
(BIRDS-style, PAPERS.md).

The protocol is a position-numbered prefix stream: a replica accepts
ship ``p`` only after ``p-1``, so each replica always holds a strict
prefix of the primary's stream, the most-caught-up replica holds the
union of everything replicated, and — with a quorum of at least one —
promotion after a primary kill can never lose a client-acked write.
Acknowledgement is *durable receipt* (the record lands in the replica's
inbox), not apply; an applier thread drains the inbox off the critical
path, and promotion drains it synchronously ("replay the journal
tail"). Epoch numbers fence the old primary: a zombie's late ships
carry a stale epoch and are rejected.

:class:`~repro.replicate.replicaset.ReplicaSet` coordinates one
shard's stacks; :class:`~repro.shard.sharded.ShardedPenguin` grows a
``replication=ReplicationConfig(...)`` parameter that attaches one set
per shard and re-points routing through it. The
``python -m repro chaos-failover`` campaign
(:mod:`repro.replicate.campaign`) kills primaries mid-load at seeded
checkpoints and asserts zero committed-write loss.
"""

from repro.replicate.link import ShippingLink
from repro.replicate.replica import ReplicaStack, ShippedRecord
from repro.replicate.replicaset import (
    FailureDetector,
    ReplicaSet,
    ReplicationConfig,
)

__all__ = [
    "FailureDetector",
    "ReplicaSet",
    "ReplicaStack",
    "ReplicationConfig",
    "ShippingLink",
    "ShippedRecord",
]
