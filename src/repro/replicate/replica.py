"""One replica stack and the record format the primary ships to it.

A :class:`ReplicaStack` is a full serving stack — its own engine,
journal, audit log, breaker, and materialized caches — identical in
shape to the shard primary it shadows. It stays in sync by receiving
:class:`ShippedRecord`\\ s in stream order and applying each through
``ConcurrentPenguin.apply_plan``, the same flush-half entry point the
sharded write path uses: journaled, audited, never re-translated.

The receive/apply split is the heart of the replication overhead
story. **Receive** is durable receipt — an epoch check, a position
check, and an inbox append of already-encoded payloads — and is what
the primary's quorum counts; it costs the write path almost nothing.
**Apply** happens off the critical path on an applier thread (or
inline, for deterministic tests), and promotion drains the inbox
synchronously, so an acked-but-unapplied record can never be lost by a
failover. Each applied record is verified against its shipped
after-images byte for byte; a mismatch marks the stack divergent and
excludes it from promotion.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

import repro.obs as obs
from repro.obs.context import TraceContext, attach, current_trace_id
from repro.errors import (
    FencedWriteError,
    ReplicaDivergenceError,
    ReplicationError,
    TransientEngineError,
)
from repro.obs.audit import COMMITTED, ROLLED_BACK, MemoryAuditLog
from repro.penguin import Penguin
from repro.relational.journal import (
    Images,
    MemoryJournal,
    decode_images,
    decode_plan,
    encode_images,
    encode_plan,
)
from repro.relational.operations import UpdatePlan
from repro.serve.concurrent import ConcurrentPenguin
from repro.structural.schema_graph import StructuralSchema

__all__ = ["ReplicaStack", "ShippedRecord"]


class ShippedRecord:
    """One unit of log shipping: a committed coalesced plan plus images.

    Decoupled from :class:`~repro.obs.audit.AuditRecord` on purpose:
    the fast path ships the primary's audit record payloads verbatim,
    but a cross-shard transaction ships each participant its *own
    sub-plan* while the owner audits the full coalesced plan — reusing
    the audit record type would conflate the two. Payloads stay in the
    journal's encoded form, so building a record from an audit record
    is free (no re-encoding on the write path).
    """

    __slots__ = (
        "op",
        "object_name",
        "plan_records",
        "image_records",
        "items",
        "trace_id",
    )

    def __init__(
        self,
        op: str,
        object_name: str,
        plan_records: List[Dict[str, Any]],
        image_records: List[List[Any]],
        items: int = 1,
        trace_id: Optional[str] = None,
    ) -> None:
        self.op = op
        self.object_name = object_name
        self.plan_records = plan_records
        self.image_records = image_records
        self.items = items
        # The originating request's trace id rides the shipped record
        # across the thread boundary contextvars cannot cross, so the
        # replica's applier-thread spans join the distributed trace.
        self.trace_id = trace_id

    @classmethod
    def from_audit(cls, record) -> "ShippedRecord":
        """Wrap a committed audit record's already-encoded payloads."""
        return cls(
            record.op,
            record.object_name,
            record.plan_records,
            record.image_records,
            items=record.items,
            trace_id=getattr(record, "trace_id", None),
        )

    @classmethod
    def from_plan(
        cls,
        op: str,
        object_name: str,
        plan: UpdatePlan,
        images: Images,
        items: int = 1,
        trace_id: Optional[str] = None,
    ) -> "ShippedRecord":
        if trace_id is None:
            trace_id = current_trace_id()
        return cls(
            op,
            object_name,
            encode_plan(plan),
            encode_images(images),
            items,
            trace_id=trace_id,
        )

    def plan(self) -> UpdatePlan:
        return decode_plan(self.plan_records)

    def images(self) -> Images:
        return decode_images(self.image_records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShippedRecord({self.object_name}.{self.op}, "
            f"{len(self.plan_records)} ops)"
        )


class ReplicaStack:
    """A full serving stack that follows a primary's shipped stream.

    ``received_count`` (applied + inboxed) is the stack's position in
    the stream: because :meth:`receive` only accepts position
    ``received_count + 1``, the stack's content is always a strict
    prefix of the primary's stream — the invariant failover's
    most-caught-up promotion rule rests on.

    Built fresh from a schema graph for replicas; wraps an existing
    :class:`~repro.serve.concurrent.ConcurrentPenguin` (``serving=``)
    when adopting a shard's original primary into the set.
    """

    def __init__(
        self,
        shard_id: int,
        name: str,
        graph: Optional[StructuralSchema] = None,
        serving: Optional[ConcurrentPenguin] = None,
        metric=None,
        apply_inline: bool = False,
        verify_images: bool = True,
        engine_factory=None,
    ) -> None:
        if serving is None:
            if graph is None:
                raise ValueError("a fresh ReplicaStack needs a schema graph")
            penguin = Penguin(
                graph,
                engine=engine_factory() if engine_factory is not None else None,
                metric=metric,
                install=True,
                audit=MemoryAuditLog(),
            )
            # Same discipline as ShardedPenguin: the journal is attached
            # after construction, so no solo recovery pass runs here.
            penguin.journal = MemoryJournal()
            serving = ConcurrentPenguin(penguin)
            serving.metric_labels = {"shard": str(shard_id), "replica": name}
            serving.component = f"shard{shard_id}/{name}"
        self.shard_id = shard_id
        self.name = name
        self.serving = serving
        self.epoch = 1
        self.killed = False
        self.fenced = False
        self.divergent = False
        self.apply_error: Optional[BaseException] = None
        self.apply_inline = apply_inline
        self.verify_images = verify_images
        self.fenced_ships = 0
        self._inbox: List[ShippedRecord] = []
        self._applied = 0
        self._lock = threading.RLock()
        # Serializes appliers with retract; held *around* each apply so
        # _lock (the ack path) is never taken for the apply's duration.
        self._apply_mutex = threading.RLock()
        self._wake = threading.Event()
        self._closing = False
        self._thread: Optional[threading.Thread] = None

    # -- stack accessors -----------------------------------------------------

    @property
    def penguin(self) -> Penguin:
        return self.serving.penguin

    @property
    def engine(self):
        return self.serving.penguin.engine

    @property
    def journal(self):
        return self.serving.penguin.journal

    @property
    def audit(self):
        return self.serving.penguin.audit

    # -- stream position -----------------------------------------------------

    @property
    def applied_count(self) -> int:
        with self._lock:
            return self._applied

    @property
    def received_count(self) -> int:
        """Stream records durably received (applied or inboxed)."""
        with self._lock:
            return self._applied + len(self._inbox)

    @property
    def inbox_size(self) -> int:
        with self._lock:
            return len(self._inbox)

    # -- lifecycle (chaos surface) -------------------------------------------

    def kill(self) -> None:
        """Model process death: receives and reads start failing."""
        self.killed = True

    def revive(self) -> None:
        self.killed = False

    # -- the shipping target -------------------------------------------------

    def receive(self, epoch: int, position: int, record: ShippedRecord) -> None:
        """Durably accept one stream record (this is the primary's ack).

        Enforces the two protocol invariants:

        * **fencing** — a ship with an epoch older than this stack has
          seen is a zombie primary's late write; rejected.
        * **prefix order** — only position ``received_count + 1`` is
          accepted. A lower position is a redelivery of something
          already held (idempotent success); a higher one is a gap and
          an error, so the sender falls back to backlog re-shipping.
        """
        if self.killed:
            raise TransientEngineError(
                f"replica {self.name!r} of shard {self.shard_id} is down"
            )
        with self._lock:
            if epoch < self.epoch:
                self.fenced_ships += 1
                obs.metrics().counter(
                    "replication_fenced_ships_total",
                    shard=str(self.shard_id),
                    replica=self.name,
                ).inc()
                raise FencedWriteError(
                    f"replica {self.name!r} is at epoch {self.epoch}; "
                    f"rejecting ship from fenced epoch {epoch}"
                )
            self.epoch = epoch
            expected = self._applied + len(self._inbox) + 1
            if position < expected:
                return  # duplicate delivery — already durably held
            if position > expected:
                raise ReplicationError(
                    f"replica {self.name!r}: stream gap — got position "
                    f"{position}, expected {expected}"
                )
            self._inbox.append(record)
        if self.apply_inline:
            self.drain()
        else:
            self._ensure_applier()
            self._wake.set()

    # -- applying ------------------------------------------------------------

    def drain(self) -> int:
        """Apply every inboxed record in order; returns how many.

        Called by the applier thread, by promotion ("replay the journal
        tail"), and before a replica serves a stale read. A record is
        only popped *after* its apply commits, so an apply failure
        leaves it queued for retry.

        The apply itself runs outside ``_lock``: the primary's ack path
        (:meth:`receive`) and its lag bookkeeping take that lock, and
        holding it across an apply would turn deferred apply into a
        convoy where every ship waits for the previous record's apply.
        ``_apply_mutex`` keeps appliers and :meth:`retract` serialized.
        """
        applied = 0
        with self._apply_mutex:
            while True:
                with self._lock:
                    if not self._inbox:
                        break
                    record = self._inbox[0]
                self._apply(record)
                with self._lock:
                    self._inbox.pop(0)
                    self._applied += 1
                applied += 1
            if applied:
                self.apply_error = None
        return applied

    def _apply(self, record: ShippedRecord) -> None:
        """Commit one shipped record: journaled, audited, breaker-guarded.

        Runs the lean twin of ``translator.apply_plan``: the shipped
        payloads are already in the journal's encoded form and carry the
        primary's before/after images, so the replica journals and
        audits them verbatim instead of recomputing images and
        re-encoding a plan it just decoded. Still goes through
        ``serving._write`` for the breaker and the write lock — stale
        reads never observe a half-applied record.
        """
        # Re-attach the originating request's trace context: the applier
        # thread has no ambient context of its own, and the journal
        # intent + audit record written below stamp the ambient trace
        # id, so the replica's trail cross-links back to the request.
        ctx = (
            TraceContext(record.trace_id)
            if record.trace_id is not None
            else None
        )
        with attach(ctx):
            with obs.tracer().span(
                "replica.apply",
                shard=self.shard_id,
                replica=self.name,
                op=record.op,
                object=record.object_name,
            ):
                self._apply_record(record)

    def _apply_record(self, record: ShippedRecord) -> None:
        penguin = self.serving.penguin
        plan = record.plan()

        def lean_apply():
            journal = penguin.journal
            audit = penguin.audit
            entry_id = None
            if journal is not None:
                entry_id = journal.begin_encoded(
                    record.plan_records,
                    record.image_records,
                    label=record.object_name,
                )
            try:
                penguin.engine.apply_batch(plan.operations)
            except Exception as exc:
                if entry_id is not None:
                    journal.mark_aborted(entry_id)
                if audit is not None:
                    audit.append(
                        op=record.op,
                        object_name=record.object_name,
                        outcome=ROLLED_BACK,
                        items=record.items,
                        error=f"{type(exc).__name__}: {exc}",
                        journal_entry=entry_id,
                        plan_records=record.plan_records,
                    )
                raise
            if entry_id is not None:
                journal.mark_committed(entry_id)
            if audit is not None:
                audit.append(
                    op=record.op,
                    object_name=record.object_name,
                    outcome=COMMITTED,
                    items=record.items,
                    journal_entry=entry_id,
                    plan_records=record.plan_records,
                    image_records=record.image_records,
                )
            return plan

        self.serving._write(
            lean_apply, op=record.op, object_name=record.object_name
        )
        if not self.verify_images:
            return
        for (relation, key), (_before, after) in record.images().items():
            current = self.engine.get(relation, key)
            if current != after:
                self.divergent = True
                raise ReplicaDivergenceError(
                    f"replica {self.name!r} diverged applying "
                    f"{record.object_name}.{record.op}: {relation}{key!r} "
                    f"is {current!r}, shipped after-image says {after!r}"
                )

    def retract(self, position: int, record: ShippedRecord) -> None:
        """Undo the newest stream record (primary quorum failure path).

        If the record is still inboxed it is simply dropped; if the
        applier already committed it, its cells are forced back to
        their before-images and its audit record is resolved to
        ``rolled_back`` — the replica's trail then matches the
        primary's own revert.

        Takes ``_apply_mutex`` first so a retract can never race an
        in-flight apply of the very record it is undoing: either the
        apply finished (force-images path) or never started (inbox pop).
        """
        with self._apply_mutex, self._lock:
            total = self._applied + len(self._inbox)
            if position > total:
                return  # never received; nothing to undo
            if position != total:
                raise ReplicationError(
                    f"replica {self.name!r}: can only retract the newest "
                    f"record (position {total}), not {position}"
                )
            if self._inbox:
                self._inbox.pop()
                return
            from repro.shard.twophase import _force_images

            _force_images(self.engine, record.images(), to_after=False)
            audit = self.audit
            if audit is not None and audit.head_asn() > 0:
                audit.resolve(
                    audit.head_asn(),
                    ROLLED_BACK,
                    error="replication quorum not reached on the primary",
                )
            self._applied -= 1

    # -- the applier thread --------------------------------------------------

    def _ensure_applier(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._applier_loop,
            name=f"replica-applier-{self.shard_id}-{self.name}",
            daemon=True,
        )
        self._thread.start()

    def _applier_loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._closing:
                return
            try:
                self.drain()
            except ReplicationError as exc:
                # Divergence is terminal for this stack; anything else
                # stays inboxed and is retried on the next wake (or by
                # the synchronous drain at promotion time).
                self.apply_error = exc
                if self.divergent:
                    return
            except Exception as exc:
                self.apply_error = exc

    def close(self) -> None:
        self._closing = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaStack(shard={self.shard_id}, name={self.name!r}, "
            f"epoch={self.epoch}, applied={self._applied}, "
            f"inbox={len(self._inbox)})"
        )
