"""The PENGUIN facade: one object for the whole workflow.

"A first prototype of our view-object model has been implemented in the
PENGUIN system." :class:`Penguin` plays that role for this library: it
owns a structural schema and an engine, defines view objects, runs the
definition-time dialog, and routes queries and updates through the
chosen translators.

>>> from repro import Penguin
>>> from repro.workloads import university_schema, populate_university
>>> penguin = Penguin(university_schema())
>>> __ = populate_university(penguin.engine)
>>> omega = penguin.define_object(
...     "course_info", pivot="COURSES",
...     selections={"COURSES": ("course_id", "title", "units", "level",
...                              "dept_name")})
>>> len(penguin.query("course_info", "level = 'graduate'")) > 0
True
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import repro.obs as obs
from repro.errors import ViewObjectError
from repro.core.information_metric import InformationMetric
from repro.core.instance import Instance
from repro.core.instantiation import Instantiator
from repro.core.query import execute_query
from repro.core.updates.policy import TranslatorPolicy
from repro.core.updates.translator import Translator
from repro.core.view_object import ViewObjectDefinition, define_view_object
from repro.dialog.answers import (
    AnswerSource,
    ConstantAnswers,
    MappingAnswers,
    ScriptedAnswers,
)
from repro.dialog.drivers import choose_translator
from repro.dialog.transcript import Transcript
from repro.materialize.maintainer import LAZY
from repro.materialize.store import MaterializedStore, MaterializedView
from repro.obs.audit import AuditLog
from repro.obs.explain import TranslationExplanation
from repro.obs.history import ReplayReport, as_of, replay
from repro.obs.lineage import LineageIndex, LineageLink
from repro.relational.engine import Engine
from repro.relational.journal import PlanJournal, RecoveryReport, recover
from repro.relational.memory_engine import MemoryEngine
from repro.relational.operations import UpdatePlan
from repro.relational.sqlite_engine import SqliteEngine
from repro.structural.integrity import IntegrityChecker, Violation
from repro.structural.schema_graph import StructuralSchema

__all__ = ["Penguin"]

AnswersLike = Union[AnswerSource, Sequence[bool], Mapping[str, bool], bool, None]


class Penguin:
    """A session over one structural schema and one storage engine.

    Parameters
    ----------
    graph:
        The structural schema; its relations are installed into the
        engine (with connection indexes) unless ``install=False``.
    engine:
        A storage engine; defaults to a fresh :class:`MemoryEngine`.
        Pass ``backend="sqlite"`` instead to get an in-memory sqlite
        engine.
    metric:
        The information metric used when defining objects.
    journal:
        An optional :class:`~repro.relational.journal.PlanJournal`.
        When set, every translated update plan is journaled as a
        write-ahead intent and :func:`~repro.relational.journal.recover`
        runs immediately (resolving any plan a previous process crashed
        in the middle of); the report is kept as
        :attr:`recovery_report`.
    audit:
        An optional :class:`~repro.obs.audit.AuditLog`. When set, every
        view-level update through this session is recorded (plan,
        before/after images, island, policy, outcome) and the lineage
        facade — :meth:`why`, :meth:`tuple_history`, :meth:`as_of`,
        :meth:`replay_audit` — becomes available. When both a journal
        and an audit log are set, startup recovery reconciles any
        update audited as ``crashed`` against the journal's verdict.
    """

    def __init__(
        self,
        graph: StructuralSchema,
        engine: Optional[Engine] = None,
        backend: str = "memory",
        metric: Optional[InformationMetric] = None,
        install: bool = True,
        verify_integrity: bool = False,
        journal: Optional[PlanJournal] = None,
        audit: Optional[AuditLog] = None,
        strictness: Optional[str] = None,
    ) -> None:
        self.graph = graph
        if engine is None:
            if backend == "memory":
                engine = MemoryEngine()
            elif backend == "sqlite":
                engine = SqliteEngine()
            else:
                raise ValueError(f"unknown backend {backend!r}")
        self.engine = engine
        self.metric = metric or InformationMetric()
        self.verify_integrity = verify_integrity
        self.journal = journal
        self.audit = audit
        # Definition-time strategy validation ("off" / "warn" /
        # "refuse"); None defers to the Translator's process default.
        self.strictness = strictness
        self.recovery_report: Optional[RecoveryReport] = None
        self._objects: Dict[str, ViewObjectDefinition] = {}
        self._translators: Dict[str, Translator] = {}
        self._checker = IntegrityChecker(graph)
        self._materialized = MaterializedStore(engine, audit=audit)
        self._lineage: Optional[LineageIndex] = None
        if install:
            graph.install(engine)
        if journal is not None:
            self.recovery_report = recover(engine, journal)
            if audit is not None:
                audit.reconcile(journal)

    # -- object definition ------------------------------------------------------

    def define_object(
        self,
        name: str,
        pivot: str,
        selections: Mapping[str, Sequence[str]],
        updatable: bool = True,
    ) -> ViewObjectDefinition:
        """Define a view object (Figure 2 pipeline) and register it."""
        if name in self._objects:
            raise ViewObjectError(f"view object {name!r} already defined")
        view_object = define_view_object(
            self.graph,
            name,
            pivot,
            selections,
            metric=self.metric,
            updatable=updatable,
        )
        self._objects[name] = view_object
        return view_object

    def register_object(self, view_object: ViewObjectDefinition) -> None:
        """Register an externally built definition (e.g. from
        :mod:`repro.workloads.figures`)."""
        if view_object.name in self._objects:
            raise ViewObjectError(
                f"view object {view_object.name!r} already defined"
            )
        self._objects[view_object.name] = view_object

    def object(self, name: str) -> ViewObjectDefinition:
        try:
            return self._objects[name]
        except KeyError:
            raise ViewObjectError(f"unknown view object: {name!r}") from None

    @property
    def object_names(self) -> Tuple[str, ...]:
        return tuple(self._objects)

    # -- translator choice --------------------------------------------------------

    def choose_translator(
        self, name: str, answers: AnswersLike = None
    ) -> Tuple[Translator, Transcript]:
        """Run the Section 6 dialog and bind the resulting translator.

        ``answers`` may be an :class:`AnswerSource`, a sequence of
        booleans (scripted), a mapping from question ids, a single
        boolean (constant), or None (fully permissive).
        """
        view_object = self.object(name)
        source = _coerce_answers(answers)
        translator, transcript = choose_translator(
            view_object,
            source,
            verify_integrity=self.verify_integrity,
            strictness=self.strictness,
        )
        translator.journal = self.journal
        translator.audit = self.audit
        self._translators[name] = translator
        return translator, transcript

    def set_policy(self, name: str, policy: TranslatorPolicy) -> Translator:
        """Bind a programmatically built policy instead of a dialog.

        Unlike the dialog, a programmatic policy can encode any switch
        combination — including ones the dialog would never produce —
        so the definition-time strategy checker runs here too: under
        ``strictness="refuse"`` a CRITICAL policy raises
        :class:`~repro.errors.UnsafeTranslatorError` before binding.
        """
        translator = Translator(
            self.object(name),
            policy=policy,
            verify_integrity=self.verify_integrity,
            journal=self.journal,
            audit=self.audit,
            strictness=self.strictness,
        )
        self._translators[name] = translator
        return translator

    def translator(self, name: str) -> Translator:
        """The bound translator; a permissive one is created on demand."""
        if name not in self._translators:
            self._translators[name] = Translator(
                self.object(name),
                verify_integrity=self.verify_integrity,
                journal=self.journal,
                audit=self.audit,
                strictness=self.strictness,
            )
        return self._translators[name]

    def risk_report(self, name: str):
        """The bound translator's definition-time risk report."""
        return self.translator(name).risk()

    def risk_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-object strategy risk for every defined object — the
        metadata the HTTP ``/objects`` index surfaces."""
        summary: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._objects):
            report = self.risk_report(name)
            summary[name] = {
                "level": report.level.value,
                "findings": len(report),
            }
        return summary

    # -- materialization -------------------------------------------------------------

    def materialize(self, name: str, policy: str = LAZY) -> MaterializedView:
        """Cache the object's assembled instances, maintained incrementally.

        Afterwards :meth:`query` and :meth:`get` serve instance assembly
        from the cache; the engine's changelog keeps it consistent under
        base updates, translated view updates, and transaction
        rollbacks. ``policy`` is one of ``"lazy"``, ``"eager"``, or
        ``"full-refresh"`` (see :mod:`repro.materialize.maintainer`).
        """
        return self._materialized.materialize(self.object(name), policy)

    def dematerialize(self, name: str) -> None:
        """Drop the object's cache and stop maintaining it."""
        self._materialized.dematerialize(name)

    def materialized(self, name: str) -> Optional[MaterializedView]:
        """The object's cache handle (stats, staleness, ...), or None."""
        return self._materialized.view(name)

    @property
    def materialized_names(self) -> Tuple[str, ...]:
        return self._materialized.names

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-object cache counters for every materialized object."""
        return self._materialized.stats_by_view()

    # -- queries --------------------------------------------------------------------

    def query(self, name: str, text: Optional[str] = None) -> List[Instance]:
        """Run an object query; None or empty text returns all instances.

        Materialized objects are served from their instance cache
        (brought up to date first); others assemble dynamically.
        """
        view_object = self.object(name)
        view = self._materialized.view(name)
        with obs.tracer().span(
            "penguin.query", object=name, materialized=view is not None
        ) as span:
            if not text:
                if view is not None:
                    results = view.all()
                else:
                    results = Instantiator(view_object).all(self.engine)
            else:
                results = execute_query(
                    view_object, self.engine, text, instantiator=view
                )
            span.set(results=len(results))
        obs.metrics().counter("queries_total", object=name).inc()
        return results

    def get(self, name: str, key: Sequence[Any]) -> Optional[Instance]:
        """One instance by object key, or None."""
        view = self._materialized.view(name)
        with obs.tracer().span(
            "penguin.get", object=name, materialized=view is not None
        ) as span:
            if view is not None:
                instance = view.get(key)
            else:
                instance = Instantiator(self.object(name)).by_key(
                    self.engine, key
                )
            span.set(found=instance is not None)
        obs.metrics().counter("gets_total", object=name).inc()
        return instance

    # -- updates ----------------------------------------------------------------------

    def insert(self, name: str, instance: Union[Instance, Mapping]) -> UpdatePlan:
        return self.translator(name).insert(self.engine, instance)

    def delete(
        self, name: str, key_or_instance: Union[Instance, Mapping, Sequence[Any]]
    ) -> UpdatePlan:
        if isinstance(key_or_instance, (Instance, Mapping)):
            return self.translator(name).delete(self.engine, key_or_instance)
        return self.translator(name).delete(self.engine, key=key_or_instance)

    def replace(
        self,
        name: str,
        old: Union[Instance, Mapping, Sequence[Any]],
        new: Union[Instance, Mapping],
    ) -> UpdatePlan:
        return self.translator(name).replace(self.engine, old, new)

    def delete_where(self, name: str, query: str) -> UpdatePlan:
        """Complete deletion of every instance matching an object query."""
        return self.translator(name).delete_where(self.engine, query)

    def update_where(self, name: str, query: str, transform) -> UpdatePlan:
        """Replace every matching instance by ``transform(instance_dict)``."""
        return self.translator(name).update_where(self.engine, query, transform)

    def explain_update(self, name: str, request) -> TranslationExplanation:
        """The would-be plan of one update request, without executing it.

        See :meth:`Translator.explain` — the update counterpart of the
        query planner's ``explain_query``.
        """
        return self.translator(name).explain(self.engine, request)

    # -- batched updates ---------------------------------------------------------------

    def insert_many(
        self, name: str, instances: Iterable[Union[Instance, Mapping]]
    ) -> UpdatePlan:
        """Insert a batch of instances as one coalesced, atomic plan.

        The batch is translated over a write buffer (later instances see
        earlier ones), deduplicated per (relation, key), validated once,
        and flushed through the engine's batch primitives — one
        transaction, ``executemany`` on sqlite.
        """
        return self.translator(name).insert_many(self.engine, instances)

    def delete_many(
        self,
        name: str,
        keys_or_instances: Iterable[Union[Instance, Mapping, Sequence[Any]]],
    ) -> UpdatePlan:
        """Delete a batch of instances (or object keys) atomically."""
        items = list(keys_or_instances)
        if items and not isinstance(items[0], (Instance, Mapping)):
            return self.translator(name).delete_many(self.engine, keys=items)
        return self.translator(name).delete_many(self.engine, items)

    def apply_plan_batch(self, name: str, requests: Iterable) -> UpdatePlan:
        """Translate a mixed batch of :class:`UpdateRequest` objects into
        one coalesced plan and apply it atomically."""
        return self.translator(name).apply_plan_batch(self.engine, requests)

    def apply_translated_plan(
        self, name: str, plan: UpdatePlan, op: str = "update", items: int = 1
    ) -> UpdatePlan:
        """Apply a plan produced by :meth:`explain_update` (or a shard
        coordinator), journaled and audited exactly like a translated
        update — without re-running translation."""
        return self.translator(name).apply_plan(
            self.engine, plan, op=op, items=items
        )

    # -- transactions ----------------------------------------------------------------

    def transaction(self):
        """Group several facade operations into one atomic unit.

        >>> # with penguin.transaction():
        >>> #     penguin.delete("course_info", ("CS101",))
        >>> #     penguin.insert("course_info", {...})
        On any exception, everything inside rolls back.
        """
        return self.engine.transaction()

    # -- catalog persistence -------------------------------------------------------

    def export_catalog(self) -> Dict[str, Any]:
        """Serialize every defined object (and any bound policy).

        "Only its definition is saved while base data remains stored in
        the relational database" — this is that saved definition set.
        """
        from repro.core.serialization import policy_to_dict, view_object_to_dict

        return {
            "objects": [
                view_object_to_dict(view_object)
                for view_object in self._objects.values()
            ],
            "policies": {
                name: policy_to_dict(translator.policy)
                for name, translator in self._translators.items()
            },
        }

    def import_catalog(self, catalog: Mapping[str, Any]) -> List[str]:
        """Load definitions (and policies) produced by ``export_catalog``.

        Returns the names of the objects loaded. Completers are code and
        do not persist; re-attach them via :meth:`set_policy` if needed.
        """
        from repro.core.serialization import (
            policy_from_dict,
            view_object_from_dict,
        )

        loaded = []
        for stored in catalog.get("objects", []):
            view_object = view_object_from_dict(self.graph, stored)
            self.register_object(view_object)
            loaded.append(view_object.name)
        for name, stored in catalog.get("policies", {}).items():
            if name in self._objects:
                self.set_policy(name, policy_from_dict(stored))
        return loaded

    # -- recovery -------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Resolve pending journal entries now (e.g. after a simulated
        crash mid-session); requires a journal. Idempotent. With an
        audit log attached, updates audited as ``crashed`` are
        reconciled against the journal's verdict afterwards."""
        if self.journal is None:
            raise ViewObjectError("this session has no plan journal")
        self.recovery_report = recover(self.engine, self.journal)
        if self.audit is not None:
            self.audit.reconcile(self.journal)
        return self.recovery_report

    # -- audit & lineage ---------------------------------------------------------

    def _require_audit(self) -> AuditLog:
        if self.audit is None:
            raise ViewObjectError(
                "this session has no audit log; pass audit=MemoryAuditLog() "
                "(or a FileAuditLog) to the Penguin constructor"
            )
        return self.audit

    def lineage(self) -> LineageIndex:
        """The per-tuple lineage index over this session's audit log.

        Cached; the index rebuilds itself lazily when the log grows.
        """
        audit = self._require_audit()
        if self._lineage is None or self._lineage.log is not audit:
            self._lineage = LineageIndex(audit)
        return self._lineage

    def why(self, relation: str, key: Sequence[Any]) -> List[LineageLink]:
        """The provenance chain of the base tuple at ``(relation, key)``:
        every committed view update that produced or touched it, oldest
        first, following key re-homing back to the originating update."""
        return self.lineage().why(relation, key)

    def tuple_history(
        self, relation: str, key: Sequence[Any]
    ) -> List[LineageLink]:
        """The before/after image sequence of one exact cell."""
        return self.lineage().history(relation, key)

    def as_of(self, asn: int, relation: Optional[str] = None):
        """The database (or one relation) reconstructed at a past ASN,
        verified cell-by-cell against the live head."""
        return as_of(self._require_audit(), self.engine, asn, relation=relation)

    def replay_audit(self, fresh_engine: Optional[Engine] = None) -> ReplayReport:
        """Re-execute the audited plans onto a fresh engine and compare
        final states byte-for-byte — the audit log as correctness oracle."""
        return replay(self._require_audit(), self.engine, fresh_engine)

    # -- integrity ---------------------------------------------------------------------

    def check_integrity(self) -> List[Violation]:
        return self._checker.check(self.engine)

    def is_consistent(self) -> bool:
        return self._checker.is_consistent(self.engine)


def _coerce_answers(answers: AnswersLike) -> AnswerSource:
    if answers is None:
        return ConstantAnswers(True)
    if isinstance(answers, AnswerSource):
        return answers
    if isinstance(answers, bool):
        return ConstantAnswers(answers)
    if isinstance(answers, Mapping):
        return MappingAnswers(dict(answers))
    if isinstance(answers, str):
        raise TypeError(
            f"answers must be an AnswerSource, bool, mapping, or sequence "
            f"of booleans, not the string {answers!r}"
        )
    return ScriptedAnswers(list(answers))
