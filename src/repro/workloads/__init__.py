"""Workloads: schemas, deterministic data generators, canonical objects.

* :mod:`repro.workloads.university` — the Figure 1 schema;
* :mod:`repro.workloads.figures` — ω (Figure 2c) and ω′ (Figure 3);
* :mod:`repro.workloads.hospital` — patient records (NLM motivation);
* :mod:`repro.workloads.cad` — assemblies (the PENGUIN CAD application);
* :mod:`repro.workloads.synthetic` — dialable ownership chains for the
  scaling benches.
"""

from repro.workloads.cad import CadConfig, assembly_object, cad_schema, populate_cad
from repro.workloads.figures import (
    alternate_course_object,
    course_info_object,
    person_object,
)
from repro.workloads.hospital import (
    HospitalConfig,
    hospital_schema,
    patient_chart_object,
    populate_hospital,
)
from repro.workloads.synthetic import (
    chain_object,
    chain_schema,
    chain_selections,
    populate_chain,
    random_chain_case,
)
from repro.workloads.university import (
    UniversityConfig,
    populate_university,
    university_schema,
)

__all__ = [
    "university_schema",
    "populate_university",
    "UniversityConfig",
    "course_info_object",
    "alternate_course_object",
    "person_object",
    "hospital_schema",
    "populate_hospital",
    "patient_chart_object",
    "HospitalConfig",
    "cad_schema",
    "populate_cad",
    "assembly_object",
    "CadConfig",
    "chain_schema",
    "populate_chain",
    "chain_object",
    "chain_selections",
    "random_chain_case",
]
