"""A CAD assembly database.

The view-object prototype (PENGUIN) was first applied to
"complex objects for relational databases" in a computer-aided-design
setting [Barsalou & Wiederhold, CAD 22(8), 1990]. This workload models
mechanical assemblies:

* ``ASSEMBLY --* COMPONENT`` (ownership): the bill of materials;
* ``COMPONENT --> PART`` (reference): each component names a part;
* ``PART --> MATERIAL`` (reference);
* ``PART --> SUPPLIER`` (nullable reference);
* ``ASSEMBLY ==>o RELEASED_ASSEMBLY`` (subset): released assemblies
  carry extra sign-off attributes — this exercises the subset
  connection inside a dependency island.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.information_metric import InformationMetric
from repro.core.view_object import ViewObjectDefinition, define_view_object
from repro.relational.ddl import relation
from repro.relational.engine import Engine
from repro.structural.schema_graph import StructuralSchema

__all__ = [
    "cad_schema",
    "populate_cad",
    "assembly_object",
    "CadConfig",
]

_MATERIALS = [
    ("steel", 7.85), ("aluminum", 2.70), ("titanium", 4.51),
    ("abs", 1.07), ("copper", 8.96),
]
_SUPPLIERS = ["Acme", "Globex", "Initech", "Umbrella"]
_PART_NAMES = [
    "bracket", "shaft", "gear", "housing", "bearing", "flange", "bolt",
    "spring", "plate", "coupling",
]


def cad_schema(name: str = "cad") -> StructuralSchema:
    """Build the CAD structural schema."""
    graph = StructuralSchema(name)
    graph.add_relation(
        relation("MATERIAL")
        .text("material_name")
        .real("density", nullable=True)
        .key("material_name")
        .build()
    )
    graph.add_relation(
        relation("SUPPLIER")
        .text("supplier_id")
        .text("city", nullable=True)
        .key("supplier_id")
        .build()
    )
    graph.add_relation(
        relation("PART")
        .text("part_id")
        .text("name", nullable=True)
        .text("material_name")
        .text("supplier_id", nullable=True)
        .real("mass_kg", nullable=True)
        .key("part_id")
        .build()
    )
    graph.add_relation(
        relation("ASSEMBLY")
        .text("asm_id")
        .text("name", nullable=True)
        .text("project", nullable=True)
        .key("asm_id")
        .build()
    )
    graph.add_relation(
        relation("RELEASED_ASSEMBLY")
        .text("asm_id")
        .text("release_date")
        .text("approved_by", nullable=True)
        .key("asm_id")
        .build()
    )
    graph.add_relation(
        relation("COMPONENT")
        .text("asm_id")
        .integer("position")
        .text("part_id")
        .integer("quantity")
        .key("asm_id", "position")
        .build()
    )

    graph.ownership(
        "assembly_components", "ASSEMBLY", "COMPONENT",
        ["asm_id"], ["asm_id"],
    )
    graph.subset(
        "assembly_released", "ASSEMBLY", "RELEASED_ASSEMBLY",
        ["asm_id"], ["asm_id"],
    )
    graph.reference(
        "component_part", "COMPONENT", "PART", ["part_id"], ["part_id"]
    )
    graph.reference(
        "part_material", "PART", "MATERIAL",
        ["material_name"], ["material_name"],
    )
    graph.reference(
        "part_supplier", "PART", "SUPPLIER",
        ["supplier_id"], ["supplier_id"],
    )
    return graph


class CadConfig:
    """Sizing knobs for the deterministic generator."""

    def __init__(
        self,
        assemblies: int = 12,
        parts: int = 30,
        components_per_assembly: int = 6,
        released_fraction: float = 0.5,
        seed: int = 2290,
    ) -> None:
        self.assemblies = assemblies
        self.parts = parts
        self.components_per_assembly = components_per_assembly
        self.released_fraction = released_fraction
        self.seed = seed


def populate_cad(engine: Engine, config: Optional[CadConfig] = None) -> Dict[str, int]:
    """Deterministically fill an installed CAD database."""
    config = config or CadConfig()
    rng = random.Random(config.seed)

    for material_name, density in _MATERIALS:
        engine.insert(
            "MATERIAL", {"material_name": material_name, "density": density}
        )
    for supplier in _SUPPLIERS:
        engine.insert(
            "SUPPLIER", {"supplier_id": supplier, "city": "Palo Alto"}
        )
    part_ids = []
    for index in range(config.parts):
        part_id = f"P-{index:03d}"
        engine.insert(
            "PART",
            {
                "part_id": part_id,
                "name": rng.choice(_PART_NAMES),
                "material_name": rng.choice(_MATERIALS)[0],
                "supplier_id": rng.choice(_SUPPLIERS + [None]),
                "mass_kg": round(rng.uniform(0.01, 25.0), 3),
            },
        )
        part_ids.append(part_id)

    for index in range(config.assemblies):
        asm_id = f"ASM-{index:03d}"
        engine.insert(
            "ASSEMBLY",
            {
                "asm_id": asm_id,
                "name": f"{rng.choice(_PART_NAMES)} assembly",
                "project": rng.choice(["orion", "vega", "lyra"]),
            },
        )
        if rng.random() < config.released_fraction:
            engine.insert(
                "RELEASED_ASSEMBLY",
                {
                    "asm_id": asm_id,
                    "release_date": f"1990-{rng.randint(1, 12):02d}-01",
                    "approved_by": "QA",
                },
            )
        for position in range(1, config.components_per_assembly + 1):
            engine.insert(
                "COMPONENT",
                {
                    "asm_id": asm_id,
                    "position": position,
                    "part_id": rng.choice(part_ids),
                    "quantity": rng.randint(1, 8),
                },
            )
    return {
        name: engine.count(name)
        for name in (
            "MATERIAL",
            "SUPPLIER",
            "PART",
            "ASSEMBLY",
            "RELEASED_ASSEMBLY",
            "COMPONENT",
        )
    }


def assembly_object(
    graph: StructuralSchema,
    metric: Optional[InformationMetric] = None,
    name: str = "assembly_bom",
) -> ViewObjectDefinition:
    """The bill-of-materials view object.

    D_ω = {ASSEMBLY, COMPONENT, RELEASED_ASSEMBLY} (ownership + subset);
    PART and MATERIAL are referenced relations outside the island.
    """
    return define_view_object(
        graph,
        name,
        pivot="ASSEMBLY",
        selections={
            "ASSEMBLY": ("asm_id", "name", "project"),
            "RELEASED_ASSEMBLY": ("asm_id", "release_date", "approved_by"),
            "COMPONENT": ("asm_id", "position", "part_id", "quantity"),
            "PART": ("part_id", "name", "material_name", "mass_kg"),
            "MATERIAL": ("material_name", "density"),
        },
        metric=metric,
    )
