"""Canonical view objects of the paper's figures.

* :func:`course_info_object` — ω of Figure 2(c): anchored on COURSES,
  including DEPARTMENT, CURRICULUM, GRADES, and STUDENT; complexity 5.
* :func:`alternate_course_object` — ω′ of Figure 3: still anchored on
  COURSES but with FACULTY and STUDENT only, the latter reached through
  the two-connection path ``COURSES --* GRADES *-- STUDENT`` since
  GRADES is not part of ω′.
"""

from __future__ import annotations

from typing import Optional

from repro.core.information_metric import InformationMetric
from repro.core.view_object import ViewObjectDefinition, define_view_object
from repro.structural.schema_graph import StructuralSchema

__all__ = ["course_info_object", "alternate_course_object", "person_object"]


def course_info_object(
    graph: StructuralSchema,
    metric: Optional[InformationMetric] = None,
    name: str = "course_info",
) -> ViewObjectDefinition:
    """ω of Figure 2(c)."""
    return define_view_object(
        graph,
        name,
        pivot="COURSES",
        selections={
            "COURSES": (
                "course_id", "title", "units", "level", "dept_name",
            ),
            "DEPARTMENT": ("dept_name", "building"),
            "CURRICULUM": ("degree", "course_id", "category"),
            "GRADES": ("course_id", "student_id", "grade"),
            "STUDENT": ("person_id", "degree_program", "year"),
        },
        metric=metric,
    )


def person_object(
    graph: StructuralSchema,
    metric: Optional[InformationMetric] = None,
    name: str = "person_record",
) -> ViewObjectDefinition:
    """A person-centered object (not a paper figure, but the natural
    third perspective on the Figure 1 schema).

    Its dependency island contains the *subset* specializations —
    PEOPLE ==>o STUDENT/FACULTY/STAFF — and, through STUDENT's forward
    ownership, the student's GRADES: deleting a person removes their
    specialization tuples and grades; re-keying a person propagates
    through all of them.
    """
    return define_view_object(
        graph,
        name,
        pivot="PEOPLE",
        selections={
            "PEOPLE": ("person_id", "name", "dept_name"),
            "STUDENT": ("person_id", "degree_program", "year"),
            "FACULTY": ("person_id", "rank", "office"),
            "STAFF": ("person_id", "position", "salary"),
            "GRADES": ("course_id", "student_id", "grade"),
            "DEPARTMENT": ("dept_name", "building"),
        },
        metric=metric,
    )


def alternate_course_object(
    graph: StructuralSchema,
    metric: Optional[InformationMetric] = None,
    name: str = "course_staffing",
) -> ViewObjectDefinition:
    """ω′ of Figure 3."""
    return define_view_object(
        graph,
        name,
        pivot="COURSES",
        selections={
            "COURSES": (
                "course_id", "title", "units", "level", "instructor_id",
            ),
            "FACULTY": ("person_id", "rank", "office"),
            "STUDENT": ("person_id", "degree_program", "year"),
        },
        metric=metric,
    )
