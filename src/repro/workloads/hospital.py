"""A hospital patient-record database.

The paper's work was funded by the National Library of Medicine; the
authors' motivating domain was medical records, where a patient's chart
is the archetypal complex object: visits, diagnoses, prescriptions, and
lab results all hang off the patient. This workload exercises deeper
dependency islands than the university schema — the patient-chart view
object has a three-level ownership chain.

Schema:

* ``PATIENT --* VISIT --* DIAGNOSIS / PRESCRIPTION / LAB_RESULT``
  (ownership chains: a chart component cannot outlive its visit);
* ``VISIT --> PHYSICIAN`` (reference: the attending physician);
* ``PRESCRIPTION --> MEDICATION`` (reference);
* ``PATIENT --> WARD`` (nullable reference: current ward, if admitted).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.information_metric import InformationMetric
from repro.core.view_object import ViewObjectDefinition, define_view_object
from repro.relational.ddl import relation
from repro.relational.engine import Engine
from repro.structural.schema_graph import StructuralSchema

__all__ = [
    "hospital_schema",
    "populate_hospital",
    "patient_chart_object",
    "HospitalConfig",
]

_WARDS = [("East-1", 1), ("East-2", 2), ("West-1", 1), ("ICU", 3)]
_SPECIALTIES = ["cardiology", "oncology", "internal", "surgery", "neurology"]
_DIAGNOSES = [
    "hypertension", "diabetes", "influenza", "fracture", "migraine",
    "anemia", "asthma", "arrhythmia",
]
_MEDICATIONS = [
    ("MED-01", "aspirin", 81), ("MED-02", "metformin", 500),
    ("MED-03", "lisinopril", 10), ("MED-04", "atorvastatin", 20),
    ("MED-05", "amoxicillin", 250), ("MED-06", "ibuprofen", 200),
]
_TESTS = ["CBC", "BMP", "lipid panel", "A1C", "urinalysis", "ECG"]


def hospital_schema(name: str = "hospital") -> StructuralSchema:
    """Build the hospital structural schema."""
    graph = StructuralSchema(name)
    graph.add_relation(
        relation("WARD")
        .text("ward_name")
        .integer("floor")
        .key("ward_name")
        .build()
    )
    graph.add_relation(
        relation("PHYSICIAN")
        .integer("physician_id")
        .text("name", nullable=True)
        .text("specialty", nullable=True)
        .key("physician_id")
        .build()
    )
    graph.add_relation(
        relation("PATIENT")
        .integer("patient_id")
        .text("name", nullable=True)
        .integer("birth_year", nullable=True)
        .text("ward_name", nullable=True)
        .key("patient_id")
        .build()
    )
    graph.add_relation(
        relation("VISIT")
        .integer("patient_id")
        .integer("visit_no")
        .text("visit_date")
        .integer("physician_id")
        .text("reason", nullable=True)
        .key("patient_id", "visit_no")
        .build()
    )
    graph.add_relation(
        relation("DIAGNOSIS")
        .integer("patient_id")
        .integer("visit_no")
        .integer("diag_no")
        .text("code")
        .text("severity", nullable=True)
        .key("patient_id", "visit_no", "diag_no")
        .build()
    )
    graph.add_relation(
        relation("MEDICATION")
        .text("med_id")
        .text("name", nullable=True)
        .integer("dose_mg", nullable=True)
        .key("med_id")
        .build()
    )
    graph.add_relation(
        relation("PRESCRIPTION")
        .integer("patient_id")
        .integer("visit_no")
        .integer("rx_no")
        .text("med_id")
        .integer("days")
        .key("patient_id", "visit_no", "rx_no")
        .build()
    )
    graph.add_relation(
        relation("LAB_RESULT")
        .integer("patient_id")
        .integer("visit_no")
        .integer("test_no")
        .text("test_name")
        .real("value", nullable=True)
        .key("patient_id", "visit_no", "test_no")
        .build()
    )

    graph.reference(
        "patient_ward", "PATIENT", "WARD", ["ward_name"], ["ward_name"]
    )
    graph.ownership(
        "patient_visits", "PATIENT", "VISIT", ["patient_id"], ["patient_id"]
    )
    graph.reference(
        "visit_physician", "VISIT", "PHYSICIAN",
        ["physician_id"], ["physician_id"],
    )
    graph.ownership(
        "visit_diagnoses", "VISIT", "DIAGNOSIS",
        ["patient_id", "visit_no"], ["patient_id", "visit_no"],
    )
    graph.ownership(
        "visit_prescriptions", "VISIT", "PRESCRIPTION",
        ["patient_id", "visit_no"], ["patient_id", "visit_no"],
    )
    graph.reference(
        "prescription_medication", "PRESCRIPTION", "MEDICATION",
        ["med_id"], ["med_id"],
    )
    graph.ownership(
        "visit_labs", "VISIT", "LAB_RESULT",
        ["patient_id", "visit_no"], ["patient_id", "visit_no"],
    )
    return graph


class HospitalConfig:
    """Sizing knobs for the deterministic generator."""

    def __init__(
        self,
        patients: int = 25,
        physicians: int = 8,
        visits_per_patient: int = 3,
        seed: int = 4836,  # the NLM grant number's tail
    ) -> None:
        self.patients = patients
        self.physicians = physicians
        self.visits_per_patient = visits_per_patient
        self.seed = seed


def populate_hospital(
    engine: Engine, config: Optional[HospitalConfig] = None
) -> Dict[str, int]:
    """Deterministically fill an installed hospital database."""
    config = config or HospitalConfig()
    rng = random.Random(config.seed)

    for ward_name, floor in _WARDS:
        engine.insert("WARD", {"ward_name": ward_name, "floor": floor})
    for med_id, name, dose in _MEDICATIONS:
        engine.insert(
            "MEDICATION", {"med_id": med_id, "name": name, "dose_mg": dose}
        )
    physician_ids = []
    for index in range(config.physicians):
        pid = 9000 + index
        engine.insert(
            "PHYSICIAN",
            {
                "physician_id": pid,
                "name": f"Dr. #{pid}",
                "specialty": rng.choice(_SPECIALTIES),
            },
        )
        physician_ids.append(pid)

    for index in range(config.patients):
        patient_id = 100 + index
        engine.insert(
            "PATIENT",
            {
                "patient_id": patient_id,
                "name": f"Patient #{patient_id}",
                "birth_year": rng.randint(1930, 2010),
                "ward_name": rng.choice([w[0] for w in _WARDS] + [None]),
            },
        )
        for visit_no in range(1, config.visits_per_patient + 1):
            engine.insert(
                "VISIT",
                {
                    "patient_id": patient_id,
                    "visit_no": visit_no,
                    "visit_date": f"199{rng.randint(0, 1)}-"
                    f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                    "physician_id": rng.choice(physician_ids),
                    "reason": rng.choice(_DIAGNOSES),
                },
            )
            for diag_no in range(1, rng.randint(1, 3) + 1):
                engine.insert(
                    "DIAGNOSIS",
                    {
                        "patient_id": patient_id,
                        "visit_no": visit_no,
                        "diag_no": diag_no,
                        "code": rng.choice(_DIAGNOSES),
                        "severity": rng.choice(["mild", "moderate", "severe"]),
                    },
                )
            for rx_no in range(1, rng.randint(0, 2) + 1):
                engine.insert(
                    "PRESCRIPTION",
                    {
                        "patient_id": patient_id,
                        "visit_no": visit_no,
                        "rx_no": rx_no,
                        "med_id": rng.choice(_MEDICATIONS)[0],
                        "days": rng.randint(5, 30),
                    },
                )
            for test_no in range(1, rng.randint(0, 3) + 1):
                engine.insert(
                    "LAB_RESULT",
                    {
                        "patient_id": patient_id,
                        "visit_no": visit_no,
                        "test_no": test_no,
                        "test_name": rng.choice(_TESTS),
                        "value": round(rng.uniform(0.5, 200.0), 1),
                    },
                )
    return {
        name: engine.count(name)
        for name in (
            "WARD",
            "PHYSICIAN",
            "PATIENT",
            "VISIT",
            "DIAGNOSIS",
            "MEDICATION",
            "PRESCRIPTION",
            "LAB_RESULT",
        )
    }


def patient_chart_object(
    graph: StructuralSchema,
    metric: Optional[InformationMetric] = None,
    name: str = "patient_chart",
) -> ViewObjectDefinition:
    """The patient-chart view object: a three-level dependency island.

    D_ω = {PATIENT, VISIT, DIAGNOSIS, PRESCRIPTION, LAB_RESULT};
    PHYSICIAN and MEDICATION are referenced relations outside it.
    """
    return define_view_object(
        graph,
        name,
        pivot="PATIENT",
        selections={
            "PATIENT": ("patient_id", "name", "birth_year", "ward_name"),
            "VISIT": (
                "patient_id", "visit_no", "visit_date", "physician_id",
                "reason",
            ),
            "DIAGNOSIS": (
                "patient_id", "visit_no", "diag_no", "code", "severity",
            ),
            "PRESCRIPTION": (
                "patient_id", "visit_no", "rx_no", "med_id", "days",
            ),
            "LAB_RESULT": (
                "patient_id", "visit_no", "test_no", "test_name", "value",
            ),
            "PHYSICIAN": ("physician_id", "name", "specialty"),
            "MEDICATION": ("med_id", "name", "dose_mg"),
        },
        metric=metric,
    )
