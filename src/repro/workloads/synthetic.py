"""Scalable synthetic schemas for the benchmark sweeps.

The paper gives no performance numbers, so the added benches need
workloads whose size can be dialed: :func:`chain_schema` builds an
ownership chain of configurable depth (the dependency island's height),
each level with a configurable fan-out, plus an optional referencing
peninsula and a referenced lookup relation at the pivot.

Relation layout for ``depth=3``::

    LOOKUP <-- R0 --* R1 --* R2 --* R3     (ownership chain)
                ^
                |                          (reference)
              PENINSULA

Keys accumulate one attribute per level (``k0``, ``k0,k1``, ...), the
structural-model pattern for owned relations.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.information_metric import InformationMetric, MetricWeights
from repro.core.view_object import ViewObjectDefinition, define_view_object
from repro.relational.ddl import SchemaBuilder, relation
from repro.relational.engine import Engine
from repro.structural.schema_graph import StructuralSchema

__all__ = [
    "ADVERSARIAL_FEATURES",
    "chain_schema",
    "populate_chain",
    "chain_object",
    "chain_selections",
    "random_chain_case",
    "WorkloadOp",
    "ZipfianWorkload",
]

#: Schema hazards the adversarial generator can graft onto a chain case.
#:
#: ``hidden_attr``    – R0 gains a non-nullable ``secret`` attribute that
#:                      the view projects out: the default null completer
#:                      can never complete a pivot insertion.
#: ``dead_end``       – a DEADEND relation references R0 through a
#:                      non-nullable key attribute, so a NULLIFY repair
#:                      of the reference is impossible by construction.
#: ``shared_peninsula`` – a SHARER relation also references PENINSULA,
#:                      so peninsula tuples are shared with tuples the
#:                      view cannot see.
#: ``circuit``        – an extra R1 -> R0 reference puts a circuit in
#:                      the subgraph the projection tree is built from.
ADVERSARIAL_FEATURES: Tuple[str, ...] = (
    "hidden_attr",
    "dead_end",
    "shared_peninsula",
    "circuit",
)


def _level_name(level: int) -> str:
    return f"R{level}"


def chain_schema(
    depth: int = 3,
    with_peninsula: bool = True,
    with_lookup: bool = True,
    hidden_attr: bool = False,
) -> StructuralSchema:
    """An ownership chain R0 --* R1 --* ... --* R<depth>."""
    graph = StructuralSchema(f"chain{depth}")
    for level in range(depth + 1):
        builder = SchemaBuilder(_level_name(level))
        for key_level in range(level + 1):
            builder.integer(f"k{key_level}")
        builder.text("payload", nullable=True)
        if level == 0 and with_lookup:
            builder.integer("lookup_id")
        if level == 0 and hidden_attr:
            builder.text("secret")
        builder.key(*[f"k{i}" for i in range(level + 1)])
        graph.add_relation(builder.build())
    for level in range(depth):
        parent, child = _level_name(level), _level_name(level + 1)
        keys = [f"k{i}" for i in range(level + 1)]
        graph.ownership(f"own_{level}", parent, child, keys, keys)
    if with_lookup:
        graph.add_relation(
            relation("LOOKUP")
            .integer("lookup_id")
            .text("info", nullable=True)
            .key("lookup_id")
            .build()
        )
        graph.reference(
            "r0_lookup", "R0", "LOOKUP", ["lookup_id"], ["lookup_id"]
        )
    if with_peninsula:
        graph.add_relation(
            relation("PENINSULA")
            .integer("pen_id")
            .integer("k0")
            .text("note", nullable=True)
            .key("pen_id", "k0")
            .build()
        )
        graph.reference("pen_r0", "PENINSULA", "R0", ["k0"], ["k0"])
    return graph


def _add_adversarial(
    graph: StructuralSchema,
    with_peninsula: bool,
    features: Tuple[str, ...],
) -> None:
    """Graft the drawn :data:`ADVERSARIAL_FEATURES` onto a chain graph.

    ``hidden_attr`` is handled by :func:`chain_schema` itself (it alters
    R0's attribute list); everything here adds relations or connections
    around the unchanged chain.
    """
    if "dead_end" in features:
        graph.add_relation(
            relation("DEADEND")
            .integer("d_id")
            .integer("k0")
            .text("why", nullable=True)
            .key("d_id", "k0")
            .build()
        )
        graph.reference("deadend_r0", "DEADEND", "R0", ["k0"], ["k0"])
    if "shared_peninsula" in features and with_peninsula:
        graph.add_relation(
            relation("SHARER")
            .integer("s_id")
            .integer("pen_id", nullable=True)
            .integer("k0", nullable=True)
            .key("s_id")
            .build()
        )
        graph.reference(
            "sharer_pen", "SHARER", "PENINSULA", ["pen_id", "k0"], ["pen_id", "k0"]
        )
    if "circuit" in features:
        graph.reference("circuit_r1", "R1", "R0", ["k0"], ["k0"])


def populate_chain(
    engine: Engine,
    depth: int = 3,
    roots: int = 10,
    fanout: int = 3,
    peninsula_refs: int = 2,
    seed: int = 7,
    adversarial_features: Tuple[str, ...] = (),
) -> Dict[str, int]:
    """Fill a chain database: ``roots`` pivot tuples, ``fanout`` children
    per tuple per level, ``peninsula_refs`` referencing tuples per root."""
    rng = random.Random(seed)
    hidden_attr = "hidden_attr" in adversarial_features
    has_lookup = engine.has_relation("LOOKUP")
    if has_lookup:
        for lookup_id in range(5):
            engine.insert(
                "LOOKUP", {"lookup_id": lookup_id, "info": f"L{lookup_id}"}
            )

    def insert_level(level: int, prefix: Tuple[int, ...]) -> None:
        if level > depth:
            return
        name = _level_name(level)
        mapping = {f"k{i}": v for i, v in enumerate(prefix)}
        mapping["payload"] = f"{name}:{'/'.join(map(str, prefix))}"
        if level == 0 and has_lookup:
            mapping["lookup_id"] = rng.randrange(5)
        if level == 0 and hidden_attr:
            mapping["secret"] = f"s{prefix[0]}"
        engine.insert(name, mapping)
        for child_index in range(fanout):
            insert_level(level + 1, prefix + (child_index,))

    for root in range(roots):
        insert_level(0, (root,))
        if engine.has_relation("PENINSULA"):
            for pen in range(peninsula_refs):
                engine.insert(
                    "PENINSULA",
                    {"pen_id": pen, "k0": root, "note": f"pen{pen}"},
                )
                if engine.has_relation("SHARER"):
                    engine.insert(
                        "SHARER",
                        {"s_id": root * 10 + pen, "pen_id": pen, "k0": root},
                    )
        if engine.has_relation("DEADEND"):
            engine.insert(
                "DEADEND", {"d_id": 0, "k0": root, "why": f"d{root}"}
            )
    return {name: engine.count(name) for name in engine.relation_names()}


def chain_selections(
    depth: int,
    with_peninsula: bool = True,
    with_lookup: bool = True,
) -> Dict[str, List[str]]:
    """The node->attributes selection for the full chain object."""
    selections: Dict[str, List[str]] = {}
    for level in range(depth + 1):
        attrs = [f"k{i}" for i in range(level + 1)] + ["payload"]
        if level == 0 and with_lookup:
            attrs.append("lookup_id")
        selections[_level_name(level)] = attrs
    if with_peninsula:
        selections["PENINSULA"] = ["pen_id", "k0", "note"]
    if with_lookup:
        selections["LOOKUP"] = ["lookup_id", "info"]
    return selections


def random_chain_case(
    engine: Engine, seed: int, adversarial: bool = False
) -> Tuple[StructuralSchema, ViewObjectDefinition, Dict[str, object]]:
    """Install and populate a seeded random member of the chain family.

    Everything varies with ``seed`` — island depth, fan-out, root count,
    whether the peninsula and the lookup relation exist, and the data
    itself — so a property quantified over seeds ranges over many
    *schemas*, not just many databases. Returns the graph, the spanning
    view object, and the drawn parameters.

    With ``adversarial=True`` the case additionally grafts a seeded,
    non-empty subset of :data:`ADVERSARIAL_FEATURES` onto the schema —
    hazards the strategy checker must flag. The adversarial draw uses
    its own generator, so for a given seed the *base* schema and data
    are identical with and without the flag.
    """
    rng = random.Random(seed)
    depth = rng.randint(1, 3)
    fanout = rng.randint(1, 3)
    roots = rng.randint(1, 3)
    with_peninsula = rng.random() < 0.8
    with_lookup = rng.random() < 0.8
    peninsula_refs = rng.randint(0, 2) if with_peninsula else 0
    features: Tuple[str, ...] = ()
    if adversarial:
        arng = random.Random(seed * 6151 + 3)
        drawn = [f for f in ADVERSARIAL_FEATURES if arng.random() < 0.5]
        if "shared_peninsula" in drawn and not with_peninsula:
            drawn.remove("shared_peninsula")
        if not drawn:
            drawn = ["dead_end"]
        features = tuple(drawn)
    graph = chain_schema(
        depth,
        with_peninsula,
        with_lookup,
        hidden_attr="hidden_attr" in features,
    )
    if features:
        _add_adversarial(graph, with_peninsula, features)
    graph.install(engine)
    populate_chain(
        engine,
        depth=depth,
        roots=roots,
        fanout=fanout,
        peninsula_refs=peninsula_refs,
        seed=seed,
        adversarial_features=features,
    )
    view_object = chain_object(graph, depth, with_peninsula, with_lookup)
    params: Dict[str, object] = {
        "depth": depth,
        "fanout": fanout,
        "roots": roots,
        "with_peninsula": int(with_peninsula),
        "with_lookup": int(with_lookup),
        "peninsula_refs": peninsula_refs,
    }
    if adversarial:
        params["adversarial"] = ",".join(features)
    return graph, view_object, params


class WorkloadOp:
    """One operation of a generated multi-tenant stream.

    ``rank`` indexes the key *population* (0 = hottest); callers map it
    into their own key space — the serve load generator maps ranks to
    patient ids, the chaos campaign to chart indices. ``kind`` is one
    of ``"read"``, ``"update"``, ``"insert"``, ``"delete"``.
    """

    __slots__ = ("kind", "tenant", "rank", "sequence")

    def __init__(self, kind: str, tenant: int, rank: int, sequence: int) -> None:
        self.kind = kind
        self.tenant = tenant
        self.rank = rank
        self.sequence = sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkloadOp({self.kind!r}, tenant={self.tenant}, "
            f"rank={self.rank})"
        )


class ZipfianWorkload:
    """A seeded zipfian, multi-tenant operation stream.

    Key popularity follows a zipf law: rank *r* is drawn with weight
    ``1 / (r + 1) ** skew``, so ``skew=0`` is uniform and larger values
    concentrate traffic on the head — the access pattern of a service
    "facing millions of users", where some records are far hotter than
    others. Each op also carries a tenant id (round-robin-free, drawn
    from the same seeded stream), so per-tenant behaviour is
    reproducible.

    Everything derives from ``seed``: two instances with the same
    parameters produce identical streams, which is what lets the serve
    load test and the chaos campaign replay a run exactly.
    """

    def __init__(
        self,
        population: int,
        skew: float = 1.1,
        seed: int = 7,
        tenants: int = 4,
        read_fraction: float = 0.8,
        insert_fraction: float = 0.05,
        delete_fraction: float = 0.0,
    ) -> None:
        if population < 1:
            raise ValueError("population must be >= 1")
        if skew < 0:
            raise ValueError("skew must be >= 0")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        mutation = insert_fraction + delete_fraction
        if mutation > 1.0 - read_fraction + 1e-9:
            raise ValueError(
                "insert_fraction + delete_fraction cannot exceed the "
                "write budget (1 - read_fraction)"
            )
        self.population = population
        self.skew = skew
        self.seed = seed
        self.tenants = max(1, tenants)
        self.read_fraction = read_fraction
        self.insert_fraction = insert_fraction
        self.delete_fraction = delete_fraction
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** skew for rank in range(population)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            cumulative += weight
            self._cdf.append(cumulative / total)
        self._sequence = 0

    def sample_rank(self) -> int:
        """One zipf-distributed rank (0 = hottest key)."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def next_op(self) -> WorkloadOp:
        """The next operation of the stream."""
        roll = self._rng.random()
        if roll < self.read_fraction:
            kind = "read"
        elif roll < self.read_fraction + self.insert_fraction:
            kind = "insert"
        elif roll < (
            self.read_fraction + self.insert_fraction + self.delete_fraction
        ):
            kind = "delete"
        else:
            kind = "update"
        op = WorkloadOp(
            kind=kind,
            tenant=self._rng.randrange(self.tenants),
            rank=self.sample_rank(),
            sequence=self._sequence,
        )
        self._sequence += 1
        return op

    def ops(self, count: int) -> Iterator[WorkloadOp]:
        for _ in range(count):
            yield self.next_op()

    def hot_ranks(self, top: int = 10) -> List[int]:
        """The ``top`` hottest ranks (by construction: 0..top-1)."""
        return list(range(min(top, self.population)))

    def describe(self) -> str:
        return (
            f"zipf(population={self.population}, skew={self.skew}, "
            f"seed={self.seed}, tenants={self.tenants})"
        )


def chain_object(
    graph: StructuralSchema,
    depth: int,
    with_peninsula: bool = True,
    with_lookup: bool = True,
    name: Optional[str] = None,
) -> ViewObjectDefinition:
    """The view object spanning the whole chain.

    Its dependency island is the full R0..R<depth> chain, so island size
    scales directly with ``depth`` — the knob the scaling bench sweeps.
    A generous metric threshold keeps deep chains inside the subgraph.
    """
    metric = InformationMetric(
        weights=MetricWeights(hop_decay=0.98), threshold=0.1
    )
    return define_view_object(
        graph,
        name or f"chain_object_{depth}",
        pivot="R0",
        selections=chain_selections(depth, with_peninsula, with_lookup),
        metric=metric,
    )
