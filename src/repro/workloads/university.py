"""The university database of Figure 1.

Eight relations — DEPARTMENT, PEOPLE, STUDENT, FACULTY, STAFF,
CURRICULUM, COURSES, GRADES — connected exactly as the paper describes:
"courses and people relate to a department, a person is either a
student, a faculty, or a staff, a curriculum describes the required
courses for a given degree, and grades are associated with courses and
students".

Connection inventory (kind, paper rationale):

* ``PEOPLE --> DEPARTMENT`` (reference): people relate to a department.
* ``COURSES --> DEPARTMENT`` (reference): courses relate to a department.
* ``PEOPLE ==>o STUDENT / FACULTY / STAFF`` (subset): a person is either
  a student, a faculty, or a staff.
* ``COURSES --* GRADES`` and ``STUDENT --* GRADES`` (ownership): grades
  are associated with courses and students; a grade cannot outlive
  either.
* ``CURRICULUM --> COURSES`` (reference): a curriculum names required
  courses — the referencing peninsula of Section 5's example.
* ``COURSES --> FACULTY`` (reference, nullable): the course instructor;
  supports the alternate view object ω′ of Figure 3.

The data generator is deterministic (seeded) so tests and benchmarks
reproduce byte-identical databases.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.relational.ddl import relation
from repro.relational.engine import Engine
from repro.structural.schema_graph import StructuralSchema

__all__ = [
    "university_schema",
    "populate_university",
    "UniversityConfig",
]

_DEPARTMENTS = [
    ("Computer Science", "Gates", 1200000),
    ("Mathematics", "Sloan", 700000),
    ("Physics", "Varian", 900000),
    ("Medicine", "Lane", 2500000),
    ("Philosophy", "Main Quad", 300000),
]

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Henry",
    "Iris", "Jack", "Karen", "Louis", "Mona", "Nathan", "Olga", "Peter",
    "Quinn", "Rosa", "Sam", "Tara", "Uma", "Victor", "Wendy", "Xavier",
    "Yuri", "Zoe",
]

_LAST_NAMES = [
    "Anderson", "Barsalou", "Chen", "Dayal", "ElMasri", "Furtado",
    "Garcia", "Hull", "Ioannidis", "Jones", "Keller", "Lee", "Miller",
    "Nguyen", "Olsen", "Pistor", "Quass", "Roth", "Siambela", "Tanaka",
    "Ullman", "Vianu", "Wiederhold", "Xu", "Yang", "Zdonik",
]

_COURSE_TOPICS = [
    "Databases", "Operating Systems", "Compilers", "Algorithms",
    "Networks", "Graphics", "Logic", "Statistics", "Anatomy", "Ethics",
    "Quantum Mechanics", "Topology", "Machine Learning", "Security",
]

_GRADE_VALUES = ["A", "A-", "B+", "B", "B-", "C+", "C", "D", "F"]

_DEGREES = ["BSCS", "MSCS", "PhDCS", "BSMath", "MSStat", "MD"]


def university_schema(name: str = "university") -> StructuralSchema:
    """Build the structural schema of Figure 1."""
    graph = StructuralSchema(name)

    graph.add_relation(
        relation("DEPARTMENT")
        .text("dept_name")
        .text("building", nullable=True)
        .integer("budget", nullable=True)
        .key("dept_name")
        .build()
    )
    graph.add_relation(
        relation("PEOPLE")
        .integer("person_id")
        .text("name", nullable=True)
        .text("dept_name", nullable=True)
        .text("address", nullable=True)
        .key("person_id")
        .build()
    )
    graph.add_relation(
        relation("STUDENT")
        .integer("person_id")
        .text("degree_program")
        .integer("year")
        .key("person_id")
        .build()
    )
    graph.add_relation(
        relation("FACULTY")
        .integer("person_id")
        .text("rank")
        .text("office", nullable=True)
        .key("person_id")
        .build()
    )
    graph.add_relation(
        relation("STAFF")
        .integer("person_id")
        .text("position")
        .integer("salary")
        .key("person_id")
        .build()
    )
    graph.add_relation(
        relation("COURSES")
        .text("course_id")
        .text("title")
        .integer("units")
        .text("level")  # "undergraduate" | "graduate"
        .text("dept_name")
        .integer("instructor_id", nullable=True)
        .key("course_id")
        .build()
    )
    graph.add_relation(
        relation("CURRICULUM")
        .text("degree")
        .text("course_id")
        .text("category")  # "required" | "elective"
        .key("degree", "course_id")
        .build()
    )
    graph.add_relation(
        relation("GRADES")
        .text("course_id")
        .integer("student_id")
        .text("grade")
        .key("course_id", "student_id")
        .build()
    )

    # People and courses relate to a department.
    graph.reference(
        "people_department", "PEOPLE", "DEPARTMENT",
        ["dept_name"], ["dept_name"],
    )
    graph.reference(
        "courses_department", "COURSES", "DEPARTMENT",
        ["dept_name"], ["dept_name"],
    )
    # A person is either a student, a faculty, or a staff.
    graph.subset(
        "people_student", "PEOPLE", "STUDENT", ["person_id"], ["person_id"]
    )
    graph.subset(
        "people_faculty", "PEOPLE", "FACULTY", ["person_id"], ["person_id"]
    )
    graph.subset(
        "people_staff", "PEOPLE", "STAFF", ["person_id"], ["person_id"]
    )
    # Grades are associated with courses and students.
    graph.ownership(
        "courses_grades", "COURSES", "GRADES", ["course_id"], ["course_id"]
    )
    graph.ownership(
        "student_grades", "STUDENT", "GRADES", ["person_id"], ["student_id"]
    )
    # A curriculum describes the required courses for a given degree.
    graph.reference(
        "curriculum_courses", "CURRICULUM", "COURSES",
        ["course_id"], ["course_id"],
    )
    # The course instructor (supports Figure 3's alternate object).
    graph.reference(
        "courses_instructor", "COURSES", "FACULTY",
        ["instructor_id"], ["person_id"],
    )
    return graph


class UniversityConfig:
    """Sizing knobs for the deterministic data generator."""

    def __init__(
        self,
        students: int = 40,
        faculty: int = 10,
        staff: int = 6,
        courses: int = 20,
        enrollments_per_student: int = 4,
        curriculum_entries: int = 30,
        seed: int = 1991,
    ) -> None:
        self.students = students
        self.faculty = faculty
        self.staff = staff
        self.courses = courses
        self.enrollments_per_student = enrollments_per_student
        self.curriculum_entries = curriculum_entries
        self.seed = seed


def populate_university(
    engine: Engine, config: UniversityConfig = None
) -> Dict[str, int]:
    """Fill an installed university database with deterministic data.

    Returns a relation-name -> row-count summary. The engine must
    already hold the Figure 1 relations (see
    :meth:`StructuralSchema.install`).
    """
    config = config or UniversityConfig()
    rng = random.Random(config.seed)

    for dept_name, building, budget in _DEPARTMENTS:
        engine.insert(
            "DEPARTMENT",
            {"dept_name": dept_name, "building": building, "budget": budget},
        )

    dept_names = [d[0] for d in _DEPARTMENTS]
    person_id = 1000
    faculty_ids: List[int] = []
    student_ids: List[int] = []

    def add_person(dept: str) -> int:
        nonlocal person_id
        person_id += 1
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        engine.insert(
            "PEOPLE",
            {
                "person_id": person_id,
                "name": name,
                "dept_name": dept,
                "address": f"{rng.randint(1, 999)} Campus Dr",
            },
        )
        return person_id

    for __ in range(config.faculty):
        pid = add_person(rng.choice(dept_names))
        engine.insert(
            "FACULTY",
            {
                "person_id": pid,
                "rank": rng.choice(["assistant", "associate", "full"]),
                "office": f"Bldg {rng.randint(1, 9)}-{rng.randint(100, 499)}",
            },
        )
        faculty_ids.append(pid)

    for __ in range(config.students):
        pid = add_person(rng.choice(dept_names))
        engine.insert(
            "STUDENT",
            {
                "person_id": pid,
                "degree_program": rng.choice(_DEGREES),
                "year": rng.randint(1, 6),
            },
        )
        student_ids.append(pid)

    for __ in range(config.staff):
        pid = add_person(rng.choice(dept_names))
        engine.insert(
            "STAFF",
            {
                "person_id": pid,
                "position": rng.choice(["admin", "technician", "librarian"]),
                "salary": rng.randint(40000, 90000),
            },
        )

    course_ids: List[str] = []
    for i in range(config.courses):
        dept = rng.choice(dept_names)
        prefix = "".join(w[0] for w in dept.split())[:2].upper()
        level = "graduate" if rng.random() < 0.5 else "undergraduate"
        number = (300 if level == "graduate" else 100) + i
        course_id = f"{prefix}{number}"
        engine.insert(
            "COURSES",
            {
                "course_id": course_id,
                "title": f"{rng.choice(_COURSE_TOPICS)} {'I' * rng.randint(1, 3)}",
                "units": rng.randint(1, 5),
                "level": level,
                "dept_name": dept,
                "instructor_id": rng.choice(faculty_ids) if faculty_ids else None,
            },
        )
        course_ids.append(course_id)

    enrolled = set()
    for sid in student_ids:
        wanted = min(config.enrollments_per_student, len(course_ids))
        for course_id in rng.sample(course_ids, wanted):
            if (course_id, sid) in enrolled:
                continue
            enrolled.add((course_id, sid))
            engine.insert(
                "GRADES",
                {
                    "course_id": course_id,
                    "student_id": sid,
                    "grade": rng.choice(_GRADE_VALUES),
                },
            )

    curriculum = set()
    attempts = 0
    while len(curriculum) < config.curriculum_entries and attempts < 10000:
        attempts += 1
        entry = (rng.choice(_DEGREES), rng.choice(course_ids))
        if entry in curriculum:
            continue
        curriculum.add(entry)
        engine.insert(
            "CURRICULUM",
            {
                "degree": entry[0],
                "course_id": entry[1],
                "category": rng.choice(["required", "elective"]),
            },
        )

    return {
        name: engine.count(name)
        for name in (
            "DEPARTMENT",
            "PEOPLE",
            "STUDENT",
            "FACULTY",
            "STAFF",
            "COURSES",
            "CURRICULUM",
            "GRADES",
        )
    }
