"""Path utilities over the structural graph.

The view-object model needs paths in two places: the tree builder
"expands all the paths in G emanating from the pivot relation" (Section
3), and Figure 3 notes that an elided intermediate relation turns a
structural connection into "a path of two connections". A
:class:`ConnectionPath` is an ordered list of traversals; the module
enumerates simple paths between relations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.structural.connections import ConnectionKind, Traversal
from repro.structural.schema_graph import StructuralSchema

__all__ = ["ConnectionPath", "simple_paths", "shortest_path"]


class ConnectionPath:
    """An ordered sequence of traversals forming a path of relations."""

    __slots__ = ("traversals",)

    def __init__(self, traversals: Sequence[Traversal]) -> None:
        traversals = tuple(traversals)
        for earlier, later in zip(traversals, traversals[1:]):
            if earlier.end != later.start:
                raise ValueError(
                    f"traversals do not chain: {earlier.describe()} then "
                    f"{later.describe()}"
                )
        self.traversals = traversals

    @property
    def start(self) -> str:
        return self.traversals[0].start

    @property
    def end(self) -> str:
        return self.traversals[-1].end

    @property
    def relations(self) -> Tuple[str, ...]:
        """All relations on the path, start to end."""
        names = [self.traversals[0].start]
        names.extend(t.end for t in self.traversals)
        return tuple(names)

    def __len__(self) -> int:
        return len(self.traversals)

    def __iter__(self) -> Iterator[Traversal]:
        return iter(self.traversals)

    def describe(self) -> str:
        parts = [self.start]
        for traversal in self.traversals:
            symbol = traversal.kind.symbol if traversal.forward else {
                ConnectionKind.OWNERSHIP: "*--",
                ConnectionKind.REFERENCE: "<--",
                ConnectionKind.SUBSET: "o<==",
            }[traversal.kind]
            parts.append(symbol)
            parts.append(traversal.end)
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConnectionPath({self.describe()})"


def simple_paths(
    graph: StructuralSchema,
    start: str,
    end: str,
    max_length: Optional[int] = None,
    kinds: Optional[Iterable[ConnectionKind]] = None,
) -> List[ConnectionPath]:
    """All simple paths (no repeated relation) from ``start`` to ``end``.

    Traverses connections in both directions. ``kinds`` restricts which
    connection kinds may appear; ``max_length`` bounds the hop count.
    """
    graph.relation(start)
    graph.relation(end)
    results: List[ConnectionPath] = []
    kind_set = set(kinds) if kinds is not None else None

    def walk(node: str, visited: Set[str], trail: List[Traversal]) -> None:
        if max_length is not None and len(trail) >= max_length:
            return
        for traversal in graph.traversals_from(node, kinds=kind_set):
            nxt = traversal.end
            if nxt in visited:
                continue
            trail.append(traversal)
            if nxt == end:
                results.append(ConnectionPath(list(trail)))
            else:
                visited.add(nxt)
                walk(nxt, visited, trail)
                visited.discard(nxt)
            trail.pop()

    if start == end:
        return []
    walk(start, {start}, [])
    return results


def shortest_path(
    graph: StructuralSchema,
    start: str,
    end: str,
    kinds: Optional[Iterable[ConnectionKind]] = None,
) -> Optional[ConnectionPath]:
    """A minimum-hop path from ``start`` to ``end``, or ``None``."""
    paths = simple_paths(graph, start, end, kinds=kinds)
    if not paths:
        return None
    return min(paths, key=len)
