"""Rendering structural schemas as text and Graphviz DOT.

The Figure 1 bench regenerates the university schema diagram; since the
paper's figure is a drawing, we emit (a) an ASCII adjacency listing with
the paper's edge symbols and (b) DOT source that reproduces the figure's
topology when rendered.
"""

from __future__ import annotations

from typing import List

from repro.structural.connections import ConnectionKind
from repro.structural.schema_graph import StructuralSchema

__all__ = ["to_ascii", "to_dot"]

_DOT_STYLES = {
    ConnectionKind.OWNERSHIP: 'arrowhead="diamond", label="owns"',
    ConnectionKind.REFERENCE: 'arrowhead="vee", style="dashed", label="refs"',
    ConnectionKind.SUBSET: 'arrowhead="onormal", label="isa"',
}


def to_ascii(graph: StructuralSchema) -> str:
    """Adjacency listing using the paper's symbols (``--*``, ``-->``, ``==>o``)."""
    lines: List[str] = [f"schema {graph.name}"]
    for name in graph.relation_names:
        outgoing = graph.connections_from(name)
        if not outgoing:
            lines.append(f"  {name}")
            continue
        for connection in outgoing:
            x1 = ",".join(connection.source_attributes)
            x2 = ",".join(connection.target_attributes)
            lines.append(
                f"  {name}({x1}) {connection.kind.symbol} "
                f"{connection.target}({x2})"
            )
    return "\n".join(lines)


def to_dot(graph: StructuralSchema) -> str:
    """Graphviz DOT source for the schema graph."""
    lines = [f'digraph "{graph.name}" {{', "  node [shape=box];"]
    for name in graph.relation_names:
        schema = graph.relation(name)
        key = ",".join(schema.key)
        lines.append(f'  "{name}" [label="{name}\\nK=({key})"];')
    for connection in graph.connections:
        style = _DOT_STYLES[connection.kind]
        lines.append(
            f'  "{connection.source}" -> "{connection.target}" [{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
