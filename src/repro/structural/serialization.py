"""JSON persistence of structural schemas.

A structural schema is the contract everything else hangs off: storing
it next to the view-object catalog lets a whole PENGUIN session be
reconstructed offline (schema → objects → policies → data).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from repro.errors import StructuralError
from repro.relational.persistence import schema_from_dict, schema_to_dict
from repro.structural.connections import Connection, ConnectionKind
from repro.structural.schema_graph import StructuralSchema

__all__ = ["graph_to_dict", "graph_from_dict", "graph_to_json", "graph_from_json"]

FORMAT_VERSION = 1


def graph_to_dict(graph: StructuralSchema) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "name": graph.name,
        "relations": [
            schema_to_dict(graph.relation(name))
            for name in graph.relation_names
        ],
        "connections": [
            {
                "name": connection.name,
                "kind": connection.kind.value,
                "source": connection.source,
                "target": connection.target,
                "source_attributes": list(connection.source_attributes),
                "target_attributes": list(connection.target_attributes),
            }
            for connection in graph.connections
        ],
    }


def graph_from_dict(data: Mapping[str, Any]) -> StructuralSchema:
    if data.get("format") != FORMAT_VERSION:
        raise StructuralError(
            f"unsupported structural-schema format {data.get('format')!r}"
        )
    graph = StructuralSchema(data.get("name", "schema"))
    for stored in data["relations"]:
        graph.add_relation(schema_from_dict(stored))
    for stored in data["connections"]:
        graph.add_connection(
            Connection(
                stored["name"],
                ConnectionKind(stored["kind"]),
                stored["source"],
                stored["target"],
                stored["source_attributes"],
                stored["target_attributes"],
            )
        )
    return graph


def graph_to_json(graph: StructuralSchema, indent: int = 2) -> str:
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(text: str) -> StructuralSchema:
    return graph_from_dict(json.loads(text))
