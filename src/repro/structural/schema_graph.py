"""The structural schema: a directed graph of relations and connections.

"The structural model defines a directed-graph representation of a
database, where vertices correspond to relations and edges to
connections" (Section 2). :class:`StructuralSchema` is that graph plus
the relation catalog, with traversal helpers used by the view-object
tree builder and the update-propagation machinery.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConnectionError, StructuralError, UnknownRelationError
from repro.relational.engine import Engine
from repro.relational.schema import RelationSchema
from repro.structural.connections import Connection, ConnectionKind, Traversal
from repro.structural.validation import validate_connection

__all__ = ["StructuralSchema"]


class StructuralSchema:
    """Relation catalog + typed connections, as one directed graph."""

    def __init__(self, name: str = "schema") -> None:
        self.name = name
        self._relations: Dict[str, RelationSchema] = {}
        self._connections: Dict[str, Connection] = {}
        self._outgoing: Dict[str, List[Connection]] = {}
        self._incoming: Dict[str, List[Connection]] = {}

    # -- construction ----------------------------------------------------------

    def add_relation(self, schema: RelationSchema) -> "StructuralSchema":
        if schema.name in self._relations:
            raise StructuralError(f"relation {schema.name!r} already declared")
        self._relations[schema.name] = schema
        self._outgoing[schema.name] = []
        self._incoming[schema.name] = []
        return self

    def add_connection(self, connection: Connection) -> "StructuralSchema":
        if connection.name in self._connections:
            raise ConnectionError(
                f"connection {connection.name!r} already declared"
            )
        validate_connection(connection, self._relations)
        self._connections[connection.name] = connection
        self._outgoing[connection.source].append(connection)
        self._incoming[connection.target].append(connection)
        return self

    def ownership(
        self,
        name: str,
        source: str,
        target: str,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
    ) -> "StructuralSchema":
        """Declare an ownership connection ``source --* target``."""
        return self.add_connection(
            Connection(
                name,
                ConnectionKind.OWNERSHIP,
                source,
                target,
                source_attributes,
                target_attributes,
            )
        )

    def reference(
        self,
        name: str,
        source: str,
        target: str,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
    ) -> "StructuralSchema":
        """Declare a reference connection ``source --> target``."""
        return self.add_connection(
            Connection(
                name,
                ConnectionKind.REFERENCE,
                source,
                target,
                source_attributes,
                target_attributes,
            )
        )

    def subset(
        self,
        name: str,
        source: str,
        target: str,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
    ) -> "StructuralSchema":
        """Declare a subset connection ``source ==>o target``."""
        return self.add_connection(
            Connection(
                name,
                ConnectionKind.SUBSET,
                source,
                target,
                source_attributes,
                target_attributes,
            )
        )

    # -- catalog access ----------------------------------------------------------

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def connection(self, name: str) -> Connection:
        try:
            return self._connections[name]
        except KeyError:
            raise ConnectionError(f"unknown connection: {name!r}") from None

    @property
    def connections(self) -> Tuple[Connection, ...]:
        return tuple(self._connections.values())

    # -- graph traversal ------------------------------------------------------------

    def connections_from(
        self, relation: str, kind: Optional[ConnectionKind] = None
    ) -> List[Connection]:
        """Connections whose *source* is ``relation``."""
        self.relation(relation)
        result = self._outgoing[relation]
        if kind is not None:
            result = [c for c in result if c.kind is kind]
        return list(result)

    def connections_to(
        self, relation: str, kind: Optional[ConnectionKind] = None
    ) -> List[Connection]:
        """Connections whose *target* is ``relation``."""
        self.relation(relation)
        result = self._incoming[relation]
        if kind is not None:
            result = [c for c in result if c.kind is kind]
        return list(result)

    def traversals_from(
        self,
        relation: str,
        kinds: Optional[Iterable[ConnectionKind]] = None,
        include_inverse: bool = True,
    ) -> List[Traversal]:
        """All edges leaving ``relation``, forward and (optionally) inverse.

        The view-object tree builder expands paths in both directions —
        "if there is a connection C from R1 to R2, there is an inverse
        connection C^-1 from R2 to R1".
        """
        kind_set = set(kinds) if kinds is not None else None
        traversals = []
        for connection in self.connections_from(relation):
            if kind_set is None or connection.kind in kind_set:
                traversals.append(Traversal(connection, forward=True))
        if include_inverse:
            for connection in self.connections_to(relation):
                if kind_set is None or connection.kind in kind_set:
                    traversals.append(Traversal(connection, forward=False))
        return traversals

    def neighbors(self, relation: str) -> Set[str]:
        """All relations one connection away (either direction)."""
        result = {c.target for c in self.connections_from(relation)}
        result |= {c.source for c in self.connections_to(relation)}
        return result

    def undirected_cycles_exist_within(self, relations: Iterable[str]) -> bool:
        """True if the subgraph induced by ``relations`` has a circuit.

        Circuits are what force the tree builder to duplicate nodes
        (Figure 2b duplicates PEOPLE). Parallel connections between the
        same pair of relations count as a circuit.
        """
        allowed = set(relations)
        for name in allowed:
            self.relation(name)
        edges = [
            c
            for c in self._connections.values()
            if c.source in allowed and c.target in allowed
        ]
        # A component of an undirected multigraph contains a cycle iff it
        # has at least as many edges as vertices. Union-find over the
        # induced edges detects exactly that.
        parent = {name: name for name in allowed}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for connection in edges:
            a, b = find(connection.source), find(connection.target)
            if a == b:
                return True  # this edge closes a circuit
            parent[a] = b
        return False

    # -- installation -----------------------------------------------------------------

    def install(self, engine: Engine, with_indexes: bool = True) -> None:
        """Create every relation in ``engine`` plus connection indexes.

        Each connection endpoint gets a secondary index on its
        connecting attributes, since update propagation looks tuples up
        by those attributes constantly.
        """
        for schema in self._relations.values():
            engine.create_relation(schema)
        if with_indexes:
            for connection in self._connections.values():
                engine.create_index(connection.source, connection.source_attributes)
                engine.create_index(connection.target, connection.target_attributes)

    # -- summaries ----------------------------------------------------------------------

    def describe(self) -> str:
        """Readable multi-line description (used by the Figure 1 bench)."""
        lines = [f"Structural schema {self.name!r}:"]
        lines.append(f"  relations ({len(self._relations)}):")
        for name, schema in self._relations.items():
            key = ",".join(schema.key)
            nonkey = ",".join(schema.nonkey_names)
            lines.append(f"    {name}  key=({key})  nonkey=({nonkey})")
        lines.append(f"  connections ({len(self._connections)}):")
        for connection in self._connections.values():
            lines.append(f"    [{connection.name}] {connection.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StructuralSchema({self.name!r}, {len(self._relations)} relations, "
            f"{len(self._connections)} connections)"
        )
