"""Validation of connection definitions against relation schemas.

Implements the key conditions the paper derives from Definitions
2.2-2.4:

* every connection: ``|X1| = |X2| > 0``, attributes exist, and domains
  match pairwise (Definition 2.1);
* ownership: ``X1 = K(R1)`` and ``X2`` a **proper** subset of ``K(R2)``
  (an owned relation needs extra key attributes — the complement
  ``A_j`` of Section 5.3 — otherwise the relationship is 1:1 and should
  be a subset connection);
* reference: ``X2 = K(R2)``, and ``X1`` entirely within ``K(R1)`` or
  entirely within ``NK(R1)``;
* subset: ``X1 = K(R1)`` and ``X2 = K(R2)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.errors import ConnectionError
from repro.relational.schema import RelationSchema
from repro.structural.connections import Connection, ConnectionKind

__all__ = ["validate_connection"]


def _common_checks(
    connection: Connection,
    source: RelationSchema,
    target: RelationSchema,
) -> None:
    x1, x2 = connection.source_attributes, connection.target_attributes
    if not x1 or not x2:
        raise ConnectionError(
            f"connection {connection.name!r}: X1 and X2 must be nonempty"
        )
    if len(x1) != len(x2):
        raise ConnectionError(
            f"connection {connection.name!r}: X1 has {len(x1)} attributes "
            f"but X2 has {len(x2)} (Definition 2.1 requires equal arity)"
        )
    if len(set(x1)) != len(x1) or len(set(x2)) != len(x2):
        raise ConnectionError(
            f"connection {connection.name!r}: connecting attribute lists "
            "must not repeat attributes"
        )
    for name in x1:
        if not source.has_attribute(name):
            raise ConnectionError(
                f"connection {connection.name!r}: {source.name!r} has no "
                f"attribute {name!r}"
            )
    for name in x2:
        if not target.has_attribute(name):
            raise ConnectionError(
                f"connection {connection.name!r}: {target.name!r} has no "
                f"attribute {name!r}"
            )
    for a1, a2 in zip(x1, x2):
        d1 = source.attribute(a1).domain
        d2 = target.attribute(a2).domain
        if d1 != d2:
            raise ConnectionError(
                f"connection {connection.name!r}: domain mismatch "
                f"{source.name}.{a1} ({d1.name}) vs "
                f"{target.name}.{a2} ({d2.name}) "
                "(Definition 2.1 requires identical domains)"
            )


def _check_ownership(
    connection: Connection,
    source: RelationSchema,
    target: RelationSchema,
) -> None:
    x1, x2 = set(connection.source_attributes), set(connection.target_attributes)
    if x1 != set(source.key):
        raise ConnectionError(
            f"ownership {connection.name!r}: X1 must equal K({source.name}) "
            f"= {source.key!r}, got {connection.source_attributes!r}"
        )
    key2 = set(target.key)
    if not x2 <= key2:
        raise ConnectionError(
            f"ownership {connection.name!r}: X2 must lie within "
            f"K({target.name}) = {target.key!r}"
        )
    if x2 == key2:
        raise ConnectionError(
            f"ownership {connection.name!r}: X2 equals K({target.name}); "
            "a 1:1 dependency should be a subset connection"
        )


def _check_reference(
    connection: Connection,
    source: RelationSchema,
    target: RelationSchema,
) -> None:
    x1, x2 = set(connection.source_attributes), set(connection.target_attributes)
    if x2 != set(target.key):
        raise ConnectionError(
            f"reference {connection.name!r}: X2 must equal K({target.name}) "
            f"= {target.key!r}, got {connection.target_attributes!r}"
        )
    key1 = set(source.key)
    nonkey1 = set(source.nonkey_names)
    if not (x1 <= key1 or x1 <= nonkey1):
        raise ConnectionError(
            f"reference {connection.name!r}: X1 must lie entirely within "
            f"K({source.name}) or entirely within NK({source.name})"
        )


def _check_subset(
    connection: Connection,
    source: RelationSchema,
    target: RelationSchema,
) -> None:
    x1, x2 = set(connection.source_attributes), set(connection.target_attributes)
    if x1 != set(source.key):
        raise ConnectionError(
            f"subset {connection.name!r}: X1 must equal K({source.name}) "
            f"= {source.key!r}"
        )
    if x2 != set(target.key):
        raise ConnectionError(
            f"subset {connection.name!r}: X2 must equal K({target.name}) "
            f"= {target.key!r}"
        )


_CHECKS: Dict[ConnectionKind, Callable[..., None]] = {
    ConnectionKind.OWNERSHIP: _check_ownership,
    ConnectionKind.REFERENCE: _check_reference,
    ConnectionKind.SUBSET: _check_subset,
}


def validate_connection(
    connection: Connection,
    schemas: Mapping[str, RelationSchema],
) -> None:
    """Raise :class:`ConnectionError` if ``connection`` is ill-formed."""
    try:
        source = schemas[connection.source]
    except KeyError:
        raise ConnectionError(
            f"connection {connection.name!r}: unknown relation "
            f"{connection.source!r}"
        ) from None
    try:
        target = schemas[connection.target]
    except KeyError:
        raise ConnectionError(
            f"connection {connection.name!r}: unknown relation "
            f"{connection.target!r}"
        ) from None
    _common_checks(connection, source, target)
    _CHECKS[connection.kind](connection, source, target)
