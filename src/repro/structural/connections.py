"""Connections of the structural model (Section 2 of the paper).

A connection relates two relations through an ordered pair of attribute
lists ``<X1, X2>`` with matching arity and domains (Definition 2.1).
Three kinds exist, each with its own key conditions and integrity rules:

=============  ========  ===========================  ============
kind           symbol    key conditions               cardinality
=============  ========  ===========================  ============
ownership      ``--*``   X1 = K(R1), X2 proper       1:n
                         subset of K(R2)
reference      ``-->``   X1 within K(R1) or within    n:1
                         NK(R1); X2 = K(R2)
subset         ``==>o``  X1 = K(R1), X2 = K(R2)       1:[0,1]
=============  ========  ===========================  ============

Every connection has an inverse (traversing the edge backwards); the
view-object tree builder walks edges in both directions, so traversal is
modeled explicitly by :class:`Traversal`.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

__all__ = ["ConnectionKind", "Connection", "Traversal"]


class ConnectionKind(enum.Enum):
    """The three connection types of the structural model."""

    OWNERSHIP = "ownership"
    REFERENCE = "reference"
    SUBSET = "subset"

    @property
    def symbol(self) -> str:
        return {
            ConnectionKind.OWNERSHIP: "--*",
            ConnectionKind.REFERENCE: "-->",
            ConnectionKind.SUBSET: "==>o",
        }[self]


class Connection:
    """One directed connection ``R1 -> R2`` through ``<X1, X2>``.

    Parameters
    ----------
    name:
        Unique name within a structural schema (used by dialogs and
        error messages).
    kind:
        The :class:`ConnectionKind`.
    source:
        Name of relation ``R1`` (the owner / referencing / general
        relation).
    target:
        Name of relation ``R2`` (the owned / referenced / specialized
        relation).
    source_attributes:
        ``X1`` — attribute names of ``R1``, ordered.
    target_attributes:
        ``X2`` — attribute names of ``R2``, ordered, positionally
        matched with ``X1``.
    """

    __slots__ = (
        "name",
        "kind",
        "source",
        "target",
        "source_attributes",
        "target_attributes",
    )

    def __init__(
        self,
        name: str,
        kind: ConnectionKind,
        source: str,
        target: str,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
    ) -> None:
        self.name = name
        self.kind = kind
        self.source = source
        self.target = target
        self.source_attributes = tuple(source_attributes)
        self.target_attributes = tuple(target_attributes)

    def endpoint_attributes(self, relation: str) -> Tuple[str, ...]:
        """The connecting attributes on the ``relation`` side."""
        if relation == self.source:
            return self.source_attributes
        if relation == self.target:
            return self.target_attributes
        raise ValueError(
            f"relation {relation!r} is not an endpoint of connection {self.name!r}"
        )

    def other_endpoint(self, relation: str) -> str:
        if relation == self.source:
            return self.target
        if relation == self.target:
            return self.source
        raise ValueError(
            f"relation {relation!r} is not an endpoint of connection {self.name!r}"
        )

    def describe(self) -> str:
        x1 = ",".join(self.source_attributes)
        x2 = ",".join(self.target_attributes)
        return (
            f"{self.source}({x1}) {self.kind.symbol} {self.target}({x2})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Connection)
            and other.name == self.name
            and other.kind == self.kind
            and other.source == self.source
            and other.target == self.target
            and other.source_attributes == self.source_attributes
            and other.target_attributes == self.target_attributes
        )

    def __hash__(self) -> int:
        return hash((self.name, self.kind, self.source, self.target))

    def __repr__(self) -> str:
        return f"Connection({self.name!r}: {self.describe()})"


class Traversal:
    """A connection together with a direction of travel.

    ``forward`` means moving from ``connection.source`` toward
    ``connection.target``; the inverse connection :math:`C^{-1}` of the
    paper is the same :class:`Connection` traversed with
    ``forward=False``.
    """

    __slots__ = ("connection", "forward")

    def __init__(self, connection: Connection, forward: bool) -> None:
        self.connection = connection
        self.forward = forward

    @property
    def start(self) -> str:
        return self.connection.source if self.forward else self.connection.target

    @property
    def end(self) -> str:
        return self.connection.target if self.forward else self.connection.source

    @property
    def kind(self) -> ConnectionKind:
        return self.connection.kind

    @property
    def start_attributes(self) -> Tuple[str, ...]:
        return (
            self.connection.source_attributes
            if self.forward
            else self.connection.target_attributes
        )

    @property
    def end_attributes(self) -> Tuple[str, ...]:
        return (
            self.connection.target_attributes
            if self.forward
            else self.connection.source_attributes
        )

    def inverse(self) -> "Traversal":
        return Traversal(self.connection, not self.forward)

    def describe(self) -> str:
        arrow = self.connection.kind.symbol if self.forward else (
            "*--" if self.kind is ConnectionKind.OWNERSHIP
            else "<--" if self.kind is ConnectionKind.REFERENCE
            else "o<=="
        )
        return f"{self.start} {arrow} {self.end}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Traversal)
            and other.connection == self.connection
            and other.forward == self.forward
        )

    def __hash__(self) -> int:
        return hash((self.connection, self.forward))

    def __repr__(self) -> str:
        return f"Traversal({self.describe()}, via {self.connection.name!r})"
