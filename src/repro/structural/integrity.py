"""Referential-integrity checking for structural schemas.

Each connection kind carries an *existence* rule (the first criterion of
Definitions 2.2-2.4):

* ownership ``R1 --* R2``: every tuple of R2 is connected to an owner in R1;
* reference ``R1 --> R2``: every tuple of R1 either connects to a
  referenced tuple in R2 or holds nulls in X1;
* subset ``R1 ==>o R2``: every tuple of R2 connects to a tuple in R1.

:class:`IntegrityChecker` verifies all of them against live data. The
module also provides :func:`connected_tuples`, the lookup primitive used
throughout update propagation ("two tuples are connected iff the values
of the connecting attributes match", Definition 2.1).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.relational.engine import Engine
from repro.structural.connections import Connection, ConnectionKind, Traversal
from repro.structural.schema_graph import StructuralSchema

__all__ = ["Violation", "IntegrityChecker", "connected_tuples", "connection_entry"]


def connection_entry(
    engine: Engine,
    relation: str,
    values: Sequence[Any],
    attribute_names: Sequence[str],
) -> Tuple[Any, ...]:
    """Project a value tuple of ``relation`` onto connecting attributes."""
    schema = engine.schema(relation)
    return schema.project(values, attribute_names)


def connected_tuples(
    engine: Engine,
    traversal: Traversal,
    start_values: Sequence[Any],
) -> List[Tuple[Any, ...]]:
    """Tuples at ``traversal.end`` connected to one tuple at ``traversal.start``.

    Returns the empty list when any connecting value is null (a null
    never matches).
    """
    entry = connection_entry(
        engine, traversal.start, start_values, traversal.start_attributes
    )
    if any(v is None for v in entry):
        return []
    return engine.find_by(traversal.end, traversal.end_attributes, entry)


class Violation:
    """One integrity violation found by the checker."""

    __slots__ = ("connection", "rule", "relation", "key", "message")

    def __init__(
        self,
        connection: Connection,
        rule: str,
        relation: str,
        key: Tuple[Any, ...],
        message: str,
    ) -> None:
        self.connection = connection
        self.rule = rule
        self.relation = relation
        self.key = key
        self.message = message

    def __repr__(self) -> str:
        return f"Violation({self.rule}: {self.message})"


class IntegrityChecker:
    """Checks live data against every connection's existence rule."""

    def __init__(self, graph: StructuralSchema) -> None:
        self.graph = graph

    def check(self, engine: Engine) -> List[Violation]:
        """All violations in the database, across every connection."""
        violations: List[Violation] = []
        for connection in self.graph.connections:
            violations.extend(self.check_connection(engine, connection))
        return violations

    def is_consistent(self, engine: Engine) -> bool:
        return not self.check(engine)

    def check_connection(
        self, engine: Engine, connection: Connection
    ) -> List[Violation]:
        if connection.kind is ConnectionKind.OWNERSHIP:
            return self._check_child_existence(
                engine, connection, rule="ownership-1",
                description="has no owning tuple",
            )
        if connection.kind is ConnectionKind.SUBSET:
            return self._check_child_existence(
                engine, connection, rule="subset-1",
                description="has no general tuple",
            )
        return self._check_reference(engine, connection)

    def _check_child_existence(
        self,
        engine: Engine,
        connection: Connection,
        rule: str,
        description: str,
    ) -> List[Violation]:
        """Every R2 tuple must connect upward to an R1 tuple."""
        violations = []
        schema2 = engine.schema(connection.target)
        backward = Traversal(connection, forward=False)
        for values in engine.scan(connection.target):
            if not connected_tuples(engine, backward, values):
                key = schema2.key_of(values)
                violations.append(
                    Violation(
                        connection,
                        rule,
                        connection.target,
                        key,
                        f"{connection.target} tuple {key!r} {description} "
                        f"in {connection.source} (connection {connection.name!r})",
                    )
                )
        return violations

    def _check_reference(
        self, engine: Engine, connection: Connection
    ) -> List[Violation]:
        """Every R1 tuple with non-null X1 must connect to an R2 tuple."""
        violations = []
        schema1 = engine.schema(connection.source)
        forward = Traversal(connection, forward=True)
        for values in engine.scan(connection.source):
            entry = schema1.project(values, connection.source_attributes)
            if all(v is None for v in entry):
                continue
            if any(v is None for v in entry):
                key = schema1.key_of(values)
                violations.append(
                    Violation(
                        connection,
                        "reference-1",
                        connection.source,
                        key,
                        f"{connection.source} tuple {key!r} has partially "
                        f"null reference {entry!r} "
                        f"(connection {connection.name!r})",
                    )
                )
                continue
            if not connected_tuples(engine, forward, values):
                key = schema1.key_of(values)
                violations.append(
                    Violation(
                        connection,
                        "reference-1",
                        connection.source,
                        key,
                        f"{connection.source} tuple {key!r} references "
                        f"missing {connection.target} tuple {entry!r} "
                        f"(connection {connection.name!r})",
                    )
                )
        return violations
