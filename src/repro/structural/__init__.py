"""The structural model: typed connections over a relational schema.

Implements Section 2 of the paper — ownership (``--*``), reference
(``-->``) and subset (``==>o``) connections with their key conditions
and integrity rules — as a directed graph (:class:`StructuralSchema`)
plus an integrity checker and path utilities.
"""

from repro.structural.connections import Connection, ConnectionKind, Traversal
from repro.structural.integrity import (
    IntegrityChecker,
    Violation,
    connected_tuples,
    connection_entry,
)
from repro.structural.paths import ConnectionPath, shortest_path, simple_paths
from repro.structural.rendering import to_ascii, to_dot
from repro.structural.schema_graph import StructuralSchema
from repro.structural.validation import validate_connection

__all__ = [
    "Connection",
    "ConnectionKind",
    "Traversal",
    "StructuralSchema",
    "validate_connection",
    "IntegrityChecker",
    "Violation",
    "connected_tuples",
    "connection_entry",
    "ConnectionPath",
    "simple_paths",
    "shortest_path",
    "to_ascii",
    "to_dot",
]
