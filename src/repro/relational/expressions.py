"""Predicate expressions over rows.

The object query language, the relational algebra, and the Keller
baseline all select rows with predicates. An :class:`Expression` is a
small immutable AST that can be

* evaluated against an attribute-name mapping (``evaluate``),
* compiled to a SQL fragment with bound parameters for the sqlite
  backend (``to_sql``), and
* inspected for the attributes it mentions (``attributes``).

Comparisons against ``None`` follow SQL semantics: any comparison with a
null operand is false, except the explicit ``IsNull`` test.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Sequence, Tuple

from repro.errors import QueryError

__all__ = [
    "Expression",
    "Attr",
    "Const",
    "Comparison",
    "And",
    "Or",
    "Not",
    "IsNull",
    "Like",
    "In",
    "TRUE",
    "attr",
    "const",
]

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_SQL_OPERATORS = {
    "=": "=",
    "!=": "<>",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


class Expression:
    """Base class of the predicate AST."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """Names of all attributes mentioned in this expression."""
        raise NotImplementedError

    def to_sql(self) -> Tuple[str, List[Any]]:
        """A SQL fragment and its positional parameters."""
        raise NotImplementedError

    # Convenience combinators so callers can write ``p & q | ~r``.
    def __and__(self, other: "Expression") -> "Expression":
        return And(self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return Or(self, other)

    def __invert__(self) -> "Expression":
        return Not(self)


class Attr(Expression):
    """Reference to an attribute of the row being tested."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise QueryError(f"row has no attribute {self.name!r}") from None

    def attributes(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def to_sql(self) -> Tuple[str, List[Any]]:
        return f'"{self.name}"', []

    # Comparison builders: Attr("units") == 3 --> Comparison.
    def __eq__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return Comparison("!=", self, _wrap(other))

    def __lt__(self, other: Any) -> "Comparison":
        return Comparison("<", self, _wrap(other))

    def __le__(self, other: Any) -> "Comparison":
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other: Any) -> "Comparison":
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other: Any) -> "Comparison":
        return Comparison(">=", self, _wrap(other))

    def is_null(self) -> "IsNull":
        return IsNull(self)

    def __hash__(self) -> int:
        return hash(("Attr", self.name))

    def __repr__(self) -> str:
        return f"Attr({self.name!r})"


class Const(Expression):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def to_sql(self) -> Tuple[str, List[Any]]:
        return "?", [self.value]

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


def _wrap(value: Any) -> Expression:
    return value if isinstance(value, Expression) else Const(value)


class Comparison(Expression):
    """Binary comparison with SQL null semantics."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _OPERATORS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if lhs is None or rhs is None:
            return False
        return _OPERATORS[self.op](lhs, rhs)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def to_sql(self) -> Tuple[str, List[Any]]:
        # COALESCE pins SQL's three-valued logic to our two-valued
        # semantics: a comparison with a null operand is *false*, so a
        # NOT above it selects the row (unlike bare SQL, where UNKNOWN
        # stays UNKNOWN under NOT).
        lsql, lparams = self.left.to_sql()
        rsql, rparams = self.right.to_sql()
        return (
            f"(COALESCE(({lsql} {_SQL_OPERATORS[self.op]} {rsql}), 0))",
            lparams + rparams,
        )

    def __repr__(self) -> str:
        return f"Comparison({self.op!r}, {self.left!r}, {self.right!r})"


class And(Expression):
    __slots__ = ("parts",)

    def __init__(self, *parts: Expression) -> None:
        self.parts = tuple(parts)

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return all(part.evaluate(row) for part in self.parts)

    def attributes(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.attributes()
        return result

    def to_sql(self) -> Tuple[str, List[Any]]:
        if not self.parts:
            return "(1 = 1)", []
        fragments, params = [], []
        for part in self.parts:
            sql, ps = part.to_sql()
            fragments.append(sql)
            params.extend(ps)
        return "(" + " AND ".join(fragments) + ")", params

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.parts))})"


class Or(Expression):
    __slots__ = ("parts",)

    def __init__(self, *parts: Expression) -> None:
        self.parts = tuple(parts)

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return any(part.evaluate(row) for part in self.parts)

    def attributes(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.attributes()
        return result

    def to_sql(self) -> Tuple[str, List[Any]]:
        if not self.parts:
            return "(1 = 0)", []
        fragments, params = [], []
        for part in self.parts:
            sql, ps = part.to_sql()
            fragments.append(sql)
            params.extend(ps)
        return "(" + " OR ".join(fragments) + ")", params

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.parts))})"


class Not(Expression):
    __slots__ = ("part",)

    def __init__(self, part: Expression) -> None:
        self.part = part

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.part.evaluate(row)

    def attributes(self) -> FrozenSet[str]:
        return self.part.attributes()

    def to_sql(self) -> Tuple[str, List[Any]]:
        sql, params = self.part.to_sql()
        return f"(NOT {sql})", params

    def __repr__(self) -> str:
        return f"Not({self.part!r})"


class IsNull(Expression):
    """Explicit null test (``attr IS NULL``)."""

    __slots__ = ("part",)

    def __init__(self, part: Expression) -> None:
        self.part = part

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.part.evaluate(row) is None

    def attributes(self) -> FrozenSet[str]:
        return self.part.attributes()

    def to_sql(self) -> Tuple[str, List[Any]]:
        sql, params = self.part.to_sql()
        return f"({sql} IS NULL)", params

    def __repr__(self) -> str:
        return f"IsNull({self.part!r})"


class Like(Expression):
    """SQL ``LIKE`` pattern match (``%`` any run, ``_`` one character).

    Null operands never match, per SQL.
    """

    __slots__ = ("operand", "pattern", "_regex")

    def __init__(self, operand: Expression, pattern: str) -> None:
        import re

        self.operand = operand
        self.pattern = pattern
        fragments = []
        for ch in pattern:
            if ch == "%":
                fragments.append(".*")
            elif ch == "_":
                fragments.append(".")
            else:
                fragments.append(re.escape(ch))
        self._regex = re.compile("^" + "".join(fragments) + "$", re.DOTALL)

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        if value is None or not isinstance(value, str):
            return False
        return self._regex.match(value) is not None

    def attributes(self) -> FrozenSet[str]:
        return self.operand.attributes()

    def to_sql(self) -> Tuple[str, List[Any]]:
        sql, params = self.operand.to_sql()
        return f"(COALESCE(({sql} LIKE ?), 0))", params + [self.pattern]

    def __repr__(self) -> str:
        return f"Like({self.operand!r}, {self.pattern!r})"


class In(Expression):
    """Membership in a literal list; null never matches."""

    __slots__ = ("operand", "values")

    def __init__(self, operand: Expression, values: Sequence[Any]) -> None:
        self.operand = operand
        self.values = tuple(values)

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        return value in self.values

    def attributes(self) -> FrozenSet[str]:
        return self.operand.attributes()

    def to_sql(self) -> Tuple[str, List[Any]]:
        sql, params = self.operand.to_sql()
        if not self.values:
            return "(1 = 0)", params
        placeholders = ", ".join("?" for _ in self.values)
        return (
            f"(COALESCE(({sql} IN ({placeholders})), 0))",
            params + list(self.values),
        )

    def __repr__(self) -> str:
        return f"In({self.operand!r}, {self.values!r})"


TRUE = And()
"""The always-true predicate (an empty conjunction)."""


def attr(name: str) -> Attr:
    """Shorthand constructor for :class:`Attr`."""
    return Attr(name)


def const(value: Any) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)
