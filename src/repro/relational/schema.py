"""Relation schemas: attributes, keys, and row validation.

A :class:`RelationSchema` is the catalog entry for one base relation. It
fixes the ordered list of attributes, the primary key ``K(R)``, and hence
the nonkey attributes ``NK(R)`` — the two sets the structural model's
connection definitions are phrased in terms of (Section 2 of the paper).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.domains import Domain

__all__ = ["Attribute", "RelationSchema"]


class Attribute:
    """One attribute of a relation: a name, a domain, and nullability."""

    __slots__ = ("name", "domain", "nullable")

    def __init__(self, name: str, domain: Domain, nullable: bool = False) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"attribute name must be a nonempty string, got {name!r}")
        self.name = name
        self.domain = domain
        self.nullable = nullable

    def accepts(self, value: Any) -> bool:
        """Return True if ``value`` is legal for this attribute."""
        if value is None:
            return self.nullable
        return self.domain.contains(value)

    def __repr__(self) -> str:
        null = ", nullable" if self.nullable else ""
        return f"Attribute({self.name!r}, {self.domain.name}{null})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and other.name == self.name
            and other.domain == self.domain
            and other.nullable == self.nullable
        )

    def __hash__(self) -> int:
        return hash((self.name, self.domain, self.nullable))


class RelationSchema:
    """Schema of one relation: ordered attributes plus a primary key.

    Parameters
    ----------
    name:
        Relation name, unique within a database.
    attributes:
        Ordered sequence of :class:`Attribute`.
    key:
        Names of the key attributes ``K(R)``. Key attributes are
        implicitly non-nullable.

    Examples
    --------
    >>> from repro.relational.domains import TEXT, INTEGER
    >>> courses = RelationSchema(
    ...     "COURSES",
    ...     [Attribute("course_id", TEXT), Attribute("title", TEXT),
    ...      Attribute("units", INTEGER), Attribute("dept_name", TEXT)],
    ...     key=("course_id",),
    ... )
    >>> courses.key
    ('course_id',)
    >>> courses.nonkey_names
    ('title', 'units', 'dept_name')
    """

    __slots__ = (
        "name",
        "attributes",
        "key",
        "_by_name",
        "_positions",
        "_key_positions",
    )

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        key: Sequence[str],
    ) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation name must be a nonempty string, got {name!r}")
        attributes = tuple(attributes)
        if not attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        by_name: Dict[str, Attribute] = {}
        for attr in attributes:
            if attr.name in by_name:
                raise SchemaError(
                    f"relation {name!r} declares attribute {attr.name!r} twice"
                )
            by_name[attr.name] = attr
        key = tuple(key)
        if not key:
            raise SchemaError(f"relation {name!r} must declare a primary key")
        seen = set()
        for attr_name in key:
            if attr_name not in by_name:
                raise SchemaError(
                    f"relation {name!r}: key attribute {attr_name!r} is not declared"
                )
            if attr_name in seen:
                raise SchemaError(
                    f"relation {name!r}: key lists attribute {attr_name!r} twice"
                )
            seen.add(attr_name)

        # Key attributes may never be null: rebuild them non-nullable.
        normalized = tuple(
            Attribute(a.name, a.domain, nullable=False) if a.name in seen else a
            for a in attributes
        )

        self.name = name
        self.attributes = normalized
        self.key = key
        self._by_name = {a.name: a for a in normalized}
        self._positions = {a.name: i for i, a in enumerate(normalized)}
        self._key_positions = tuple(self._positions[k] for k in key)

    # -- lookups ----------------------------------------------------------

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """All attribute names, in declaration order."""
        return tuple(a.name for a in self.attributes)

    @property
    def nonkey_names(self) -> Tuple[str, ...]:
        """``NK(R)``: the nonkey attribute names, in declaration order."""
        key_set = set(self.key)
        return tuple(a.name for a in self.attributes if a.name not in key_set)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name`` or raise."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._by_name

    def position(self, name: str) -> int:
        """Column index of ``name`` in the stored value tuple."""
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def positions(self, names: Iterable[str]) -> Tuple[int, ...]:
        return tuple(self.position(n) for n in names)

    def is_key_attribute(self, name: str) -> bool:
        if name not in self._by_name:
            raise UnknownAttributeError(self.name, name)
        return name in self.key

    def domains_of(self, names: Sequence[str]) -> Tuple[Domain, ...]:
        """Domains of the listed attributes, in the given order."""
        return tuple(self.attribute(n).domain for n in names)

    # -- row construction and validation ----------------------------------

    def row_from_mapping(self, mapping: Mapping[str, Any]) -> Tuple[Any, ...]:
        """Build a value tuple from an attribute-name mapping.

        Missing nullable attributes default to ``None``; missing
        non-nullable attributes raise :class:`SchemaError`. Unknown
        names raise :class:`UnknownAttributeError`.
        """
        for given in mapping:
            if given not in self._by_name:
                raise UnknownAttributeError(self.name, given)
        values = []
        for attr in self.attributes:
            if attr.name in mapping:
                values.append(mapping[attr.name])
            elif attr.nullable:
                values.append(None)
            else:
                raise SchemaError(
                    f"relation {self.name!r}: missing value for non-nullable "
                    f"attribute {attr.name!r}"
                )
        row = tuple(values)
        self.validate_row(row)
        return row

    def validate_row(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Check arity, nullability, and domains; return the tuple."""
        if len(values) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} expects {len(self.attributes)} values, "
                f"got {len(values)}"
            )
        for attr, value in zip(self.attributes, values):
            if not attr.accepts(value):
                if value is None:
                    raise SchemaError(
                        f"relation {self.name!r}: attribute {attr.name!r} "
                        f"is not nullable"
                    )
                attr.domain.check(value, context=f"{self.name}.{attr.name}")
        return tuple(values)

    def key_of(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Extract the primary-key tuple from a full value tuple."""
        return tuple(values[i] for i in self._key_positions)

    def project(self, values: Sequence[Any], names: Sequence[str]) -> Tuple[Any, ...]:
        """Project a value tuple onto the listed attribute names."""
        return tuple(values[self.position(n)] for n in names)

    def as_mapping(self, values: Sequence[Any]) -> Dict[str, Any]:
        """Render a value tuple as an attribute-name dictionary."""
        return {a.name: v for a, v in zip(self.attributes, values)}

    # -- derived schemas ---------------------------------------------------

    def restricted_to(
        self, names: Sequence[str], new_name: Optional[str] = None
    ) -> "RelationSchema":
        """A schema containing only the listed attributes.

        The key of the restricted schema is the original key if it is
        fully contained in ``names``; otherwise all retained attributes
        form the key (projection may not preserve key uniqueness).
        """
        retained = [self.attribute(n) for n in names]
        if set(self.key) <= set(names):
            new_key: Sequence[str] = self.key
        else:
            new_key = tuple(names)
        return RelationSchema(new_name or self.name, retained, key=new_key)

    def __repr__(self) -> str:
        attrs = ", ".join(a.name for a in self.attributes)
        return f"RelationSchema({self.name!r}, [{attrs}], key={self.key!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and other.name == self.name
            and other.attributes == self.attributes
            and other.key == self.key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key))
