"""Attribute domains for the relational engine.

The structural model (Definition 2.1 of the paper) requires that the two
attribute sets of a connection have "identical number of attributes and
domains". Domains are therefore first-class values here: each attribute of
a relation schema names a :class:`Domain`, and connection validation
compares domains pairwise.

A :class:`Domain` knows how to validate a Python value, how to parse one
from text (for CSV loading), and how to render itself as a SQL type for
the sqlite backend.
"""

from __future__ import annotations

import datetime
from typing import Any, Callable, Optional

from repro.errors import DomainError

__all__ = [
    "Domain",
    "INTEGER",
    "REAL",
    "TEXT",
    "BOOLEAN",
    "DATE",
    "domain_by_name",
    "BUILTIN_DOMAINS",
]


class Domain:
    """A typed value domain for relation attributes.

    Parameters
    ----------
    name:
        Unique name of the domain (``"integer"``, ``"text"``, ...).
    pytypes:
        Tuple of Python types whose instances belong to the domain.
    parse:
        Function turning a string into a domain value (used by CSV I/O).
    sql_type:
        The sqlite column type used by the sqlite backend.
    validate:
        Optional extra predicate applied after the type check.
    """

    __slots__ = ("name", "pytypes", "parse", "sql_type", "_validate")

    def __init__(
        self,
        name: str,
        pytypes: tuple,
        parse: Callable[[str], Any],
        sql_type: str,
        validate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.name = name
        self.pytypes = pytypes
        self.parse = parse
        self.sql_type = sql_type
        self._validate = validate

    def contains(self, value: Any) -> bool:
        """Return True if ``value`` belongs to this domain.

        ``None`` never belongs to a domain; nullability is a property of
        the attribute, checked separately by the schema.
        """
        if value is None:
            return False
        if isinstance(value, bool) and bool not in self.pytypes:
            # bool is a subclass of int; keep booleans out of INTEGER.
            return False
        if not isinstance(value, self.pytypes):
            return False
        if self._validate is not None and not self._validate(value):
            return False
        return True

    def check(self, value: Any, context: str = "") -> Any:
        """Validate ``value``; raise :class:`DomainError` on mismatch."""
        if not self.contains(value):
            where = f" ({context})" if context else ""
            raise DomainError(
                f"value {value!r} is not in domain {self.name!r}{where}"
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Domain) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "t", "yes", "y"):
        return True
    if lowered in ("0", "false", "f", "no", "n"):
        return False
    raise DomainError(f"cannot parse boolean from {text!r}")


def _parse_date(text: str) -> datetime.date:
    return datetime.date.fromisoformat(text.strip())


INTEGER = Domain("integer", (int,), int, "INTEGER")
REAL = Domain("real", (float, int), float, "REAL")
TEXT = Domain("text", (str,), str, "TEXT")
BOOLEAN = Domain("boolean", (bool,), _parse_bool, "INTEGER")
DATE = Domain("date", (datetime.date,), _parse_date, "TEXT")

BUILTIN_DOMAINS = {
    d.name: d for d in (INTEGER, REAL, TEXT, BOOLEAN, DATE)
}


def domain_by_name(name: str) -> Domain:
    """Look up a built-in domain by name; raise on unknown names."""
    try:
        return BUILTIN_DOMAINS[name]
    except KeyError:
        raise DomainError(f"unknown domain name: {name!r}") from None
