"""Write-ahead intent journal for update plans, with crash recovery.

The translators promise all-or-nothing semantics, but an engine
transaction only protects against failures *inside* the transaction
window. A process crash between applying a plan and recording that it
was applied — or a storage layer whose multi-operation batch is not
atomic — leaves the question "did this plan happen?" unanswerable from
the data alone. The journal answers it:

1. before a plan is applied, it is serialized and appended with status
   ``PENDING`` (durably — the file-backed journal fsyncs), together
   with the *before/after images* of every (relation, key) cell it
   touches;
2. the plan is applied;
3. the entry is marked ``COMMITTED``.

:func:`recover` runs at :class:`~repro.penguin.Penguin` startup: any
entry still ``PENDING`` is re-resolved idempotently by comparing its
journaled images against the live tuples — if every cell shows the
after-image the plan completed (mark ``COMMITTED``); otherwise every
cell that moved is put back to its before-image and the entry is marked
``ABORTED``. Either way the database ends all-applied or all-reverted:
no torn plans.

Two backends: :class:`MemoryJournal` (tests, ephemeral sessions) and
:class:`FileJournal` (append-only JSON lines, ``fsync`` on every
append, reloaded on open).
"""

from __future__ import annotations

import datetime
import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.errors import JournalError
from repro.obs.context import current_trace_id
from repro.relational.engine import Engine
from repro.relational.operations import (
    DatabaseOperation,
    Delete,
    Insert,
    Replace,
    UpdatePlan,
)

__all__ = [
    "PENDING",
    "COMMITTED",
    "ABORTED",
    "JournalEntry",
    "PlanJournal",
    "MemoryJournal",
    "FileJournal",
    "plan_images",
    "images_from_records",
    "apply_journaled",
    "recover",
    "RecoveryReport",
    "encode_plan",
    "decode_plan",
    "encode_images",
    "decode_images",
]

PENDING = "pending"
COMMITTED = "committed"
ABORTED = "aborted"

Cell = Tuple[str, Tuple[Any, ...]]  # (relation, primary key)
Images = Dict[Cell, Tuple[Optional[Tuple[Any, ...]], Optional[Tuple[Any, ...]]]]


# ---------------------------------------------------------------------------
# Value serialization (JSON-safe round-trip for engine rows)
# ---------------------------------------------------------------------------


def _encode_scalar(value: Any) -> Any:
    if isinstance(value, datetime.datetime):  # narrowed defensively
        return {"$date": value.date().isoformat()}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def _decode_scalar(value: Any) -> Any:
    if isinstance(value, dict) and "$date" in value:
        return datetime.date.fromisoformat(value["$date"])
    return value


def _encode_row(row: Optional[Sequence[Any]]) -> Optional[List[Any]]:
    if row is None:
        return None
    return [_encode_scalar(v) for v in row]


def _decode_row(row: Optional[Sequence[Any]]) -> Optional[Tuple[Any, ...]]:
    if row is None:
        return None
    return tuple(_decode_scalar(v) for v in row)


def encode_plan(plan: UpdatePlan) -> List[Dict[str, Any]]:
    out = []
    for operation, reason in zip(plan.operations, plan.reasons):
        record: Dict[str, Any] = {
            "kind": operation.kind,
            "relation": operation.relation,
        }
        if operation.kind in ("delete", "replace"):
            record["key"] = _encode_row(operation.key)
        if operation.kind in ("insert", "replace"):
            record["values"] = _encode_row(operation.values)
        if reason:
            record["reason"] = reason
        out.append(record)
    return out


def decode_plan(records: Iterable[Dict[str, Any]]) -> UpdatePlan:
    plan = UpdatePlan()
    for record in records:
        kind = record["kind"]
        relation = record["relation"]
        if kind == "insert":
            operation: DatabaseOperation = Insert(
                relation, _decode_row(record["values"])
            )
        elif kind == "delete":
            operation = Delete(relation, _decode_row(record["key"]))
        elif kind == "replace":
            operation = Replace(
                relation, _decode_row(record["key"]), _decode_row(record["values"])
            )
        else:
            raise JournalError(f"unknown journaled operation kind {kind!r}")
        plan.add(operation, record.get("reason", ""))
    return plan


def encode_images(images: Images) -> List[List[Any]]:
    return [
        [relation, _encode_row(key), _encode_row(before), _encode_row(after)]
        for (relation, key), (before, after) in images.items()
    ]


def decode_images(rows: Iterable[Sequence[Any]]) -> Images:
    images: Images = {}
    for relation, key, before, after in rows:
        images[(relation, _decode_row(key))] = (
            _decode_row(before),
            _decode_row(after),
        )
    return images


# ---------------------------------------------------------------------------
# Before/after image capture
# ---------------------------------------------------------------------------


def plan_images(engine: Engine, plan: UpdatePlan) -> Images:
    """Net before/after images of every cell ``plan`` will touch.

    Must be called *before* the plan is applied: before-images are read
    from the engine. A key-changing replacement contributes two cells —
    the vacated old key and the occupied new key.
    """
    images: Images = {}

    def cell(relation: str, key: Tuple[Any, ...]):
        cell_key = (relation, tuple(key))
        if cell_key not in images:
            images[cell_key] = (engine.get(relation, key), None)
        return cell_key

    for operation in plan.operations:
        relation = operation.relation
        schema = engine.schema(relation)
        if operation.kind == "insert":
            key = schema.key_of(operation.values)
            ck = cell(relation, key)
            images[ck] = (images[ck][0], tuple(operation.values))
        elif operation.kind == "delete":
            ck = cell(relation, operation.key)
            images[ck] = (images[ck][0], None)
        else:  # replace
            new_key = schema.key_of(operation.values)
            old_ck = cell(relation, operation.key)
            if new_key == tuple(operation.key):
                images[old_ck] = (images[old_ck][0], tuple(operation.values))
            else:
                images[old_ck] = (images[old_ck][0], None)
                new_ck = cell(relation, new_key)
                images[new_ck] = (images[new_ck][0], tuple(operation.values))
    return images


def images_from_records(engine: Engine, records: Iterable) -> Images:
    """Net images from changelog records of one (uncommitted) transaction.

    Used by the eager translation path, where effects are already
    applied when the journal entry is written: the changelog preserved
    the before-images the engine can no longer provide.
    """
    images: Images = {}

    def touch(relation: str, key: Tuple[Any, ...], before, after) -> None:
        cell_key = (relation, tuple(key))
        if cell_key in images:
            images[cell_key] = (images[cell_key][0], after)
        else:
            images[cell_key] = (before, after)

    for record in records:
        if record.kind == "insert":
            touch(record.relation, record.key, None, record.new_values)
        elif record.kind == "delete":
            touch(record.relation, record.key, record.old_values, None)
        else:  # replace
            schema = engine.schema(record.relation)
            new_key = schema.key_of(record.new_values)
            if new_key == tuple(record.key):
                touch(record.relation, record.key, record.old_values,
                      record.new_values)
            else:
                touch(record.relation, record.key, record.old_values, None)
                touch(record.relation, new_key, None, record.new_values)
    return images


# ---------------------------------------------------------------------------
# Journal backends
# ---------------------------------------------------------------------------


class JournalEntry:
    """One journaled plan with its resolution state."""

    __slots__ = (
        "entry_id",
        "status",
        "plan_records",
        "image_records",
        "label",
        "trace_id",
    )

    def __init__(
        self,
        entry_id: int,
        plan_records: List[Dict[str, Any]],
        image_records: List[List[Any]],
        label: str = "",
        status: str = PENDING,
        trace_id: Optional[str] = None,
    ) -> None:
        self.entry_id = entry_id
        self.status = status
        self.plan_records = plan_records
        self.image_records = image_records
        self.label = label
        self.trace_id = trace_id

    def plan(self) -> UpdatePlan:
        return decode_plan(self.plan_records)

    def images(self) -> Images:
        return decode_images(self.image_records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JournalEntry(#{self.entry_id}, {self.status}, "
            f"{len(self.plan_records)} ops)"
        )


class PlanJournal:
    """Common machinery of the journal backends.

    The journal is append-only: ``begin`` appends a ``PENDING`` record
    carrying the serialized plan and images; ``mark_committed`` /
    ``mark_aborted`` append status markers referencing the entry id.
    Readers fold markers over entries, so replaying a journal file
    reconstructs exactly the in-memory state.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, JournalEntry] = {}
        self._next_id = 1
        self._lock = threading.Lock()

    # -- writing ------------------------------------------------------------

    def begin(self, plan: UpdatePlan, images: Images, label: str = "") -> int:
        """Append a PENDING entry; returns its id."""
        return self.begin_encoded(
            encode_plan(plan), encode_images(images), label
        )

    def begin_encoded(
        self,
        plan_records: List[Dict[str, Any]],
        image_records: List[List[Any]],
        label: str = "",
    ) -> int:
        """Append a PENDING entry from already-encoded payloads.

        The replica apply path journals the exact records the primary
        shipped; re-encoding a plan it just decoded would double the
        serialization cost for byte-identical output.

        The intent is stamped with the ambient trace id (if a
        :class:`~repro.obs.context.TraceContext` is active), so a
        recovered journal can still answer *which request* left a
        PENDING entry behind.
        """
        trace_id = current_trace_id()
        with self._lock:
            entry_id = self._next_id
            self._next_id += 1
            entry = JournalEntry(
                entry_id, plan_records, image_records, label,
                trace_id=trace_id,
            )
            self._entries[entry_id] = entry
            payload = {
                "event": PENDING,
                "id": entry_id,
                "label": label,
                "plan": entry.plan_records,
                "images": entry.image_records,
            }
            if trace_id is not None:
                payload["trace"] = trace_id
            self._append(payload)
        obs.metrics().counter("journal_entries_total", label=label).inc()
        return entry_id

    def mark_committed(self, entry_id: int) -> None:
        self._mark(entry_id, COMMITTED)

    def mark_aborted(self, entry_id: int) -> None:
        self._mark(entry_id, ABORTED)

    def _mark(self, entry_id: int, status: str) -> None:
        with self._lock:
            entry = self._entries.get(entry_id)
            if entry is None:
                raise JournalError(f"unknown journal entry #{entry_id}")
            entry.status = status
            self._append({"event": status, "id": entry_id})

    # -- reading ------------------------------------------------------------

    def entries(self) -> List[JournalEntry]:
        with self._lock:
            return list(self._entries.values())

    def pending(self) -> List[JournalEntry]:
        with self._lock:
            return [e for e in self._entries.values() if e.status == PENDING]

    def entry(self, entry_id: int) -> JournalEntry:
        with self._lock:
            try:
                return self._entries[entry_id]
            except KeyError:
                raise JournalError(f"unknown journal entry #{entry_id}") from None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- backend hook --------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        """Persist one record (called under the journal lock)."""

    def close(self) -> None:
        pass


class MemoryJournal(PlanJournal):
    """Journal kept only in memory — for tests and ephemeral sessions."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryJournal({len(self._entries)} entries)"


class FileJournal(PlanJournal):
    """Durable journal: append-only JSON lines, fsync'd per append.

    Reopening the same path reloads every entry and folds the status
    markers, so a restarted process sees exactly the pre-crash journal
    — including any entry still PENDING, which :func:`recover` then
    resolves.
    """

    def __init__(self, path) -> None:
        super().__init__()
        self.path = os.fspath(path)
        self._load()
        self._file = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise JournalError(
                        f"{self.path}:{line_no}: corrupt journal record"
                    ) from exc
                event = record.get("event")
                if event == PENDING:
                    entry = JournalEntry(
                        record["id"],
                        record["plan"],
                        record["images"],
                        record.get("label", ""),
                        trace_id=record.get("trace"),
                    )
                    self._entries[entry.entry_id] = entry
                    self._next_id = max(self._next_id, entry.entry_id + 1)
                elif event in (COMMITTED, ABORTED):
                    entry = self._entries.get(record["id"])
                    if entry is None:
                        raise JournalError(
                            f"{self.path}:{line_no}: marker for unknown "
                            f"entry #{record['id']}"
                        )
                    entry.status = event
                else:
                    raise JournalError(
                        f"{self.path}:{line_no}: unknown event {event!r}"
                    )

    def _append(self, record: Dict[str, Any]) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileJournal({self.path!r}, {len(self._entries)} entries)"


# ---------------------------------------------------------------------------
# Journaled application and recovery
# ---------------------------------------------------------------------------


def apply_journaled(
    engine: Engine,
    journal: PlanJournal,
    plan: UpdatePlan,
    atomic: bool = True,
    label: str = "",
) -> int:
    """Apply ``plan`` under journal protection; returns the entry id.

    With ``atomic=True`` the plan runs through the engine's batched
    transaction path. ``atomic=False`` applies each operation in
    autocommit mode — modelling a storage layer without multi-operation
    atomicity — which is exactly the regime where a mid-plan crash
    leaves a torn state for :func:`recover` to repair.
    """
    images = plan_images(engine, plan)
    entry_id = journal.begin(plan, images, label=label)
    if atomic:
        engine.apply_batch(plan.operations)
    else:
        for operation in plan.operations:
            operation.apply(engine)
    journal.mark_committed(entry_id)
    return entry_id


def _value_chains(
    engine: Engine, entry: JournalEntry
) -> Dict[Cell, List[Optional[Tuple[Any, ...]]]]:
    """Every value each journaled cell passes through, in plan order.

    A non-atomic plan that touches the same cell more than once (insert
    then replace, say) can be interrupted with the cell at an
    *intermediate* value matching neither net image. Simulating the
    journaled plan forward from the before-images recovers the full
    value history, so :func:`recover` can tell a torn intermediate
    state (revertible) from a foreign write (a conflict).
    """
    images = entry.images()
    chains: Dict[Cell, List[Optional[Tuple[Any, ...]]]] = {
        cell: [before] for cell, (before, _) in images.items()
    }

    def push(cell: Cell, value: Optional[Tuple[Any, ...]]) -> None:
        chain = chains.get(cell)
        if chain is not None and chain[-1] != value:
            chain.append(value)

    for operation in entry.plan().operations:
        relation = operation.relation
        schema = engine.schema(relation)
        if operation.kind == "insert":
            key = tuple(schema.key_of(operation.values))
            push((relation, key), tuple(operation.values))
        elif operation.kind == "delete":
            push((relation, tuple(operation.key)), None)
        else:  # replace
            new_key = tuple(schema.key_of(operation.values))
            if new_key == tuple(operation.key):
                push((relation, new_key), tuple(operation.values))
            else:
                push((relation, tuple(operation.key)), None)
                push((relation, new_key), tuple(operation.values))
    return chains


class RecoveryReport:
    """What :func:`recover` found and did."""

    def __init__(self) -> None:
        self.replayed: List[int] = []  # confirmed complete -> COMMITTED
        self.reverted: List[int] = []  # rolled back -> ABORTED
        self.conflicts: List[Tuple[int, str, Tuple[Any, ...]]] = []
        self.transactions_discarded = 0

    @property
    def pending_resolved(self) -> int:
        return len(self.replayed) + len(self.reverted)

    @property
    def clean(self) -> bool:
        """True when recovery resolved everything without conflicts."""
        return not self.conflicts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "replayed": list(self.replayed),
            "reverted": list(self.reverted),
            "conflicts": list(self.conflicts),
            "transactions_discarded": self.transactions_discarded,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecoveryReport(replayed={len(self.replayed)}, "
            f"reverted={len(self.reverted)}, "
            f"conflicts={len(self.conflicts)})"
        )


def recover(engine: Engine, journal: PlanJournal) -> RecoveryReport:
    """Resolve every PENDING journal entry, idempotently.

    For each pending plan, the live tuple of every journaled cell is
    compared against the before/after images:

    * every cell at its after-image → the plan completed before the
      crash; mark it ``COMMITTED`` (nothing to re-apply);
    * otherwise → revert each cell that moved back to its before-image
      inside one transaction and mark the entry ``ABORTED``.

    A cell at an *intermediate* value of a multi-touch plan (the crash
    hit between two operations on the same cell) is still revertible:
    the journaled plan is simulated forward to learn every value the
    cell legitimately passes through. Only a value matching none of
    them means someone else wrote the cell after the crash; it is left
    untouched and reported as a conflict rather than clobbered. Running
    recover twice is a no-op the second time.
    """
    report = RecoveryReport()

    with obs.tracer().span("journal.recover") as span:
        _recover_into(engine, journal, report)
        span.set(
            replayed=len(report.replayed),
            reverted=len(report.reverted),
            conflicts=len(report.conflicts),
        )
    registry = obs.metrics()
    registry.counter("journal_recoveries_total").inc()
    registry.counter("journal_replayed_total").inc(len(report.replayed))
    registry.counter("journal_reverted_total").inc(len(report.reverted))
    registry.counter("journal_conflicts_total").inc(len(report.conflicts))
    return report


def _recover_into(
    engine: Engine, journal: PlanJournal, report: RecoveryReport
) -> None:
    # A simulated crash can leave the engine mid-transaction; a real
    # restart would discard that transaction implicitly, so do the same.
    while getattr(engine, "in_transaction", False):
        engine.rollback()
        report.transactions_discarded += 1

    for entry in journal.pending():
        images = entry.images()
        live = {
            cell: engine.get(cell[0], cell[1]) for cell in images
        }
        if all(live[cell] == after for cell, (_, after) in images.items()):
            journal.mark_committed(entry.entry_id)
            report.replayed.append(entry.entry_id)
            continue
        chains = _value_chains(engine, entry)
        engine.begin()
        try:
            for (relation, key), (before, after) in images.items():
                current = live[(relation, key)]
                if current == before:
                    continue  # this cell never moved (or already reverted)
                if current not in chains[(relation, key)]:
                    report.conflicts.append((entry.entry_id, relation, key))
                    continue  # foreign write: do not clobber
                if before is None:
                    engine.delete(relation, key)
                elif current is None:
                    engine.insert(relation, before)
                else:
                    engine.replace(relation, key, before)
        except Exception:
            engine.rollback()
            raise
        engine.commit()
        journal.mark_aborted(entry.entry_id)
        report.reverted.append(entry.entry_id)
