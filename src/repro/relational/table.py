"""In-memory table storage with a primary-key index.

A :class:`Table` stores the rows of one relation keyed by primary key,
maintains any number of secondary :class:`~repro.relational.indexes.HashIndex`
objects, and exposes exactly the operation vocabulary the paper's
translation algorithms emit: **insert**, **delete**, and **replace**.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DuplicateKeyError, NoSuchRowError
from repro.relational.indexes import HashIndex
from repro.relational.row import Row
from repro.relational.schema import RelationSchema

__all__ = ["Table"]


class Table:
    """All rows of one relation, indexed by primary key."""

    __slots__ = ("schema", "_rows", "_indexes")

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._rows: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        self._indexes: Dict[Tuple[str, ...], HashIndex] = {}

    # -- index management ---------------------------------------------------

    def create_index(self, attribute_names: Sequence[str]) -> HashIndex:
        """Create (or return an existing) secondary index."""
        names = tuple(attribute_names)
        if names in self._indexes:
            return self._indexes[names]
        index = HashIndex(self.schema, names)
        for values in self._rows.values():
            index.add(values)
        self._indexes[names] = index
        return index

    def drop_index(self, attribute_names: Sequence[str]) -> None:
        self._indexes.pop(tuple(attribute_names), None)

    def has_index(self, attribute_names: Sequence[str]) -> bool:
        return tuple(attribute_names) in self._indexes

    @property
    def index_count(self) -> int:
        return len(self._indexes)

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Insert a value tuple; raise :class:`DuplicateKeyError` on clash."""
        values = self.schema.validate_row(values)
        key = self.schema.key_of(values)
        if key in self._rows:
            raise DuplicateKeyError(self.schema.name, key)
        self._rows[key] = values
        for index in self._indexes.values():
            index.add(values)
        return key

    def delete(self, key: Sequence[Any]) -> Tuple[Any, ...]:
        """Delete the row with primary key ``key``; return its values."""
        key = tuple(key)
        try:
            values = self._rows.pop(key)
        except KeyError:
            raise NoSuchRowError(self.schema.name, key) from None
        for index in self._indexes.values():
            index.remove(values)
        return values

    def replace(self, key: Sequence[Any], new_values: Sequence[Any]) -> Tuple[Any, ...]:
        """Replace the row with key ``key`` by ``new_values``.

        The new values may change the primary key (the paper's CASE R-3);
        if the new key collides with a *different* existing row, the
        replacement raises :class:`DuplicateKeyError`.
        Returns the old values.
        """
        key = tuple(key)
        try:
            old_values = self._rows[key]
        except KeyError:
            raise NoSuchRowError(self.schema.name, key) from None
        new_values = self.schema.validate_row(new_values)
        new_key = self.schema.key_of(new_values)
        if new_key != key and new_key in self._rows:
            raise DuplicateKeyError(self.schema.name, new_key)
        del self._rows[key]
        self._rows[new_key] = new_values
        for index in self._indexes.values():
            index.replace(old_values, new_values)
        return old_values

    def clear(self) -> None:
        self._rows.clear()
        # Rebuild indexes empty (cheaper than per-row removal).
        self._indexes = {
            names: HashIndex(self.schema, names) for names in self._indexes
        }

    # -- reads ---------------------------------------------------------------

    def get(self, key: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        """The value tuple with primary key ``key``, or ``None``."""
        return self._rows.get(tuple(key))

    def contains_key(self, key: Sequence[Any]) -> bool:
        return tuple(key) in self._rows

    def scan(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over all value tuples (snapshot; safe to mutate during)."""
        return iter(list(self._rows.values()))

    def rows(self) -> Iterator[Row]:
        """Iterate over all rows as :class:`Row` objects."""
        for values in self.scan():
            yield Row(self.schema, values)

    def find_by(
        self, attribute_names: Sequence[str], entry: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        """All value tuples whose ``attribute_names`` equal ``entry``.

        Uses a secondary index when one exists for exactly these
        attributes; falls back to a scan otherwise.
        """
        names = tuple(attribute_names)
        entry = tuple(entry)
        index = self._indexes.get(names)
        if index is not None:
            keys = index.lookup(entry)
            return [self._rows[k] for k in keys if k in self._rows]
        positions = self.schema.positions(names)
        return [
            values
            for values in self._rows.values()
            if tuple(values[i] for i in positions) == entry
        ]

    def keys(self) -> Iterator[Tuple[Any, ...]]:
        return iter(list(self._rows.keys()))

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Tuple[Any, ...]) -> bool:
        return tuple(key) in self._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.name}, {len(self._rows)} rows)"
