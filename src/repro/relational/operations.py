"""Database update operations as first-class values.

The paper's translation algorithms all have the same signature: "The
output is the set of database operations that implement that request."
This module defines those operations — :class:`Insert`, :class:`Delete`,
and :class:`Replace` — as immutable records, so a translator can build,
inspect, count, and optimize a plan before a single row is touched.

:func:`apply_plan` executes a plan against any engine inside a
transaction; if any operation fails, the transaction is rolled back and
the error re-raised, matching the paper's all-or-nothing semantics
("the transaction cannot be completed and has to be rolled back").
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "DatabaseOperation",
    "Insert",
    "Delete",
    "Replace",
    "UpdatePlan",
    "apply_plan",
]


class DatabaseOperation:
    """Base class of the three relational update operations."""

    kind = "abstract"

    @property
    def relation(self) -> str:
        raise NotImplementedError

    def apply(self, engine: "Engine") -> None:  # noqa: F821 - doc reference
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class Insert(DatabaseOperation):
    """Insert a full value tuple into a relation."""

    kind = "insert"
    __slots__ = ("_relation", "values")

    def __init__(self, relation: str, values: Sequence[Any]) -> None:
        self._relation = relation
        self.values = tuple(values)

    @property
    def relation(self) -> str:
        return self._relation

    def apply(self, engine) -> None:
        engine.insert(self._relation, self.values)

    def describe(self) -> str:
        return f"INSERT {self._relation} {self.values!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Insert)
            and other._relation == self._relation
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash(("insert", self._relation, self.values))

    def __repr__(self) -> str:
        return f"Insert({self._relation!r}, {self.values!r})"


class Delete(DatabaseOperation):
    """Delete the row with a given primary key from a relation."""

    kind = "delete"
    __slots__ = ("_relation", "key")

    def __init__(self, relation: str, key: Sequence[Any]) -> None:
        self._relation = relation
        self.key = tuple(key)

    @property
    def relation(self) -> str:
        return self._relation

    def apply(self, engine) -> None:
        engine.delete(self._relation, self.key)

    def describe(self) -> str:
        return f"DELETE {self._relation} key={self.key!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Delete)
            and other._relation == self._relation
            and other.key == self.key
        )

    def __hash__(self) -> int:
        return hash(("delete", self._relation, self.key))

    def __repr__(self) -> str:
        return f"Delete({self._relation!r}, {self.key!r})"


class Replace(DatabaseOperation):
    """Replace the row with a given primary key by new values.

    The new values may carry a different primary key (a key-changing
    replacement, the paper's CASE R-3).
    """

    kind = "replace"
    __slots__ = ("_relation", "key", "values")

    def __init__(self, relation: str, key: Sequence[Any], values: Sequence[Any]) -> None:
        self._relation = relation
        self.key = tuple(key)
        self.values = tuple(values)

    @property
    def relation(self) -> str:
        return self._relation

    def apply(self, engine) -> None:
        engine.replace(self._relation, self.key, self.values)

    def describe(self) -> str:
        return f"REPLACE {self._relation} key={self.key!r} -> {self.values!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Replace)
            and other._relation == self._relation
            and other.key == self.key
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash(("replace", self._relation, self.key, self.values))

    def __repr__(self) -> str:
        return f"Replace({self._relation!r}, {self.key!r}, {self.values!r})"


class UpdatePlan:
    """An ordered list of database operations produced by a translator.

    Order matters: deletions of owned tuples must precede the deletion of
    their owner only on engines that check constraints eagerly; we keep
    translator output order as produced so the plan doubles as an audit
    trail of *why* each operation was emitted (see ``reasons``).
    """

    __slots__ = ("operations", "reasons")

    def __init__(self) -> None:
        self.operations: List[DatabaseOperation] = []
        self.reasons: List[str] = []

    def add(self, operation: DatabaseOperation, reason: str = "") -> None:
        self.operations.append(operation)
        self.reasons.append(reason)

    def extend(self, other: "UpdatePlan") -> None:
        self.operations.extend(other.operations)
        self.reasons.extend(other.reasons)

    def count(self, kind: str = None) -> int:
        if kind is None:
            return len(self.operations)
        return sum(1 for op in self.operations if op.kind == kind)

    def relations_touched(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for op in self.operations:
            if op.relation not in seen:
                seen.append(op.relation)
        return tuple(seen)

    def describe(self) -> str:
        """A readable multi-line rendering of the plan."""
        lines = []
        for op, reason in zip(self.operations, self.reasons):
            suffix = f"    -- {reason}" if reason else ""
            lines.append(op.describe() + suffix)
        return "\n".join(lines)

    def __iter__(self):
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdatePlan({len(self.operations)} operations)"


def apply_plan(engine, plan: Iterable[DatabaseOperation]) -> int:
    """Apply every operation of ``plan`` in one transaction.

    Returns the number of operations applied. On any failure the
    transaction is rolled back and the exception re-raised.
    """
    count = 0
    engine.begin()
    try:
        for operation in plan:
            operation.apply(engine)
            count += 1
    except Exception:
        engine.rollback()
        raise
    engine.commit()
    return count
