"""Database update operations as first-class values.

The paper's translation algorithms all have the same signature: "The
output is the set of database operations that implement that request."
This module defines those operations — :class:`Insert`, :class:`Delete`,
and :class:`Replace` — as immutable records, so a translator can build,
inspect, count, and optimize a plan before a single row is touched.

:func:`apply_plan` executes a plan against any engine inside a
transaction; if any operation fails, the transaction is rolled back and
the error re-raised, matching the paper's all-or-nothing semantics
("the transaction cannot be completed and has to be rolled back").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DatabaseOperation",
    "Insert",
    "Delete",
    "Replace",
    "UpdatePlan",
    "apply_plan",
    "apply_plan_batch",
    "coalesce_plans",
]


class DatabaseOperation:
    """Base class of the three relational update operations."""

    kind = "abstract"

    @property
    def relation(self) -> str:
        raise NotImplementedError

    def apply(self, engine: "Engine") -> None:  # noqa: F821 - doc reference
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class Insert(DatabaseOperation):
    """Insert a full value tuple into a relation."""

    kind = "insert"
    __slots__ = ("_relation", "values")

    def __init__(self, relation: str, values: Sequence[Any]) -> None:
        self._relation = relation
        self.values = tuple(values)

    @property
    def relation(self) -> str:
        return self._relation

    def apply(self, engine) -> None:
        engine.insert(self._relation, self.values)

    def describe(self) -> str:
        return f"INSERT {self._relation} {self.values!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Insert)
            and other._relation == self._relation
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash(("insert", self._relation, self.values))

    def __repr__(self) -> str:
        return f"Insert({self._relation!r}, {self.values!r})"


class Delete(DatabaseOperation):
    """Delete the row with a given primary key from a relation."""

    kind = "delete"
    __slots__ = ("_relation", "key")

    def __init__(self, relation: str, key: Sequence[Any]) -> None:
        self._relation = relation
        self.key = tuple(key)

    @property
    def relation(self) -> str:
        return self._relation

    def apply(self, engine) -> None:
        engine.delete(self._relation, self.key)

    def describe(self) -> str:
        return f"DELETE {self._relation} key={self.key!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Delete)
            and other._relation == self._relation
            and other.key == self.key
        )

    def __hash__(self) -> int:
        return hash(("delete", self._relation, self.key))

    def __repr__(self) -> str:
        return f"Delete({self._relation!r}, {self.key!r})"


class Replace(DatabaseOperation):
    """Replace the row with a given primary key by new values.

    The new values may carry a different primary key (a key-changing
    replacement, the paper's CASE R-3).
    """

    kind = "replace"
    __slots__ = ("_relation", "key", "values")

    def __init__(self, relation: str, key: Sequence[Any], values: Sequence[Any]) -> None:
        self._relation = relation
        self.key = tuple(key)
        self.values = tuple(values)

    @property
    def relation(self) -> str:
        return self._relation

    def apply(self, engine) -> None:
        engine.replace(self._relation, self.key, self.values)

    def describe(self) -> str:
        return f"REPLACE {self._relation} key={self.key!r} -> {self.values!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Replace)
            and other._relation == self._relation
            and other.key == self.key
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash(("replace", self._relation, self.key, self.values))

    def __repr__(self) -> str:
        return f"Replace({self._relation!r}, {self.key!r}, {self.values!r})"


class UpdatePlan:
    """An ordered list of database operations produced by a translator.

    Order matters: deletions of owned tuples must precede the deletion of
    their owner only on engines that check constraints eagerly; we keep
    translator output order as produced so the plan doubles as an audit
    trail of *why* each operation was emitted (see ``reasons``).
    """

    __slots__ = ("operations", "reasons")

    def __init__(self) -> None:
        self.operations: List[DatabaseOperation] = []
        self.reasons: List[str] = []

    def add(self, operation: DatabaseOperation, reason: str = "") -> None:
        self.operations.append(operation)
        self.reasons.append(reason)

    def extend(self, other: "UpdatePlan") -> None:
        self.operations.extend(other.operations)
        self.reasons.extend(other.reasons)

    def count(self, kind: str = None) -> int:
        if kind is None:
            return len(self.operations)
        return sum(1 for op in self.operations if op.kind == kind)

    def relations_touched(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for op in self.operations:
            if op.relation not in seen:
                seen.append(op.relation)
        return tuple(seen)

    def describe(self) -> str:
        """A readable multi-line rendering of the plan."""
        lines = []
        for op, reason in zip(self.operations, self.reasons):
            suffix = f"    -- {reason}" if reason else ""
            lines.append(op.describe() + suffix)
        return "\n".join(lines)

    def __iter__(self):
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdatePlan({len(self.operations)} operations)"


def apply_plan(engine, plan: Iterable[DatabaseOperation]) -> int:
    """Apply every operation of ``plan`` in one transaction.

    Returns the number of operations applied. On any failure the
    transaction is rolled back and the exception re-raised.
    """
    count = 0
    engine.begin()
    try:
        for operation in plan:
            operation.apply(engine)
            count += 1
    except Exception:
        engine.rollback()
        raise
    engine.commit()
    return count


class _Entry:
    """Mutable per-key cell used while coalescing (one final operation)."""

    __slots__ = ("operation", "reason")

    def __init__(self, operation: DatabaseOperation, reason: str) -> None:
        self.operation = operation
        self.reason = reason


def coalesce_plans(
    plans: Iterable[UpdatePlan],
    schema_of: Callable[[str], "RelationSchema"],  # noqa: F821 - doc reference
) -> UpdatePlan:
    """Merge a sequence of plans into one equivalent, smaller plan.

    Operations touching the same (relation, primary key) are folded into
    a single net operation, in first-touch order:

    * ``Insert`` then ``Replace`` → one ``Insert`` with the final values;
    * ``Insert`` then ``Delete``  → nothing (the row never existed);
    * ``Replace`` then ``Replace`` → one ``Replace`` with the final values;
    * ``Replace`` then ``Delete``  → ``Delete`` of the original key;
    * ``Delete`` then ``Insert`` of the same key → one ``Replace``;
    * an exact duplicate ``Insert`` or ``Delete`` (as arises when
      independently translated plans share a skeleton tuple) collapses
      into one occurrence.

    ``schema_of`` supplies each relation's schema (pass
    ``engine.schema``); it is needed to extract primary keys from insert
    values. Key-changing replacements re-home their cell, so later
    operations on the new key keep folding into the same chain.
    """
    entries: List[_Entry] = []
    by_key = {}

    def key_of(relation: str, values: Sequence[Any]) -> Tuple[Any, ...]:
        return schema_of(relation).key_of(values)

    def current_cell(operation: DatabaseOperation) -> Tuple[str, Tuple[Any, ...]]:
        # Where the row lives *after* the operation: inserts and
        # replacements are addressed by the key of their new values (a
        # key-changing replace re-homes the chain); a deleted row stays
        # addressable under its old key so a re-insert folds into it.
        if operation.kind == "delete":
            return (operation.relation, operation.key)
        return (operation.relation, key_of(operation.relation, operation.values))

    for plan in plans:
        for operation, reason in zip(plan.operations, plan.reasons):
            relation = operation.relation
            if operation.kind == "insert":
                cell_key = (relation, key_of(relation, operation.values))
            else:
                cell_key = (relation, operation.key)
            entry: Optional[_Entry] = by_key.get(cell_key)
            if entry is None:
                entry = _Entry(operation, reason)
                entries.append(entry)
                by_key.pop(cell_key, None)
                by_key[current_cell(operation)] = entry
                continue
            folded = _fold(entry.operation, operation)
            if folded is entry.operation:
                continue  # exact duplicate collapsed
            entry.operation = folded
            entry.reason = reason or entry.reason
            del by_key[cell_key]
            if folded is not None:
                by_key[current_cell(folded)] = entry

    combined = UpdatePlan()
    for entry in entries:
        if entry.operation is not None:
            combined.add(entry.operation, entry.reason)
    return combined


def _fold(
    first: DatabaseOperation, second: DatabaseOperation
) -> Optional[DatabaseOperation]:
    """Net effect of two same-key operations; None means they cancel."""
    relation = first.relation
    if first.kind == "insert":
        if second.kind == "insert":
            if first.values == second.values:
                return first  # duplicate skeleton insert
            raise ValueError(
                f"cannot coalesce two inserts with key "
                f"{second.describe()!r} in {relation!r}"
            )
        if second.kind == "replace":
            return Insert(relation, second.values)
        return None  # insert then delete: the row never existed
    if first.kind == "replace":
        if second.kind == "replace":
            return Replace(relation, first.key, second.values)
        if second.kind == "delete":
            return Delete(relation, first.key)
        raise ValueError(
            f"cannot coalesce replace then insert on the same key in "
            f"{relation!r}"
        )
    # first is a delete
    if second.kind == "insert":
        return Replace(relation, first.key, second.values)
    if second.kind == "delete" and first.key == second.key:
        return first  # duplicate delete
    raise ValueError(
        f"cannot coalesce delete then {second.kind} on the same key in "
        f"{relation!r}"
    )


def apply_plan_batch(engine, plans: Iterable[UpdatePlan]) -> UpdatePlan:
    """Coalesce several plans and execute the result atomically.

    The combined plan runs through :meth:`Engine.apply_batch`, which
    backends implement with batched statements (``executemany`` runs on
    sqlite, a single lock acquisition in memory). Returns the coalesced
    plan that was applied.
    """
    combined = coalesce_plans(plans, engine.schema)
    engine.apply_batch(combined.operations)
    return combined
