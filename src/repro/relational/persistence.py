"""JSON persistence of relation schemas and database contents.

Dump/load round-trips a whole engine: schemas (attribute domains,
nullability, keys) and every row. Dates serialize as ISO strings and are
revived through their attribute's domain, so both engines round-trip
losslessly.
"""

from __future__ import annotations

import datetime
import json
from typing import Any, Dict, List, Mapping

from repro.errors import SchemaError
from repro.relational.domains import DATE, domain_by_name
from repro.relational.engine import Engine
from repro.relational.schema import Attribute, RelationSchema

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "dump_database",
    "load_database",
    "dumps_database",
    "loads_database",
]

FORMAT_VERSION = 1


def schema_to_dict(schema: RelationSchema) -> Dict[str, Any]:
    return {
        "name": schema.name,
        "attributes": [
            {
                "name": attribute.name,
                "domain": attribute.domain.name,
                "nullable": attribute.nullable,
            }
            for attribute in schema.attributes
        ],
        "key": list(schema.key),
    }


def schema_from_dict(data: Mapping[str, Any]) -> RelationSchema:
    attributes = [
        Attribute(
            entry["name"],
            domain_by_name(entry["domain"]),
            nullable=bool(entry.get("nullable", False)),
        )
        for entry in data["attributes"]
    ]
    return RelationSchema(data["name"], attributes, key=data["key"])


def _encode_row(schema: RelationSchema, values) -> List[Any]:
    encoded = []
    for attribute, value in zip(schema.attributes, values):
        if value is not None and attribute.domain == DATE:
            encoded.append(value.isoformat())
        else:
            encoded.append(value)
    return encoded


def _decode_row(schema: RelationSchema, values) -> List[Any]:
    decoded = []
    for attribute, value in zip(schema.attributes, values):
        if value is not None and attribute.domain == DATE:
            decoded.append(datetime.date.fromisoformat(value))
        else:
            decoded.append(value)
    return decoded


def dump_database(engine: Engine) -> Dict[str, Any]:
    """Schemas and rows of every relation, as a JSON-safe dictionary."""
    relations = []
    for name in engine.relation_names():
        schema = engine.schema(name)
        relations.append(
            {
                "schema": schema_to_dict(schema),
                "rows": [
                    _encode_row(schema, values) for values in engine.scan(name)
                ],
            }
        )
    return {"format": FORMAT_VERSION, "relations": relations}


def load_database(engine: Engine, data: Mapping[str, Any]) -> Dict[str, int]:
    """Create and fill every stored relation; returns row counts.

    The engine must not already contain relations with the stored names.
    """
    if data.get("format") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported database dump format {data.get('format')!r}"
        )
    counts: Dict[str, int] = {}
    for entry in data["relations"]:
        schema = schema_from_dict(entry["schema"])
        engine.create_relation(schema)
        count = 0
        for row in entry["rows"]:
            engine.insert(schema.name, tuple(_decode_row(schema, row)))
            count += 1
        counts[schema.name] = count
    return counts


def dumps_database(engine: Engine, indent: int = None) -> str:
    return json.dumps(dump_database(engine), indent=indent)


def loads_database(engine: Engine, text: str) -> Dict[str, int]:
    return load_database(engine, json.loads(text))
