"""Immutable row values bound to a relation schema.

Rows are stored internally as plain tuples; :class:`Row` is the
user-facing wrapper that carries the schema along so callers can access
attributes by name, extract keys, and project without juggling column
positions.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from repro.relational.schema import RelationSchema

__all__ = ["Row"]


class Row:
    """One tuple of a relation, with by-name access.

    ``Row`` is immutable and hashable; two rows are equal when they come
    from equally-named schemas and hold equal values.

    Examples
    --------
    >>> from repro.relational.domains import TEXT
    >>> from repro.relational.schema import Attribute, RelationSchema
    >>> dept = RelationSchema("DEPT", [Attribute("name", TEXT)], key=("name",))
    >>> row = Row(dept, ("Computer Science",))
    >>> row["name"]
    'Computer Science'
    >>> row.key
    ('Computer Science',)
    """

    __slots__ = ("schema", "values")

    def __init__(self, schema: RelationSchema, values: Sequence[Any]) -> None:
        self.schema = schema
        self.values = schema.validate_row(values)

    @classmethod
    def from_mapping(cls, schema: RelationSchema, mapping: Mapping[str, Any]) -> "Row":
        """Build a row from an attribute-name dictionary."""
        return cls(schema, schema.row_from_mapping(mapping))

    @property
    def key(self) -> Tuple[Any, ...]:
        """The primary-key tuple of this row."""
        return self.schema.key_of(self.values)

    @property
    def relation_name(self) -> str:
        return self.schema.name

    def __getitem__(self, name: str) -> Any:
        return self.values[self.schema.position(name)]

    def get(self, name: str, default: Any = None) -> Any:
        if not self.schema.has_attribute(name):
            return default
        return self.values[self.schema.position(name)]

    def project(self, names: Sequence[str]) -> Tuple[Any, ...]:
        """Values of the listed attributes, in the given order."""
        return self.schema.project(self.values, names)

    def as_dict(self) -> Dict[str, Any]:
        return self.schema.as_mapping(self.values)

    def replacing(self, **changes: Any) -> "Row":
        """A copy of this row with some attribute values changed."""
        mapping = self.as_dict()
        mapping.update(changes)
        return Row.from_mapping(self.schema, mapping)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Row)
            and other.schema.name == self.schema.name
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash((self.schema.name, self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{a.name}={v!r}" for a, v in zip(self.schema.attributes, self.values)
        )
        return f"Row({self.schema.name}: {pairs})"
