"""CSV import/export for relations.

Bulk-loading workload data and dumping relation state for inspection.
The header row must name the schema's attributes (any order); values are
parsed through each attribute's domain. Empty cells load as null for
nullable attributes.
"""

from __future__ import annotations

import csv
import io
from typing import TextIO

from repro.errors import SchemaError
from repro.relational.engine import Engine

__all__ = ["load_csv", "dump_csv", "loads_csv", "dumps_csv"]


def load_csv(engine: Engine, relation: str, stream: TextIO) -> int:
    """Load rows from ``stream`` into ``relation``; return the row count."""
    schema = engine.schema(relation)
    reader = csv.reader(stream)
    try:
        header = next(reader)
    except StopIteration:
        return 0
    for name in header:
        if not schema.has_attribute(name):
            raise SchemaError(
                f"CSV header names unknown attribute {name!r} "
                f"of relation {relation!r}"
            )
    count = 0
    for line_no, cells in enumerate(reader, start=2):
        if not cells:
            continue
        if len(cells) != len(header):
            raise SchemaError(
                f"CSV line {line_no}: expected {len(header)} cells, "
                f"got {len(cells)}"
            )
        mapping = {}
        for name, cell in zip(header, cells):
            attribute = schema.attribute(name)
            if cell == "":
                mapping[name] = None
            else:
                mapping[name] = attribute.domain.parse(cell)
        engine.insert(relation, mapping)
        count += 1
    return count


def loads_csv(engine: Engine, relation: str, text: str) -> int:
    """Load rows from a CSV string."""
    return load_csv(engine, relation, io.StringIO(text))


def dump_csv(engine: Engine, relation: str, stream: TextIO) -> int:
    """Write all rows of ``relation`` to ``stream``; return the row count."""
    schema = engine.schema(relation)
    writer = csv.writer(stream)
    writer.writerow(schema.attribute_names)
    count = 0
    for values in engine.scan(relation):
        writer.writerow(["" if v is None else v for v in values])
        count += 1
    return count


def dumps_csv(engine: Engine, relation: str) -> str:
    """Render all rows of ``relation`` as a CSV string."""
    buffer = io.StringIO()
    dump_csv(engine, relation, buffer)
    return buffer.getvalue()
