"""Relational algebra over derived relations.

The instantiation engine and the Keller baseline both manipulate
intermediate results that are not stored tables: selections of a base
relation, projections, and joins across connections. A
:class:`DerivedRelation` is such an intermediate — a schema plus a list
of value tuples — and this module provides the classical operators over
them.

Projection deduplicates (set semantics), matching the paper's relational
setting; joins are hash joins on explicit attribute pairs, which is what
a structural-model connection specifies (``<X1, X2>`` of Definition 2.1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.expressions import Expression
from repro.relational.schema import Attribute, RelationSchema

__all__ = [
    "DerivedRelation",
    "from_engine",
    "select",
    "project",
    "join",
    "rename",
    "union",
    "difference",
    "cross",
    "aggregate",
]


class DerivedRelation:
    """An intermediate query result: a schema and its value tuples."""

    __slots__ = ("schema", "tuples")

    def __init__(
        self, schema: RelationSchema, tuples: Iterable[Tuple[Any, ...]]
    ) -> None:
        self.schema = schema
        self.tuples = [tuple(t) for t in tuples]

    def mappings(self) -> List[Dict[str, Any]]:
        """All tuples rendered as attribute-name dictionaries."""
        return [self.schema.as_mapping(t) for t in self.tuples]

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DerivedRelation({self.schema.name!r}, {len(self.tuples)} tuples)"


def from_engine(engine, name: str) -> DerivedRelation:
    """Materialize a stored relation as a derived relation."""
    return DerivedRelation(engine.schema(name), engine.scan(name))


def select(relation: DerivedRelation, predicate: Expression) -> DerivedRelation:
    """Tuples of ``relation`` satisfying ``predicate``."""
    schema = relation.schema
    kept = [
        t for t in relation.tuples if predicate.evaluate(schema.as_mapping(t))
    ]
    return DerivedRelation(schema, kept)


def project(
    relation: DerivedRelation,
    names: Sequence[str],
    new_name: Optional[str] = None,
    distinct: bool = True,
) -> DerivedRelation:
    """Projection onto ``names`` with optional deduplication."""
    schema = relation.schema.restricted_to(names, new_name=new_name)
    positions = relation.schema.positions(names)
    seen = set()
    result: List[Tuple[Any, ...]] = []
    for t in relation.tuples:
        projected = tuple(t[i] for i in positions)
        if distinct:
            if projected in seen:
                continue
            seen.add(projected)
        result.append(projected)
    return DerivedRelation(schema, result)


def rename(
    relation: DerivedRelation,
    mapping: Dict[str, str],
    new_name: Optional[str] = None,
) -> DerivedRelation:
    """Rename attributes; unmentioned names stay unchanged."""
    attributes = []
    for attr in relation.schema.attributes:
        attributes.append(
            Attribute(mapping.get(attr.name, attr.name), attr.domain, attr.nullable)
        )
    key = tuple(mapping.get(k, k) for k in relation.schema.key)
    schema = RelationSchema(
        new_name or relation.schema.name, attributes, key=key
    )
    return DerivedRelation(schema, relation.tuples)


def _joined_schema(
    left: RelationSchema,
    right: RelationSchema,
    new_name: str,
    prefix_right: str,
) -> Tuple[RelationSchema, Dict[str, str]]:
    """Schema of a join result; right-side name clashes get prefixed."""
    attributes = list(left.attributes)
    taken = {a.name for a in attributes}
    right_names: Dict[str, str] = {}
    for attr in right.attributes:
        name = attr.name
        if name in taken:
            name = f"{prefix_right}.{attr.name}"
        if name in taken:
            raise SchemaError(f"join would duplicate attribute {name!r}")
        taken.add(name)
        right_names[attr.name] = name
        attributes.append(Attribute(name, attr.domain, attr.nullable))
    key = tuple(left.key) + tuple(right_names[k] for k in right.key)
    # Deduplicate key attribute names while preserving order.
    seen = set()
    unique_key = tuple(k for k in key if not (k in seen or seen.add(k)))
    schema = RelationSchema(new_name, attributes, key=unique_key)
    return schema, right_names


def join(
    left: DerivedRelation,
    right: DerivedRelation,
    on: Sequence[Tuple[str, str]],
    new_name: Optional[str] = None,
) -> DerivedRelation:
    """Equi-join on explicit attribute pairs ``(left_attr, right_attr)``.

    Null join values never match, per the structural model: a tuple with
    null connecting attributes is connected to nothing.
    """
    name = new_name or f"{left.schema.name}*{right.schema.name}"
    schema, __ = _joined_schema(left.schema, right.schema, name, right.schema.name)
    left_positions = left.schema.positions([pair[0] for pair in on])
    right_positions = right.schema.positions([pair[1] for pair in on])

    buckets: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for t in right.tuples:
        entry = tuple(t[i] for i in right_positions)
        if any(v is None for v in entry):
            continue
        buckets.setdefault(entry, []).append(t)

    result: List[Tuple[Any, ...]] = []
    for lt in left.tuples:
        entry = tuple(lt[i] for i in left_positions)
        if any(v is None for v in entry):
            continue
        for rt in buckets.get(entry, ()):
            result.append(lt + rt)
    return DerivedRelation(schema, result)


def cross(
    left: DerivedRelation,
    right: DerivedRelation,
    new_name: Optional[str] = None,
) -> DerivedRelation:
    """Cartesian product (used by the Keller baseline's view bodies)."""
    name = new_name or f"{left.schema.name}x{right.schema.name}"
    schema, __ = _joined_schema(left.schema, right.schema, name, right.schema.name)
    result = [lt + rt for lt in left.tuples for rt in right.tuples]
    return DerivedRelation(schema, result)


_AGGREGATE_FUNCS = ("count", "min", "max", "sum", "avg")


def aggregate(
    relation: DerivedRelation,
    group_by: Sequence[str],
    aggregations: Dict[str, Tuple[str, Optional[str]]],
    new_name: Optional[str] = None,
) -> DerivedRelation:
    """Group-by aggregation with SQL null semantics.

    ``aggregations`` maps output attribute names to ``(func, attr)``
    pairs; ``func`` is one of count/min/max/sum/avg, and ``attr`` may be
    None for ``count`` (count of rows). Nulls are ignored by every
    aggregate; min/max/sum/avg over an empty group yield null.

    >>> # doctest-style illustration; see tests for executable examples
    """
    from repro.relational.domains import INTEGER, REAL

    source = relation.schema
    for name in group_by:
        source.attribute(name)
    attributes = [
        Attribute(
            name,
            source.attribute(name).domain,
            source.attribute(name).nullable,
        )
        for name in group_by
    ]
    for output, (func, attr_name) in aggregations.items():
        if func not in _AGGREGATE_FUNCS:
            raise SchemaError(f"unknown aggregate function {func!r}")
        if func == "count":
            domain = INTEGER
        elif func in ("sum", "avg"):
            domain = REAL
        else:
            if attr_name is None:
                raise SchemaError(f"{func!r} needs an attribute")
            domain = source.attribute(attr_name).domain
        attributes.append(Attribute(output, domain, nullable=func != "count"))
    key = tuple(group_by) if group_by else tuple(aggregations)
    schema = RelationSchema(
        new_name or f"agg({source.name})", attributes, key=key
    )

    group_positions = source.positions(group_by)
    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in relation.tuples:
        entry = tuple(row[i] for i in group_positions)
        groups.setdefault(entry, []).append(row)

    def compute(func: str, attr_name: Optional[str], rows) -> Any:
        if func == "count" and attr_name is None:
            return len(rows)
        position = source.position(attr_name)
        values = [r[position] for r in rows if r[position] is not None]
        if func == "count":
            return len(values)
        if not values:
            return None
        if func == "min":
            return min(values)
        if func == "max":
            return max(values)
        if func == "sum":
            return float(sum(values))
        return float(sum(values)) / len(values)

    result = []
    for entry, rows in groups.items():
        out = list(entry)
        for output, (func, attr_name) in aggregations.items():
            out.append(compute(func, attr_name, rows))
        result.append(tuple(out))
    return DerivedRelation(schema, result)


def _check_compatible(left: DerivedRelation, right: DerivedRelation) -> None:
    if left.schema.arity != right.schema.arity:
        raise SchemaError(
            "set operation requires identical arity: "
            f"{left.schema.arity} vs {right.schema.arity}"
        )


def union(left: DerivedRelation, right: DerivedRelation) -> DerivedRelation:
    """Set union (deduplicated), keeping the left schema."""
    _check_compatible(left, right)
    seen = set()
    result: List[Tuple[Any, ...]] = []
    for t in list(left.tuples) + list(right.tuples):
        if t not in seen:
            seen.add(t)
            result.append(t)
    return DerivedRelation(left.schema, result)


def difference(left: DerivedRelation, right: DerivedRelation) -> DerivedRelation:
    """Set difference, keeping the left schema."""
    _check_compatible(left, right)
    removed = set(right.tuples)
    return DerivedRelation(
        left.schema, [t for t in left.tuples if t not in removed]
    )
