"""Change log: an audit trail of applied database operations.

The memory engine records every applied mutation here. The log serves
three purposes:

* **undo** — transactions roll back by replaying inverse entries,
* **audit** — tests assert on exactly which operations a translation
  produced and applied,
* **metrics** — the benchmark harness counts operations per kind to
  report translation cost independently of wall-clock noise,
* **change feed** — subscribers (the materialized-view maintainer) are
  notified of appended records and of truncations, so caches can follow
  the base tables incrementally and roll back with aborted
  transactions.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ChangeRecord", "ChangeLog"]


class ChangeRecord:
    """One applied mutation, with enough state to undo it."""

    __slots__ = ("kind", "relation", "key", "new_values", "old_values")

    def __init__(
        self,
        kind: str,
        relation: str,
        key: Tuple[Any, ...],
        new_values: Optional[Tuple[Any, ...]] = None,
        old_values: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.kind = kind
        self.relation = relation
        self.key = key
        self.new_values = new_values
        self.old_values = old_values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChangeRecord({self.kind}, {self.relation}, key={self.key!r})"
        )


class ChangeLog:
    """Append-only log of :class:`ChangeRecord` with per-kind counters.

    Subscribers registered via :meth:`subscribe` may define two optional
    methods: ``on_append(record)``, called after a record is appended,
    and ``on_truncate(mark)``, called after the log is cut back to
    ``mark`` (i.e. a rollback). Both are best-effort notifications on
    the mutation path, so they must be cheap and must not mutate the
    engine.
    """

    __slots__ = ("records", "counters", "_subscribers", "_subscriber_lock")

    def __init__(self) -> None:
        self.records: List[ChangeRecord] = []
        self.counters: Dict[str, int] = {"insert": 0, "delete": 0, "replace": 0}
        self._subscribers: List[Any] = []
        # Guards the subscriber list only. Appends/truncations themselves
        # are serialized by whoever mutates the engine; subscriptions may
        # legitimately race with them (e.g. a reader thread materializing
        # while a writer commits), so dispatch iterates over a snapshot.
        self._subscriber_lock = threading.Lock()

    # -- subscriptions ------------------------------------------------------

    def subscribe(self, subscriber: Any) -> None:
        """Register a listener for appends and truncations."""
        with self._subscriber_lock:
            if subscriber not in self._subscribers:
                self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Any) -> None:
        with self._subscriber_lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    def _snapshot_subscribers(self) -> Tuple[Any, ...]:
        with self._subscriber_lock:
            return tuple(self._subscribers)

    def _appended(self, record: ChangeRecord) -> None:
        for subscriber in self._snapshot_subscribers():
            on_append = getattr(subscriber, "on_append", None)
            if on_append is not None:
                on_append(record)

    # -- recording ----------------------------------------------------------

    def record_insert(
        self, relation: str, key: Tuple[Any, ...], values: Tuple[Any, ...]
    ) -> None:
        record = ChangeRecord("insert", relation, key, new_values=values)
        self.records.append(record)
        self.counters["insert"] += 1
        self._appended(record)

    def record_delete(
        self, relation: str, key: Tuple[Any, ...], old_values: Tuple[Any, ...]
    ) -> None:
        record = ChangeRecord("delete", relation, key, old_values=old_values)
        self.records.append(record)
        self.counters["delete"] += 1
        self._appended(record)

    def record_replace(
        self,
        relation: str,
        key: Tuple[Any, ...],
        old_values: Tuple[Any, ...],
        new_values: Tuple[Any, ...],
    ) -> None:
        record = ChangeRecord(
            "replace", relation, key, new_values=new_values, old_values=old_values
        )
        self.records.append(record)
        self.counters["replace"] += 1
        self._appended(record)

    def mark(self) -> int:
        """A position marker for later truncation or undo."""
        return len(self.records)

    def since(self, mark: int) -> List[ChangeRecord]:
        return self.records[mark:]

    def truncate(self, mark: int) -> None:
        dropped = self.records[mark:]
        for record in dropped:
            self.counters[record.kind] -= 1
        del self.records[mark:]
        if dropped:
            for subscriber in self._snapshot_subscribers():
                on_truncate = getattr(subscriber, "on_truncate", None)
                if on_truncate is not None:
                    on_truncate(mark)

    def reset_counters(self) -> None:
        self.counters = {"insert": 0, "delete": 0, "replace": 0}

    def total(self) -> int:
        return sum(self.counters.values())

    def __len__(self) -> int:
        return len(self.records)
