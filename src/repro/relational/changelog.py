"""Change log: an audit trail of applied database operations.

The memory engine records every applied mutation here. The log serves
three purposes:

* **undo** — transactions roll back by replaying inverse entries,
* **audit** — tests assert on exactly which operations a translation
  produced and applied,
* **metrics** — the benchmark harness counts operations per kind to
  report translation cost independently of wall-clock noise.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ChangeRecord", "ChangeLog"]


class ChangeRecord:
    """One applied mutation, with enough state to undo it."""

    __slots__ = ("kind", "relation", "key", "new_values", "old_values")

    def __init__(
        self,
        kind: str,
        relation: str,
        key: Tuple[Any, ...],
        new_values: Optional[Tuple[Any, ...]] = None,
        old_values: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.kind = kind
        self.relation = relation
        self.key = key
        self.new_values = new_values
        self.old_values = old_values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChangeRecord({self.kind}, {self.relation}, key={self.key!r})"
        )


class ChangeLog:
    """Append-only log of :class:`ChangeRecord` with per-kind counters."""

    __slots__ = ("records", "counters")

    def __init__(self) -> None:
        self.records: List[ChangeRecord] = []
        self.counters: Dict[str, int] = {"insert": 0, "delete": 0, "replace": 0}

    def record_insert(
        self, relation: str, key: Tuple[Any, ...], values: Tuple[Any, ...]
    ) -> None:
        self.records.append(ChangeRecord("insert", relation, key, new_values=values))
        self.counters["insert"] += 1

    def record_delete(
        self, relation: str, key: Tuple[Any, ...], old_values: Tuple[Any, ...]
    ) -> None:
        self.records.append(
            ChangeRecord("delete", relation, key, old_values=old_values)
        )
        self.counters["delete"] += 1

    def record_replace(
        self,
        relation: str,
        key: Tuple[Any, ...],
        old_values: Tuple[Any, ...],
        new_values: Tuple[Any, ...],
    ) -> None:
        self.records.append(
            ChangeRecord(
                "replace", relation, key, new_values=new_values, old_values=old_values
            )
        )
        self.counters["replace"] += 1

    def mark(self) -> int:
        """A position marker for later truncation or undo."""
        return len(self.records)

    def since(self, mark: int) -> List[ChangeRecord]:
        return self.records[mark:]

    def truncate(self, mark: int) -> None:
        dropped = self.records[mark:]
        for record in dropped:
            self.counters[record.kind] -= 1
        del self.records[mark:]

    def reset_counters(self) -> None:
        self.counters = {"insert": 0, "delete": 0, "replace": 0}

    def total(self) -> int:
        return sum(self.counters.values())

    def __len__(self) -> int:
        return len(self.records)
