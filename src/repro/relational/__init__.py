"""The relational substrate: schemas, tables, engines, algebra.

This package is a self-contained miniature relational DBMS. Everything
above it (the structural model, view objects, update translation) talks
to storage exclusively through the :class:`~repro.relational.engine.Engine`
interface, implemented by both :class:`MemoryEngine` (from scratch, with
undo-log transactions and hash indexes) and :class:`SqliteEngine`
(sqlite3 standard library).
"""

from repro.relational.algebra import (
    DerivedRelation,
    aggregate,
    cross,
    difference,
    from_engine,
    join,
    project,
    rename,
    select,
    union,
)
from repro.relational.changelog import ChangeLog, ChangeRecord
from repro.relational.ddl import SchemaBuilder, relation
from repro.relational.domains import (
    BOOLEAN,
    DATE,
    INTEGER,
    REAL,
    TEXT,
    Domain,
    domain_by_name,
)
from repro.relational.engine import Engine
from repro.relational.faults import (
    FaultInjectingEngine,
    FaultPlan,
    FaultRule,
    SimulatedCrash,
)
from repro.relational.journal import (
    FileJournal,
    JournalEntry,
    MemoryJournal,
    PlanJournal,
    RecoveryReport,
    apply_journaled,
    recover,
)
from repro.relational.retry import RetryPolicy, is_transient_error
from repro.relational.expressions import (
    And,
    Attr,
    Comparison,
    Const,
    Expression,
    In,
    IsNull,
    Like,
    Not,
    Or,
    TRUE,
    attr,
    const,
)
from repro.relational.memory_engine import MemoryEngine
from repro.relational.operations import (
    DatabaseOperation,
    Delete,
    Insert,
    Replace,
    UpdatePlan,
    apply_plan,
)
from repro.relational.row import Row
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sqlite_engine import SqliteEngine
from repro.relational.table import Table

__all__ = [
    "Attribute",
    "RelationSchema",
    "Row",
    "Table",
    "Engine",
    "MemoryEngine",
    "SqliteEngine",
    "Domain",
    "INTEGER",
    "REAL",
    "TEXT",
    "BOOLEAN",
    "DATE",
    "domain_by_name",
    "Expression",
    "Attr",
    "Const",
    "Comparison",
    "And",
    "Or",
    "Not",
    "IsNull",
    "Like",
    "In",
    "TRUE",
    "attr",
    "const",
    "DatabaseOperation",
    "Insert",
    "Delete",
    "Replace",
    "UpdatePlan",
    "apply_plan",
    "ChangeLog",
    "ChangeRecord",
    "DerivedRelation",
    "from_engine",
    "select",
    "project",
    "join",
    "cross",
    "rename",
    "union",
    "difference",
    "aggregate",
    "SchemaBuilder",
    "relation",
    "FaultInjectingEngine",
    "FaultPlan",
    "FaultRule",
    "SimulatedCrash",
    "RetryPolicy",
    "is_transient_error",
    "PlanJournal",
    "MemoryJournal",
    "FileJournal",
    "JournalEntry",
    "RecoveryReport",
    "apply_journaled",
    "recover",
]
