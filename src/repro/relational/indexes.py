"""Secondary hash indexes over in-memory tables.

Update propagation in the structural model is driven by lookups of the
form "all tuples of R whose attributes X equal these values" (matching
tuples across a connection). A :class:`HashIndex` makes those lookups
O(1) instead of a scan; the integrity engine creates one per connection
endpoint unless indexes are disabled (the ablation benches measure the
difference).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Set, Tuple

from repro.relational.schema import RelationSchema

__all__ = ["HashIndex"]


class HashIndex:
    """Hash index mapping attribute-value tuples to primary keys.

    The index stores primary keys, not rows, so it stays valid across
    nonkey replacements that do not touch the indexed attributes.
    """

    __slots__ = ("schema", "attribute_names", "_positions", "_buckets")

    def __init__(self, schema: RelationSchema, attribute_names: Iterable[str]) -> None:
        self.schema = schema
        self.attribute_names = tuple(attribute_names)
        self._positions = schema.positions(self.attribute_names)
        self._buckets: Dict[Tuple[Any, ...], Set[Tuple[Any, ...]]] = {}

    def _entry(self, values: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(values[i] for i in self._positions)

    def add(self, values: Tuple[Any, ...]) -> None:
        """Index a freshly inserted value tuple."""
        entry = self._entry(values)
        key = self.schema.key_of(values)
        self._buckets.setdefault(entry, set()).add(key)

    def remove(self, values: Tuple[Any, ...]) -> None:
        """Drop a deleted value tuple from the index."""
        entry = self._entry(values)
        key = self.schema.key_of(values)
        bucket = self._buckets.get(entry)
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del self._buckets[entry]

    def replace(self, old: Tuple[Any, ...], new: Tuple[Any, ...]) -> None:
        self.remove(old)
        self.add(new)

    def lookup(self, entry: Tuple[Any, ...]) -> Set[Tuple[Any, ...]]:
        """Primary keys of all rows whose indexed attributes equal ``entry``."""
        return set(self._buckets.get(tuple(entry), ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashIndex({self.schema.name}.{'/'.join(self.attribute_names)}, "
            f"{len(self._buckets)} buckets)"
        )
