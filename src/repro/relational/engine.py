"""Abstract storage engine interface.

Both backends — the from-scratch in-memory engine and the sqlite3
backend — implement this interface, so every layer above (structural
integrity, view-object instantiation, update translation) is backend
agnostic. The benchmark harness exploits this to run identical update
plans on both engines.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.relational.expressions import Expression
from repro.relational.row import Row
from repro.relational.schema import RelationSchema

__all__ = ["Engine"]

ValuesLike = Union[Sequence[Any], Mapping[str, Any]]


class Engine:
    """Common interface of all storage backends."""

    # -- catalog -----------------------------------------------------------

    def create_relation(self, schema: RelationSchema) -> None:
        raise NotImplementedError

    def drop_relation(self, name: str) -> None:
        raise NotImplementedError

    def relation_names(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def schema(self, name: str) -> RelationSchema:
        raise NotImplementedError

    def has_relation(self, name: str) -> bool:
        return name in self.relation_names()

    # -- mutation ----------------------------------------------------------

    def insert(self, name: str, values: ValuesLike) -> Tuple[Any, ...]:
        """Insert one row; return its primary key."""
        raise NotImplementedError

    def delete(self, name: str, key: Sequence[Any]) -> None:
        raise NotImplementedError

    def replace(self, name: str, key: Sequence[Any], values: ValuesLike) -> None:
        raise NotImplementedError

    def clear(self, name: str) -> None:
        """Remove all rows of a relation."""
        raise NotImplementedError

    # -- reads -------------------------------------------------------------

    def get(self, name: str, key: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        raise NotImplementedError

    def contains(self, name: str, key: Sequence[Any]) -> bool:
        return self.get(name, key) is not None

    def scan(self, name: str) -> Iterator[Tuple[Any, ...]]:
        raise NotImplementedError

    def find_by(
        self, name: str, attribute_names: Sequence[str], entry: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        """All value tuples whose listed attributes equal ``entry``."""
        raise NotImplementedError

    def select(self, name: str, predicate: Expression) -> List[Tuple[Any, ...]]:
        """All value tuples satisfying ``predicate``."""
        schema = self.schema(name)
        result = []
        for values in self.scan(name):
            if predicate.evaluate(schema.as_mapping(values)):
                result.append(values)
        return result

    def count(self, name: str) -> int:
        return sum(1 for _ in self.scan(name))

    def rows(self, name: str) -> Iterator[Row]:
        """Scan a relation yielding :class:`Row` objects."""
        schema = self.schema(name)
        for values in self.scan(name):
            yield Row(schema, values)

    def get_row(self, name: str, key: Sequence[Any]) -> Optional[Row]:
        values = self.get(name, key)
        if values is None:
            return None
        return Row(self.schema(name), values)

    # -- indexes -----------------------------------------------------------

    def create_index(self, name: str, attribute_names: Sequence[str]) -> None:
        """Create a secondary index (backends may treat this as a hint)."""
        raise NotImplementedError

    # -- change feed ---------------------------------------------------------

    @property
    def changelog(self):
        """The engine's audit/undo log, or ``None`` for backends that
        keep none. Materialized views require a changelog-bearing
        engine; both built-in backends provide one."""
        return None

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        raise NotImplementedError

    def commit(self) -> None:
        raise NotImplementedError

    def rollback(self) -> None:
        raise NotImplementedError

    @contextlib.contextmanager
    def transaction(self) -> Iterator[None]:
        """Context manager: commit on success, roll back on error."""
        self.begin()
        try:
            yield
        except Exception:
            self.rollback()
            raise
        self.commit()

    # -- helpers -------------------------------------------------------------

    def _coerce_values(self, name: str, values: ValuesLike) -> Tuple[Any, ...]:
        schema = self.schema(name)
        if isinstance(values, Mapping):
            return schema.row_from_mapping(values)
        return schema.validate_row(values)
