"""Abstract storage engine interface.

Both backends — the from-scratch in-memory engine and the sqlite3
backend — implement this interface, so every layer above (structural
integrity, view-object instantiation, update translation) is backend
agnostic. The benchmark harness exploits this to run identical update
plans on both engines.
"""

from __future__ import annotations

import contextlib
import datetime
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import repro.obs as obs
from repro.errors import TransactionError
from repro.relational.domains import DATE
from repro.relational.expressions import Expression
from repro.relational.row import Row
from repro.relational.schema import RelationSchema

__all__ = ["Engine"]

ValuesLike = Union[Sequence[Any], Mapping[str, Any]]


class Engine:
    """Common interface of all storage backends.

    ``retry_policy`` (a :class:`~repro.relational.retry.RetryPolicy`, or
    None to disable) is consulted by the batch primitives: each
    individual operation inside :meth:`insert_many` / :meth:`apply_batch`
    is retried on transient failures, so a batch survives conditions
    like sqlite busy/locked without the caller seeing them.
    """

    #: Optional RetryPolicy absorbing transient faults in batch primitives.
    retry_policy = None

    # -- catalog -----------------------------------------------------------

    def create_relation(self, schema: RelationSchema) -> None:
        raise NotImplementedError

    def drop_relation(self, name: str) -> None:
        raise NotImplementedError

    def relation_names(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def schema(self, name: str) -> RelationSchema:
        raise NotImplementedError

    def has_relation(self, name: str) -> bool:
        return name in self.relation_names()

    # -- mutation ----------------------------------------------------------

    def insert(self, name: str, values: ValuesLike) -> Tuple[Any, ...]:
        """Insert one row; return its primary key."""
        raise NotImplementedError

    def delete(self, name: str, key: Sequence[Any]) -> None:
        raise NotImplementedError

    def replace(self, name: str, key: Sequence[Any], values: ValuesLike) -> None:
        raise NotImplementedError

    def clear(self, name: str) -> None:
        """Remove all rows of a relation."""
        raise NotImplementedError

    # -- batched mutation --------------------------------------------------

    def insert_many(
        self, name: str, rows: Iterable[ValuesLike]
    ) -> List[Tuple[Any, ...]]:
        """Insert many rows atomically; return their primary keys.

        The default implementation loops over :meth:`insert` inside one
        transaction, so a failure anywhere leaves the relation
        untouched. Backends override this with genuinely batched
        implementations (``executemany`` on sqlite, a single lock
        acquisition in memory).
        """
        keys = []
        self.begin()
        try:
            for values in rows:
                keys.append(
                    self._retry(lambda values=values: self.insert(name, values))
                )
        except Exception:
            self.rollback()
            raise
        self._finish_commit()
        self._record_batch("engine_insert_rows_total", len(keys))
        return keys

    def apply_batch(self, operations: Iterable["DatabaseOperation"]) -> int:  # noqa: F821
        """Apply a batch of database operations atomically.

        Returns the number of operations applied. The default loops and
        dispatches each operation; backends override it to group
        adjacent same-relation operations into batched statements.
        """
        count = 0
        self.begin()
        try:
            for operation in operations:
                self._retry(lambda op=operation: op.apply(self))
                count += 1
        except Exception:
            self.rollback()
            raise
        self._finish_commit()
        self._record_batch("engine_apply_ops_total", count)
        return count

    def _record_batch(self, metric: str, count: int) -> None:
        """Count a completed batch primitive against this backend."""
        if count:
            obs.metrics().counter(metric, engine=type(self).__name__).inc(count)

    # -- reads -------------------------------------------------------------

    def get(self, name: str, key: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        raise NotImplementedError

    def contains(self, name: str, key: Sequence[Any]) -> bool:
        return self.get(name, key) is not None

    def get_many(
        self, name: str, keys: Iterable[Sequence[Any]]
    ) -> Dict[Tuple[Any, ...], Tuple[Any, ...]]:
        """Value tuples of the listed keys; absent keys are omitted.

        The default loops over :meth:`get`; the sqlite backend batches
        the lookups into ``IN`` queries.
        """
        found = {}
        for key in keys:
            values = self.get(name, key)
            if values is not None:
                found[tuple(key)] = values
        return found

    def scan(self, name: str) -> Iterator[Tuple[Any, ...]]:
        raise NotImplementedError

    def find_by(
        self, name: str, attribute_names: Sequence[str], entry: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        """All value tuples whose listed attributes equal ``entry``."""
        raise NotImplementedError

    def select(self, name: str, predicate: Expression) -> List[Tuple[Any, ...]]:
        """All value tuples satisfying ``predicate``."""
        schema = self.schema(name)
        result = []
        for values in self.scan(name):
            if predicate.evaluate(schema.as_mapping(values)):
                result.append(values)
        return result

    def count(self, name: str) -> int:
        return sum(1 for _ in self.scan(name))

    def rows(self, name: str) -> Iterator[Row]:
        """Scan a relation yielding :class:`Row` objects."""
        schema = self.schema(name)
        for values in self.scan(name):
            yield Row(schema, values)

    def get_row(self, name: str, key: Sequence[Any]) -> Optional[Row]:
        values = self.get(name, key)
        if values is None:
            return None
        return Row(self.schema(name), values)

    # -- indexes -----------------------------------------------------------

    def create_index(self, name: str, attribute_names: Sequence[str]) -> None:
        """Create a secondary index (backends may treat this as a hint)."""
        raise NotImplementedError

    # -- change feed ---------------------------------------------------------

    @property
    def changelog(self):
        """The engine's audit/undo log, or ``None`` for backends that
        keep none. Materialized views require a changelog-bearing
        engine; both built-in backends provide one."""
        return None

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        raise NotImplementedError

    def commit(self) -> None:
        raise NotImplementedError

    def rollback(self) -> None:
        raise NotImplementedError

    @property
    def in_transaction(self) -> bool:
        """Whether a transaction is currently open (backends override)."""
        return False

    @contextlib.contextmanager
    def transaction(self) -> Iterator[None]:
        """Context manager: commit on success, roll back on error.

        If the commit itself fails, a rollback is attempted before the
        failure surfaces as :class:`~repro.errors.TransactionError`
        chaining the original — the engine is never left inside an open
        transaction.
        """
        self.begin()
        try:
            yield
        except Exception:
            self.rollback()
            raise
        self._finish_commit()

    def _retry(self, attempt):
        """Run one operation through the retry policy, if any."""
        policy = self.retry_policy
        if policy is None:
            return attempt()
        return policy.run(attempt)

    def _finish_commit(self) -> None:
        """Commit a transaction known to be open, recovering on failure.

        ``commit()`` can raise too — an injected fault, an I/O error on
        a file-backed database. Without this wrapper the engine would be
        left inside an open transaction with no rollback attempted;
        instead the failed commit is rolled back and surfaced as a
        :class:`~repro.errors.TransactionError` chaining the original.
        Transient commit failures are retried first, like any other
        operation.
        """
        try:
            self._retry(self.commit)
        except TransactionError:
            raise
        except Exception as exc:
            try:
                self.rollback()
            except Exception:
                pass  # the original failure is the one worth reporting
            raise TransactionError(
                "commit failed; the transaction was rolled back"
            ) from exc

    # -- helpers -------------------------------------------------------------

    def _coerce_values(self, name: str, values: ValuesLike) -> Tuple[Any, ...]:
        schema = self.schema(name)
        if isinstance(values, Mapping):
            row = schema.row_from_mapping(values)
        else:
            row = schema.validate_row(values)
        return _normalize_row_dates(schema, row)

    def _coerce_key(self, name: str, key: Sequence[Any]) -> Tuple[Any, ...]:
        """Normalize a key tuple at the engine boundary.

        ``datetime.datetime`` passes DATE domain checks (it subclasses
        ``date``) but compares unequal to the plain ``date`` the engine
        stores, so key lookups must narrow it the same way stored values
        are narrowed.
        """
        key = tuple(key)
        if not any(isinstance(value, datetime.datetime) for value in key):
            return key
        schema = self.schema(name)
        return tuple(
            value.date()
            if isinstance(value, datetime.datetime)
            and schema.attribute(attr).domain == DATE
            else value
            for attr, value in zip(schema.key, key)
        )

    def _coerce_entry(
        self, name: str, attribute_names: Sequence[str], entry: Sequence[Any]
    ) -> Tuple[Any, ...]:
        """Normalize a ``find_by`` entry like :meth:`_coerce_key`."""
        entry = tuple(entry)
        if not any(isinstance(value, datetime.datetime) for value in entry):
            return entry
        schema = self.schema(name)
        return tuple(
            value.date()
            if isinstance(value, datetime.datetime)
            and schema.attribute(attr).domain == DATE
            else value
            for attr, value in zip(attribute_names, entry)
        )


def _normalize_row_dates(
    schema: RelationSchema, row: Tuple[Any, ...]
) -> Tuple[Any, ...]:
    """Narrow ``datetime.datetime`` values to ``date`` for DATE attributes.

    A ``datetime`` slips through domain validation because it subclasses
    ``date``, but storing it verbatim breaks round-trips: sqlite would
    persist a time suffix that ``date.fromisoformat`` cannot decode, and
    the memory engine would hold a value that compares unequal to the
    ``date`` callers query with. Both engines therefore normalize here,
    at the value boundary.
    """
    if not any(isinstance(value, datetime.datetime) for value in row):
        return row
    return tuple(
        value.date()
        if isinstance(value, datetime.datetime) and attr.domain == DATE
        else value
        for attr, value in zip(schema.attributes, row)
    )
