"""Fluent helpers for declaring relation schemas.

The workload modules declare eight-plus relations each; the
:class:`SchemaBuilder` keeps those declarations terse and readable:

>>> from repro.relational.ddl import SchemaBuilder
>>> schema = (
...     SchemaBuilder("COURSES")
...     .text("course_id")
...     .text("title")
...     .integer("units")
...     .text("dept_name")
...     .key("course_id")
...     .build()
... )
>>> schema.key
('course_id',)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SchemaError
from repro.relational.domains import (
    BOOLEAN,
    DATE,
    INTEGER,
    REAL,
    TEXT,
    Domain,
)
from repro.relational.schema import Attribute, RelationSchema

__all__ = ["SchemaBuilder", "relation"]


class SchemaBuilder:
    """Incrementally assemble a :class:`RelationSchema`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._attributes: List[Attribute] = []
        self._key: Optional[Sequence[str]] = None

    def attribute(
        self, name: str, domain: Domain, nullable: bool = False
    ) -> "SchemaBuilder":
        self._attributes.append(Attribute(name, domain, nullable))
        return self

    def text(self, name: str, nullable: bool = False) -> "SchemaBuilder":
        return self.attribute(name, TEXT, nullable)

    def integer(self, name: str, nullable: bool = False) -> "SchemaBuilder":
        return self.attribute(name, INTEGER, nullable)

    def real(self, name: str, nullable: bool = False) -> "SchemaBuilder":
        return self.attribute(name, REAL, nullable)

    def boolean(self, name: str, nullable: bool = False) -> "SchemaBuilder":
        return self.attribute(name, BOOLEAN, nullable)

    def date(self, name: str, nullable: bool = False) -> "SchemaBuilder":
        return self.attribute(name, DATE, nullable)

    def key(self, *names: str) -> "SchemaBuilder":
        if self._key is not None:
            raise SchemaError(f"relation {self._name!r}: key declared twice")
        self._key = names
        return self

    def build(self) -> RelationSchema:
        if self._key is None:
            raise SchemaError(f"relation {self._name!r}: no key declared")
        return RelationSchema(self._name, self._attributes, key=self._key)


def relation(name: str) -> SchemaBuilder:
    """Entry point: ``relation("COURSES").text("course_id")...``."""
    return SchemaBuilder(name)
