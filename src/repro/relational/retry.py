"""Retry with exponential backoff for transient storage failures.

A :class:`RetryPolicy` classifies exceptions as transient or permanent
and re-runs a callable through backoff-with-jitter until it succeeds,
the error turns out permanent, or the attempt budget is spent. The
engine batch primitives (:meth:`Engine.insert_many`,
:meth:`Engine.apply_batch`) consult :attr:`Engine.retry_policy` so that
a batch survives the occasional ``database is locked`` without the
caller ever seeing it — the graceful-degradation layer in
:mod:`repro.serve` only engages once a policy's budget is exhausted.

Classification:

* :class:`~repro.errors.TransientEngineError` — transient by
  definition (the sqlite engine maps busy/locked into it, and the fault
  harness raises it directly);
* ``sqlite3.OperationalError`` whose message mentions busy/locked —
  transient (defense in depth for paths that bypass the mapping);
* everything else — permanent. Note that
  :class:`~repro.relational.faults.SimulatedCrash` derives from
  ``BaseException`` and is therefore never even caught here: you cannot
  retry your way out of process death.
"""

from __future__ import annotations

import random
import sqlite3
import time
from typing import Any, Callable, Optional

import repro.obs as obs
from repro.errors import TransientEngineError

__all__ = ["RetryPolicy", "is_transient_error"]

_SQLITE_TRANSIENT_MARKERS = ("database is locked", "database is busy", "busy")


def is_transient_error(exc: BaseException) -> bool:
    """Default transient-vs-permanent classification."""
    if isinstance(exc, TransientEngineError):
        return True
    if isinstance(exc, sqlite3.OperationalError):
        message = str(exc).lower()
        return any(marker in message for marker in _SQLITE_TRANSIENT_MARKERS)
    return False


class RetryPolicy:
    """Exponential backoff with deterministic, seedable jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first; ``max_attempts=1`` disables
        retrying while keeping the classification behaviour.
    base_delay / max_delay:
        The nth retry sleeps ``min(max_delay, base_delay * 2**n)``
        scaled by jitter.
    jitter:
        Fraction of the delay randomized: the sleep is drawn uniformly
        from ``[delay * (1 - jitter), delay]``. Zero makes backoff fully
        deterministic.
    seed:
        Seeds the jitter source, for reproducible schedules in tests
        and the chaos campaign.
    classify:
        Replacement for :func:`is_transient_error`.
    sleep:
        Injection point for tests; defaults to :func:`time.sleep`.
    """

    def __init__(
        self,
        max_attempts: int = 5,
        base_delay: float = 0.002,
        max_delay: float = 0.25,
        jitter: float = 0.5,
        seed: Optional[int] = None,
        classify: Optional[Callable[[BaseException], bool]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.classify = classify or is_transient_error
        self._sleep = sleep
        self._rng = random.Random(seed)
        # Operational counters for stats/health endpoints.
        self.retries = 0  # sleeps taken (attempts beyond the first)
        self.absorbed = 0  # transient errors that a later attempt recovered
        self.gave_up = 0  # transient errors re-raised after budget exhaustion

    def delay(self, retry_index: int) -> float:
        """Sleep before the Nth retry (0-based), jitter applied."""
        raw = min(self.max_delay, self.base_delay * (2 ** retry_index))
        if not self.jitter:
            return raw
        low = raw * (1.0 - self.jitter)
        return low + (raw - low) * self._rng.random()

    def run(self, attempt: Callable[[], Any]) -> Any:
        """Run ``attempt`` until success or a permanent/final error.

        The callable must be safe to re-run: engine helpers pass a
        closure that leaves the engine transaction-clean on failure.
        """
        failures = 0
        while True:
            try:
                result = attempt()
            except Exception as exc:
                if not self.classify(exc):
                    raise
                failures += 1
                if failures >= self.max_attempts:
                    self.gave_up += 1
                    obs.metrics().counter("retry_gave_up_total").inc()
                    raise
                self.retries += 1
                obs.metrics().counter("retries_total").inc()
                span = obs.tracer().current
                if span is not None:
                    span.set(retries=failures)
                self._sleep(self.delay(failures - 1))
                continue
            if failures:
                self.absorbed += failures
                obs.metrics().counter("retry_absorbed_total").inc(failures)
            return result

    def stats(self) -> dict:
        return {
            "retries": self.retries,
            "absorbed": self.absorbed,
            "gave_up": self.gave_up,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, retries={self.retries})"
        )
