"""Deterministic fault injection for any storage engine.

The paper promises that a rejected or failed translation "is rolled
back"; making that promise hold under real-world failure modes — a
transient ``database is locked``, a process crash between ``begin()``
and ``commit()``, an I/O stall — requires being able to *produce* those
failure modes on demand. :class:`FaultInjectingEngine` wraps any
:class:`~repro.relational.engine.Engine` and executes a seeded
:class:`FaultPlan`, so every failure scenario in the test suite, the
chaos campaign (``python -m repro chaos``), and the benchmarks is
reproducible from a seed.

Three fault kinds are supported:

* ``transient`` — raise :class:`~repro.errors.TransientEngineError`;
  the condition clears by itself, so a retry of the same call succeeds
  (unless the plan injects again). This models sqlite busy/locked.
* ``crash`` — raise :class:`SimulatedCrash`, which derives from
  ``BaseException`` so it sails *past* every ``except Exception``
  rollback handler, exactly as a ``kill -9`` would. Recovery is then
  the journal's job (:mod:`repro.relational.journal`).
* ``latency`` — sleep before the call proceeds, for tail-latency and
  timeout experiments.

Rules match engine calls by operation name or by the groups
``"mutation"`` (insert/delete/replace/clear), ``"read"``
(get/get_many/scan/find_by/select/count/contains), ``"txn"``
(begin/commit/rollback), or ``"*"`` (any ticked call).
"""

from __future__ import annotations

import random
import time
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import TransientEngineError
from repro.relational.engine import Engine, ValuesLike
from repro.relational.schema import RelationSchema

__all__ = [
    "SimulatedCrash",
    "FaultRule",
    "FaultPlan",
    "FaultHook",
    "FaultInjectingEngine",
    "TransientEngineError",
]

MUTATION_OPS = ("insert", "delete", "replace", "clear")
READ_OPS = ("get", "get_many", "scan", "find_by", "select", "count", "contains")
TXN_OPS = ("begin", "commit", "rollback")
SHIP_OPS = ("ship", "probe")

_GROUPS: Dict[str, Tuple[str, ...]] = {
    "mutation": MUTATION_OPS,
    "read": READ_OPS,
    "txn": TXN_OPS,
    "ship": SHIP_OPS,
}


class SimulatedCrash(BaseException):
    """Stand-in for process death at an arbitrary instruction.

    Deliberately *not* an :class:`Exception`: the library's rollback
    handlers all catch ``Exception``, and a real crash would never give
    them the chance to run. Code under test must therefore survive this
    propagating through every layer — which is precisely what the
    journal-based recovery path is for.
    """

    def __init__(self, operation: str, index: int) -> None:
        super().__init__(f"simulated crash during {operation!r} #{index}")
        self.operation = operation
        self.index = index


class FaultRule:
    """One injection rule of a :class:`FaultPlan`.

    Parameters
    ----------
    kind:
        ``"transient"``, ``"crash"``, or ``"latency"``.
    operations:
        Operation names and/or group names this rule matches.
    at:
        Fire on exactly the Nth matching call (1-based), once.
    rate:
        Fire on each matching call with this probability, drawn from
        the plan's seeded generator (deterministic per seed).
    times:
        Cap on how many times this rule may fire; ``None`` = unlimited
        (``at`` implies ``times=1``).
    delay:
        Sleep duration for ``latency`` rules, seconds.
    """

    __slots__ = ("kind", "operations", "at", "rate", "times", "delay", "seen", "fired")

    def __init__(
        self,
        kind: str,
        operations: Sequence[str] = ("mutation",),
        at: Optional[int] = None,
        rate: Optional[float] = None,
        times: Optional[int] = None,
        delay: float = 0.0,
    ) -> None:
        if kind not in ("transient", "crash", "latency"):
            raise ValueError(f"unknown fault kind {kind!r}")
        if at is None and rate is None:
            rate = 1.0  # fire on every matching call (subject to `times`)
        self.kind = kind
        self.operations = tuple(operations)
        self.at = at
        self.rate = rate
        self.times = 1 if (at is not None and times is None) else times
        self.delay = delay
        self.seen = 0  # matching calls observed
        self.fired = 0  # faults actually injected

    def matches(self, operation: str) -> bool:
        for target in self.operations:
            if target == "*" or target == operation:
                return True
            if operation in _GROUPS.get(target, ()):
                return True
        return False

    @property
    def exhausted(self) -> bool:
        if self.times is None:
            return False
        return self.fired >= self.times

    def decide(self, operation: str, rng: random.Random) -> bool:
        """Whether this rule fires on this (matching) call."""
        if self.exhausted:
            return False
        self.seen += 1
        if self.at is not None:
            fire = self.seen == self.at
        else:
            fire = rng.random() < self.rate
        if fire:
            self.fired += 1
        return fire

    def reset(self) -> None:
        self.seen = 0
        self.fired = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        trigger = f"at={self.at}" if self.at is not None else f"rate={self.rate}"
        return (
            f"FaultRule({self.kind}, ops={self.operations!r}, {trigger}, "
            f"fired={self.fired})"
        )


class FaultPlan:
    """A seeded, ordered set of :class:`FaultRule` to execute.

    The plan is deterministic: the same seed and the same sequence of
    engine calls produce the same injections. Fluent constructors cover
    the common shapes::

        FaultPlan(seed=7).transient_at("insert", 3)      # 3rd insert fails once
        FaultPlan(seed=7).transient_rate(0.1)            # 10% of mutations fail
        FaultPlan(seed=7).transient_burst(5, ("read",))  # next 5 reads fail
        FaultPlan(seed=7).crash_at("commit", 1)          # die inside commit
        FaultPlan(seed=7).latency("get", 0.005)          # slow point reads
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = []
        self._rng = random.Random(seed)

    # -- fluent rule constructors ------------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def transient_at(
        self, operation: str, at: int, times: Optional[int] = None
    ) -> "FaultPlan":
        return self.add(FaultRule("transient", (operation,), at=at, times=times))

    def transient_rate(
        self,
        rate: float,
        operations: Sequence[str] = ("mutation",),
        times: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(FaultRule("transient", operations, rate=rate, times=times))

    def transient_burst(
        self, count: int, operations: Sequence[str] = ("mutation",)
    ) -> "FaultPlan":
        """The next ``count`` matching calls all fail transiently."""
        return self.add(FaultRule("transient", operations, rate=1.0, times=count))

    def crash_at(self, operation: str, at: int) -> "FaultPlan":
        return self.add(FaultRule("crash", (operation,), at=at))

    def latency(
        self,
        operation: str,
        delay: float,
        rate: float = 1.0,
        times: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(
            FaultRule("latency", (operation,), rate=rate, times=times, delay=delay)
        )

    # -- execution ----------------------------------------------------------

    def decide(self, operation: str) -> Optional[FaultRule]:
        """The first rule firing on this call, or None."""
        for rule in self.rules:
            if rule.matches(operation) and rule.decide(operation, self._rng):
                return rule
        return None

    @property
    def exhausted(self) -> bool:
        """True when no rule can ever fire again (all capped rules spent)."""
        return all(rule.exhausted for rule in self.rules)

    def reset(self) -> None:
        """Rewind every rule and the seeded generator (same seed)."""
        for rule in self.rules:
            rule.reset()
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"


class FaultHook:
    """Tick a :class:`FaultPlan` at arbitrary call sites.

    :class:`FaultInjectingEngine` covers engine calls; infrastructure
    that is *not* an engine — the replication shipping link, the failure
    detector's probes — needs the same seeded injection discipline. A
    hook wraps a plan and exposes :meth:`tick`, with the identical
    semantics (latency sleeps, ``crash`` raises
    :class:`SimulatedCrash`, ``transient`` raises
    :class:`~repro.errors.TransientEngineError`). Operation names are
    free-form; the replication layer uses ``"ship"`` and ``"probe"``
    (group ``"ship"``).
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.injected: Dict[str, int] = {"transient": 0, "crash": 0, "latency": 0}
        self.history: List[Tuple[str, int, str]] = []
        self._op_counts: Dict[str, int] = {}
        self._sleep = time.sleep

    def tick(self, operation: str) -> None:
        index = self._op_counts.get(operation, 0) + 1
        self._op_counts[operation] = index
        rule = self.plan.decide(operation)
        if rule is None:
            return
        self.injected[rule.kind] += 1
        self.history.append((operation, index, rule.kind))
        if rule.kind == "latency":
            self._sleep(rule.delay)
            return
        if rule.kind == "crash":
            raise SimulatedCrash(operation, index)
        raise TransientEngineError(
            f"injected transient fault during {operation!r} #{index}"
        )

    def operation_count(self, operation: str) -> int:
        return self._op_counts.get(operation, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultHook({self.plan!r})"


class FaultInjectingEngine(Engine):
    """An engine wrapper that executes a :class:`FaultPlan`.

    Every delegated call first *ticks*: the plan decides whether to
    inject, and the injection (if any) is recorded in :attr:`injected`
    and :attr:`history` before the fault is raised (or the latency
    slept). Batched operations deliberately use the generic loops
    inherited from :class:`Engine`, so per-operation faults fire inside
    batches and the engine-level :class:`~repro.relational.retry.RetryPolicy`
    gets to absorb them.

    The wrapper shares the base engine's transaction state and
    changelog, so journals, materialized views, and recovery all work
    unchanged on top of it.
    """

    def __init__(self, base: Engine, plan: Optional[FaultPlan] = None) -> None:
        self.base = base
        self.plan = plan or FaultPlan()
        self.injected: Dict[str, int] = {"transient": 0, "crash": 0, "latency": 0}
        self.history: List[Tuple[str, int, str]] = []
        self._op_counts: Dict[str, int] = {}
        self._sleep = time.sleep

    # -- fault dispatch -----------------------------------------------------

    def _tick(self, operation: str) -> None:
        index = self._op_counts.get(operation, 0) + 1
        self._op_counts[operation] = index
        rule = self.plan.decide(operation)
        if rule is None:
            return
        self.injected[rule.kind] += 1
        self.history.append((operation, index, rule.kind))
        if rule.kind == "latency":
            self._sleep(rule.delay)
            return
        if rule.kind == "crash":
            raise SimulatedCrash(operation, index)
        raise TransientEngineError(
            f"injected transient fault during {operation!r} #{index}"
        )

    def operation_count(self, operation: str) -> int:
        """How many times ``operation`` has been ticked so far."""
        return self._op_counts.get(operation, 0)

    # -- catalog (not ticked: DDL is setup, not workload) -------------------

    def create_relation(self, schema: RelationSchema) -> None:
        self.base.create_relation(schema)

    def drop_relation(self, name: str) -> None:
        self.base.drop_relation(name)

    def relation_names(self) -> Tuple[str, ...]:
        return self.base.relation_names()

    def schema(self, name: str) -> RelationSchema:
        return self.base.schema(name)

    def has_relation(self, name: str) -> bool:
        return self.base.has_relation(name)

    def create_index(self, name: str, attribute_names: Sequence[str]) -> None:
        self.base.create_index(name, attribute_names)

    # -- mutation -----------------------------------------------------------

    def insert(self, name: str, values: ValuesLike) -> Tuple[Any, ...]:
        self._tick("insert")
        return self.base.insert(name, values)

    def delete(self, name: str, key: Sequence[Any]) -> None:
        self._tick("delete")
        self.base.delete(name, key)

    def replace(self, name: str, key: Sequence[Any], values: ValuesLike) -> None:
        self._tick("replace")
        self.base.replace(name, key, values)

    def clear(self, name: str) -> None:
        self._tick("clear")
        self.base.clear(name)

    # insert_many / apply_batch: inherited generic loops over the ticked
    # primitives, wrapped in this engine's retry policy.

    # -- reads --------------------------------------------------------------

    def get(self, name: str, key: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        self._tick("get")
        return self.base.get(name, key)

    def contains(self, name: str, key: Sequence[Any]) -> bool:
        self._tick("contains")
        return self.base.contains(name, key)

    def get_many(
        self, name: str, keys
    ) -> Dict[Tuple[Any, ...], Tuple[Any, ...]]:
        self._tick("get_many")
        return self.base.get_many(name, keys)

    def scan(self, name: str) -> Iterator[Tuple[Any, ...]]:
        self._tick("scan")
        return self.base.scan(name)

    def find_by(
        self, name: str, attribute_names: Sequence[str], entry: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        self._tick("find_by")
        return self.base.find_by(name, attribute_names, entry)

    def select(self, name: str, predicate) -> List[Tuple[Any, ...]]:
        self._tick("select")
        return self.base.select(name, predicate)

    def count(self, name: str) -> int:
        self._tick("count")
        return self.base.count(name)

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        self._tick("begin")
        self.base.begin()

    def commit(self) -> None:
        self._tick("commit")
        self.base.commit()

    def rollback(self) -> None:
        # Never ticked: rollback is the recovery path; injecting faults
        # into it would only test the injector, not the system.
        self.base.rollback()

    @property
    def in_transaction(self) -> bool:
        return getattr(self.base, "in_transaction", False)

    # -- passthrough introspection -------------------------------------------

    @property
    def changelog(self):
        return self.base.changelog

    def operation_counters(self) -> Dict[str, int]:
        counters = getattr(self.base, "operation_counters", None)
        return counters() if counters is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjectingEngine({self.base!r}, {self.plan!r})"
