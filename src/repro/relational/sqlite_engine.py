"""Storage engine backed by the sqlite3 standard-library module.

This backend demonstrates that every layer above the engine interface —
the structural model, view-object instantiation, and the paper's update
translators — runs unchanged on a real SQL substrate. The PENGUIN
prototype sat on a commercial RDBMS; sqlite3 plays that role here.

Value conversion: sqlite has no date or boolean column types, so DATE
attributes are stored as ISO strings and BOOLEAN attributes as 0/1;
conversion happens at the engine boundary so callers always see Python
``datetime.date`` and ``bool`` values.

Like the in-memory engine, this backend keeps a :class:`ChangeLog` of
applied mutations (decoded, Python-value rows) so materialized views can
follow the database incrementally. sqlite itself performs undo via
savepoints, so the log is *not* used for rollback — but a rollback still
truncates it to the savepoint's position, keeping the log (and any cache
subscribed to it) an exact history of the surviving state.
"""

from __future__ import annotations

import datetime
import sqlite3
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    DuplicateKeyError,
    NoSuchRowError,
    SchemaError,
    TransactionError,
    TransientEngineError,
    UnknownRelationError,
)
from repro.relational.changelog import ChangeLog
from repro.relational.domains import BOOLEAN, DATE
from repro.relational.engine import Engine, ValuesLike
from repro.relational.expressions import Expression
from repro.relational.schema import RelationSchema

__all__ = ["SqliteEngine"]


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class SqliteEngine(Engine):
    """Engine storing relations as sqlite tables.

    Parameters
    ----------
    path:
        Database file path; the default ``":memory:"`` keeps everything
        in RAM, matching the benchmarks' needs.
    """

    def __init__(self, path: str = ":memory:") -> None:
        # The connection is shared across threads (the serving layer in
        # repro.serve serializes access); sqlite's own same-thread check
        # would otherwise reject every call from a worker thread.
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.isolation_level = None  # explicit transactions
        # sqlite's LIKE is case-insensitive by default; the in-memory
        # engine's pattern matching is case-sensitive (SQL standard), so
        # align sqlite with it for cross-backend parity.
        self._execute("PRAGMA case_sensitive_like = ON")
        self._schemas: Dict[str, RelationSchema] = {}
        # Per-relation prepared statement templates (insert / delete /
        # replace / get), built lazily on first use or eagerly through
        # prepare_relation(). sqlite3 keeps a compiled-statement cache
        # keyed by SQL text, so handing it byte-identical strings lets
        # every point operation skip re-deriving the SQL from the schema.
        self._sql_cache: Dict[str, Dict[str, str]] = {}
        self._savepoint_depth = 0
        self._savepoint_marks: List[int] = []
        self._log = ChangeLog()
        # Serializes batched mutations; see MemoryEngine._lock.
        self._lock = threading.RLock()

    # -- statement execution -------------------------------------------------

    def _execute(self, sql: str, params: Sequence[Any] = ()):
        """Run one statement, mapping busy/locked into the transient
        error class so :class:`~repro.relational.retry.RetryPolicy` (and
        the serving layer's circuit breaker) can classify it."""
        try:
            return self._connection.execute(sql, params)
        except sqlite3.OperationalError as exc:
            raise self._map_operational_error(exc) from exc

    def _executemany(self, sql: str, rows: Sequence[Sequence[Any]]):
        try:
            return self._connection.executemany(sql, rows)
        except sqlite3.OperationalError as exc:
            raise self._map_operational_error(exc) from exc

    @staticmethod
    def _map_operational_error(exc: sqlite3.OperationalError) -> Exception:
        message = str(exc).lower()
        if "locked" in message or "busy" in message:
            return TransientEngineError(str(exc))
        return exc

    # -- value conversion ----------------------------------------------------

    @staticmethod
    def _encode(schema: RelationSchema, values: Sequence[Any]) -> Tuple[Any, ...]:
        encoded = []
        for attr, value in zip(schema.attributes, values):
            if value is None:
                encoded.append(None)
            elif attr.domain == DATE:
                # Narrow datetimes defensively: a time suffix in the
                # stored text would break date.fromisoformat on decode.
                if isinstance(value, datetime.datetime):
                    value = value.date()
                encoded.append(value.isoformat())
            elif attr.domain == BOOLEAN:
                encoded.append(int(value))
            else:
                encoded.append(value)
        return tuple(encoded)

    @staticmethod
    def _decode(schema: RelationSchema, values: Sequence[Any]) -> Tuple[Any, ...]:
        decoded = []
        for attr, value in zip(schema.attributes, values):
            if value is None:
                decoded.append(None)
            elif attr.domain == DATE:
                decoded.append(datetime.date.fromisoformat(value))
            elif attr.domain == BOOLEAN:
                decoded.append(bool(value))
            else:
                decoded.append(value)
        return tuple(decoded)

    def _encode_key(self, schema: RelationSchema, key: Sequence[Any]) -> Tuple[Any, ...]:
        encoded = []
        for name, value in zip(schema.key, key):
            domain = schema.attribute(name).domain
            if domain == DATE and value is not None:
                if isinstance(value, datetime.datetime):
                    value = value.date()
                encoded.append(value.isoformat())
            elif domain == BOOLEAN and value is not None:
                encoded.append(int(value))
            else:
                encoded.append(value)
        return tuple(encoded)

    # -- catalog -----------------------------------------------------------------

    def create_relation(self, schema: RelationSchema) -> None:
        if schema.name in self._schemas:
            raise SchemaError(f"relation {schema.name!r} already exists")
        columns = []
        for attr in schema.attributes:
            null = "" if attr.nullable else " NOT NULL"
            columns.append(f"{_quote(attr.name)} {attr.domain.sql_type}{null}")
        key_list = ", ".join(_quote(k) for k in schema.key)
        ddl = (
            f"CREATE TABLE {_quote(schema.name)} ("
            + ", ".join(columns)
            + f", PRIMARY KEY ({key_list}))"
        )
        self._execute(ddl)
        self._schemas[schema.name] = schema

    def drop_relation(self, name: str) -> None:
        self._schema_for(name)
        self._execute(f"DROP TABLE {_quote(name)}")
        del self._schemas[name]
        # A later relation of the same name may have a different shape.
        self._sql_cache.pop(name, None)

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._schemas)

    def schema(self, name: str) -> RelationSchema:
        return self._schema_for(name)

    def has_relation(self, name: str) -> bool:
        return name in self._schemas

    def _schema_for(self, name: str) -> RelationSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    # -- mutation ----------------------------------------------------------------

    def _statements(self, name: str, schema: RelationSchema) -> Dict[str, str]:
        """The relation's prepared statement templates, built once."""
        statements = self._sql_cache.get(name)
        if statements is None:
            placeholders = ", ".join("?" for _ in schema.attributes)
            key_clause = " AND ".join(
                f"{_quote(k)} = ?" for k in schema.key
            )
            assignments = ", ".join(
                f"{_quote(a.name)} = ?" for a in schema.attributes
            )
            statements = self._sql_cache[name] = {
                "insert": (
                    f"INSERT INTO {_quote(name)} VALUES ({placeholders})"
                ),
                "delete": (
                    f"DELETE FROM {_quote(name)} WHERE {key_clause}"
                ),
                "replace": (
                    f"UPDATE {_quote(name)} SET {assignments} "
                    f"WHERE {key_clause}"
                ),
                "get": (
                    f"SELECT * FROM {_quote(name)} WHERE {key_clause}"
                ),
            }
        return statements

    def prepare_relation(self, name: str) -> None:
        """Eagerly build the relation's statement templates.

        Called by the compiled translator's ``prepare_engine`` so the
        first update after definition time pays no SQL-building cost;
        statements are otherwise built lazily on first use.
        """
        self._statements(name, self._schema_for(name))

    def _insert_sql(self, name: str, schema: RelationSchema) -> str:
        return self._statements(name, schema)["insert"]

    @staticmethod
    def _map_integrity_error(
        name: str, exc: sqlite3.IntegrityError, key: Tuple[Any, ...]
    ) -> Exception:
        """Translate a sqlite integrity failure to the error the memory
        engine raises for the same condition.

        sqlite reports every constraint violation as IntegrityError; only
        UNIQUE/PRIMARY KEY failures are duplicate keys. A NOT NULL
        violation corresponds to the memory engine's schema-level
        nullability check, so it must surface as SchemaError, not as a
        (wrong) DuplicateKeyError.
        """
        message = str(exc)
        if "NOT NULL" in message:
            return SchemaError(
                f"relation {name!r}: {message}"
            )
        return DuplicateKeyError(name, key)

    def insert(self, name: str, values: ValuesLike) -> Tuple[Any, ...]:
        schema = self._schema_for(name)
        row = self._coerce_values(name, values)
        sql = self._insert_sql(name, schema)
        try:
            self._execute(sql, self._encode(schema, row))
        except sqlite3.IntegrityError as exc:
            raise self._map_integrity_error(
                name, exc, schema.key_of(row)
            ) from None
        key = schema.key_of(row)
        self._log.record_insert(name, key, row)
        return key

    def insert_many(
        self, name: str, rows: Iterable[ValuesLike]
    ) -> List[Tuple[Any, ...]]:
        """Batched insert through one ``executemany`` statement.

        The whole batch is one savepoint: any constraint failure rolls
        every row back before the error is mapped and re-raised, so the
        relation is never left partially loaded.
        """
        schema = self._schema_for(name)
        coerced = [self._coerce_values(name, values) for values in rows]
        sql = self._insert_sql(name, schema)
        encoded = [self._encode(schema, row) for row in coerced]

        def attempt() -> List[Tuple[Any, ...]]:
            # Statement-level retry: a transient failure (busy/locked)
            # rolls the savepoint back and re-runs the whole batch.
            self.begin()
            try:
                self._executemany(sql, encoded)
            except sqlite3.IntegrityError as exc:
                self.rollback()
                raise self._map_integrity_error(
                    name, exc, self._first_duplicate(name, schema, coerced)
                ) from None
            except Exception:
                self.rollback()
                raise
            keys = []
            for row in coerced:
                key = schema.key_of(row)
                self._log.record_insert(name, key, row)
                keys.append(key)
            self._finish_commit()
            return keys

        with self._lock:
            keys = self._retry(attempt)
        self._record_batch("engine_insert_rows_total", len(keys))
        return keys

    def _first_duplicate(
        self,
        name: str,
        schema: RelationSchema,
        rows: Sequence[Tuple[Any, ...]],
    ) -> Tuple[Any, ...]:
        """Locate the offending key after a failed batch (post-rollback),
        checking both the surviving table state and intra-batch repeats."""
        seen = set()
        for row in rows:
            key = schema.key_of(row)
            if key in seen or self.contains(name, key):
                return key
            seen.add(key)
        return ()

    def apply_batch(self, operations) -> int:
        """Apply a batch, folding adjacent same-relation inserts into
        ``executemany`` runs."""
        ops = list(operations)
        count = 0
        with self._lock:
            self.begin()
            try:
                i = 0
                while i < len(ops):
                    op = ops[i]
                    if op.kind == "insert":
                        j = i
                        while (
                            j < len(ops)
                            and ops[j].kind == "insert"
                            and ops[j].relation == op.relation
                        ):
                            j += 1
                        self.insert_many(
                            op.relation, [o.values for o in ops[i:j]]
                        )
                        count += j - i
                        i = j
                    else:
                        self._retry(lambda op=op: op.apply(self))
                        count += 1
                        i += 1
            except Exception:
                self.rollback()
                raise
            self._finish_commit()
        self._record_batch("engine_apply_ops_total", count)
        return count

    def delete(self, name: str, key: Sequence[Any]) -> None:
        schema = self._schema_for(name)
        key = self._coerce_key(name, key)
        old = self.get(name, key)
        if old is None:
            raise NoSuchRowError(name, tuple(key))
        sql = self._statements(name, schema)["delete"]
        cursor = self._execute(sql, self._encode_key(schema, key))
        if cursor.rowcount == 0:
            raise NoSuchRowError(name, tuple(key))
        self._log.record_delete(name, tuple(key), old)

    def replace(self, name: str, key: Sequence[Any], values: ValuesLike) -> None:
        schema = self._schema_for(name)
        key = self._coerce_key(name, key)
        row = self._coerce_values(name, values)
        # Error precedence matches the in-memory engine: a missing old
        # row reports NoSuchRowError even if the new key also collides.
        old = self.get(name, key)
        if old is None:
            raise NoSuchRowError(name, tuple(key))
        new_key = schema.key_of(row)
        if tuple(key) != new_key and self.contains(name, new_key):
            raise DuplicateKeyError(name, new_key)
        sql = self._statements(name, schema)["replace"]
        params = self._encode(schema, row) + self._encode_key(schema, key)
        cursor = self._execute(sql, params)
        if cursor.rowcount == 0:
            raise NoSuchRowError(name, tuple(key))
        self._log.record_replace(name, tuple(key), old, row)

    def clear(self, name: str) -> None:
        schema = self._schema_for(name)
        rows = list(self.scan(name))
        self._execute(f"DELETE FROM {_quote(name)}")
        for row in rows:
            self._log.record_delete(name, schema.key_of(row), row)

    # -- reads ---------------------------------------------------------------------

    def get(self, name: str, key: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        schema = self._schema_for(name)
        sql = self._statements(name, schema)["get"]
        cursor = self._execute(sql, self._encode_key(schema, key))
        row = cursor.fetchone()
        if row is None:
            return None
        return self._decode(schema, row)

    def get_many(
        self, name: str, keys: Iterable[Sequence[Any]]
    ) -> Dict[Tuple[Any, ...], Tuple[Any, ...]]:
        """Batched point lookups.

        Single-attribute keys collapse into chunked ``IN`` queries; the
        composite-key fallback loops like the base implementation.
        """
        schema = self._schema_for(name)
        key_list = [self._coerce_key(name, key) for key in keys]
        if len(schema.key) != 1:
            return super().get_many(name, key_list)
        found: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        column = _quote(schema.key[0])
        chunk_size = 500  # stay well under sqlite's host-parameter limit
        for start in range(0, len(key_list), chunk_size):
            chunk = key_list[start:start + chunk_size]
            placeholders = ", ".join("?" for _ in chunk)
            sql = (
                f"SELECT * FROM {_quote(name)} "
                f"WHERE {column} IN ({placeholders})"
            )
            params = [self._encode_key(schema, key)[0] for key in chunk]
            for raw in self._execute(sql, params).fetchall():
                row = self._decode(schema, raw)
                found[schema.key_of(row)] = row
        return found

    def scan(self, name: str) -> Iterator[Tuple[Any, ...]]:
        schema = self._schema_for(name)  # eager: unknown names raise here
        cursor = self._execute(f"SELECT * FROM {_quote(name)}")
        return iter([self._decode(schema, row) for row in cursor.fetchall()])

    def find_by(
        self, name: str, attribute_names: Sequence[str], entry: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        schema = self._schema_for(name)
        entry = self._coerce_entry(name, attribute_names, entry)
        conditions = []
        params: List[Any] = []
        for attr_name, value in zip(attribute_names, entry):
            domain = schema.attribute(attr_name).domain
            if value is None:
                conditions.append(f"{_quote(attr_name)} IS NULL")
            else:
                conditions.append(f"{_quote(attr_name)} = ?")
                if domain == DATE:
                    params.append(value.isoformat())
                elif domain == BOOLEAN:
                    params.append(int(value))
                else:
                    params.append(value)
        where = " AND ".join(conditions) if conditions else "1 = 1"
        sql = f"SELECT * FROM {_quote(name)} WHERE {where}"
        cursor = self._execute(sql, params)
        return [self._decode(schema, row) for row in cursor.fetchall()]

    def select(self, name: str, predicate: Expression) -> List[Tuple[Any, ...]]:
        schema = self._schema_for(name)
        fragment, params = predicate.to_sql()
        # DATE/BOOLEAN parameters need encoding for comparison in SQL;
        # datetimes narrow to dates so they compare against stored text.
        encoded_params = [
            (p.date() if isinstance(p, datetime.datetime) else p).isoformat()
            if isinstance(p, datetime.date)
            else int(p)
            if isinstance(p, bool)
            else p
            for p in params
        ]
        sql = f"SELECT * FROM {_quote(name)} WHERE {fragment}"
        cursor = self._execute(sql, encoded_params)
        return [self._decode(schema, row) for row in cursor.fetchall()]

    def count(self, name: str) -> int:
        self._schema_for(name)
        cursor = self._execute(f"SELECT COUNT(*) FROM {_quote(name)}")
        return cursor.fetchone()[0]

    # -- indexes ----------------------------------------------------------------------

    def create_index(self, name: str, attribute_names: Sequence[str]) -> None:
        self._schema_for(name)
        # Derive the index name from the column list so repeated calls
        # (e.g. reinstalling a schema graph) dedupe via IF NOT EXISTS
        # instead of piling up identical indexes under fresh names.
        columns_slug = "_".join(attribute_names)
        index_name = f"idx_{name}_{columns_slug}"
        columns = ", ".join(_quote(a) for a in attribute_names)
        self._execute(
            f"CREATE INDEX IF NOT EXISTS {_quote(index_name)} "
            f"ON {_quote(name)} ({columns})"
        )

    # -- transactions -------------------------------------------------------------------

    def begin(self) -> None:
        self._savepoint_depth += 1
        self._savepoint_marks.append(self._log.mark())
        self._execute(f"SAVEPOINT sp_{self._savepoint_depth}")

    def commit(self) -> None:
        if self._savepoint_depth == 0:
            raise TransactionError("commit without matching begin")
        self._execute(f"RELEASE SAVEPOINT sp_{self._savepoint_depth}")
        self._savepoint_depth -= 1
        self._savepoint_marks.pop()

    def rollback(self) -> None:
        if self._savepoint_depth == 0:
            raise TransactionError("rollback without matching begin")
        self._execute(
            f"ROLLBACK TO SAVEPOINT sp_{self._savepoint_depth}"
        )
        self._execute(f"RELEASE SAVEPOINT sp_{self._savepoint_depth}")
        self._savepoint_depth -= 1
        self._log.truncate(self._savepoint_marks.pop())

    @property
    def in_transaction(self) -> bool:
        return self._savepoint_depth > 0

    # -- introspection -----------------------------------------------------------

    @property
    def changelog(self) -> ChangeLog:
        """The engine's audit log (read-only use recommended)."""
        return self._log

    def operation_counters(self) -> Dict[str, int]:
        """Copy of the per-kind mutation counters."""
        return dict(self._log.counters)

    def close(self) -> None:
        self._connection.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteEngine({len(self._schemas)} relations)"
