"""The from-scratch in-memory storage engine.

Rows live in :class:`~repro.relational.table.Table` objects; every
mutation is recorded in a :class:`~repro.relational.changelog.ChangeLog`
that doubles as the undo log for (nested) transactions. Nested
transactions are implemented as savepoints: each ``begin`` pushes the
current log position, ``rollback`` undoes the entries recorded since the
matching position in reverse order.

The changelog is also the engine's change feed: materialized views
subscribe to it to follow mutations incrementally, and the rollback
path's ``truncate`` notifies them so caches rewind together with the
data (undo itself bypasses the log on purpose — compensation must not
be observed as new history).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, TransactionError, UnknownRelationError
from repro.relational.changelog import ChangeLog, ChangeRecord
from repro.relational.engine import Engine, ValuesLike
from repro.relational.schema import RelationSchema
from repro.relational.table import Table

__all__ = ["MemoryEngine"]


class MemoryEngine(Engine):
    """In-memory engine with undo-log transactions.

    Parameters
    ----------
    use_indexes:
        When False, ``create_index`` becomes a no-op, so every
        ``find_by`` is a scan. The ablation benches flip this switch to
        measure how much connection-attribute indexes matter to update
        propagation.
    """

    def __init__(self, use_indexes: bool = True) -> None:
        self._tables: Dict[str, Table] = {}
        self._log = ChangeLog()
        self._savepoints: List[int] = []
        self.use_indexes = use_indexes
        # Serializes batched mutations. Individual operations are not
        # locked — callers that share an engine across threads must
        # serialize at a higher level (see repro.serve).
        self._lock = threading.RLock()

    # -- catalog -----------------------------------------------------------

    def create_relation(self, schema: RelationSchema) -> None:
        if schema.name in self._tables:
            raise SchemaError(f"relation {schema.name!r} already exists")
        self._tables[schema.name] = Table(schema)

    def drop_relation(self, name: str) -> None:
        self._table(name)
        del self._tables[name]

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def schema(self, name: str) -> RelationSchema:
        return self._table(name).schema

    def has_relation(self, name: str) -> bool:
        return name in self._tables

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    # -- mutation ------------------------------------------------------------

    def insert(self, name: str, values: ValuesLike) -> Tuple[Any, ...]:
        table = self._table(name)
        row = self._coerce_values(name, values)
        key = table.insert(row)
        self._log.record_insert(name, key, row)
        return key

    def delete(self, name: str, key: Sequence[Any]) -> None:
        table = self._table(name)
        key = self._coerce_key(name, key)
        old = table.delete(key)
        self._log.record_delete(name, key, old)

    def replace(self, name: str, key: Sequence[Any], values: ValuesLike) -> None:
        table = self._table(name)
        key = self._coerce_key(name, key)
        row = self._coerce_values(name, values)
        old = table.replace(key, row)
        self._log.record_replace(name, key, old, row)

    def clear(self, name: str) -> None:
        table = self._table(name)
        for key in list(table.keys()):
            self.delete(name, key)

    # -- batched mutation --------------------------------------------------------

    def insert_many(
        self, name: str, rows: Iterable[ValuesLike]
    ) -> List[Tuple[Any, ...]]:
        """Single-lock fast path: coerce everything, then apply under
        one lock acquisition and one undo mark."""
        table = self._table(name)
        coerced = [self._coerce_values(name, values) for values in rows]
        keys = []
        with self._lock:
            self.begin()
            try:
                for row in coerced:
                    key = table.insert(row)
                    self._log.record_insert(name, key, row)
                    keys.append(key)
            except Exception:
                self.rollback()
                raise
            self._finish_commit()
        return keys

    def apply_batch(self, operations) -> int:
        with self._lock:
            return super().apply_batch(operations)

    # -- reads -----------------------------------------------------------------

    def get(self, name: str, key: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        return self._table(name).get(self._coerce_key(name, key))

    def contains(self, name: str, key: Sequence[Any]) -> bool:
        return self._table(name).contains_key(self._coerce_key(name, key))

    def scan(self, name: str) -> Iterator[Tuple[Any, ...]]:
        return self._table(name).scan()

    def find_by(
        self, name: str, attribute_names: Sequence[str], entry: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        return self._table(name).find_by(
            attribute_names, self._coerce_entry(name, attribute_names, entry)
        )

    def count(self, name: str) -> int:
        return len(self._table(name))

    # -- indexes -----------------------------------------------------------------

    def create_index(self, name: str, attribute_names: Sequence[str]) -> None:
        if self.use_indexes:
            self._table(name).create_index(attribute_names)

    # -- transactions --------------------------------------------------------------

    def begin(self) -> None:
        self._savepoints.append(self._log.mark())

    def commit(self) -> None:
        if not self._savepoints:
            raise TransactionError("commit without matching begin")
        self._savepoints.pop()

    def rollback(self) -> None:
        if not self._savepoints:
            raise TransactionError("rollback without matching begin")
        mark = self._savepoints.pop()
        for record in reversed(self._log.since(mark)):
            self._undo(record)
        self._log.truncate(mark)

    def _undo(self, record: ChangeRecord) -> None:
        table = self._table(record.relation)
        if record.kind == "insert":
            table.delete(record.key)
        elif record.kind == "delete":
            table.insert(record.old_values)
        elif record.kind == "replace":
            new_key = table.schema.key_of(record.new_values)
            table.replace(new_key, record.old_values)
        else:  # pragma: no cover - defensive
            raise TransactionError(f"cannot undo record kind {record.kind!r}")

    @property
    def in_transaction(self) -> bool:
        return bool(self._savepoints)

    # -- introspection -----------------------------------------------------------

    @property
    def changelog(self) -> ChangeLog:
        """The engine's audit/undo log (read-only use recommended)."""
        return self._log

    def operation_counters(self) -> Dict[str, int]:
        """Copy of the per-kind mutation counters."""
        return dict(self._log.counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(f"{n}={len(t)}" for n, t in self._tables.items())
        return f"MemoryEngine({sizes})"
