"""Enumerating candidate translations of flat view updates.

"Conceptually, we specify an enumeration of all possible valid
translations into sequences of database updates of each view update ...
We do not actually instantiate this enumeration, we merely use it to
define the space of alternatives." For the baseline we *do* instantiate
it on small views, so the benches can show the ambiguity the dialog
resolves:

* **deletion** of a view tuple — delete the contributing tuple of any
  one underlying relation (each such choice kills the join);
* **insertion** of a view tuple — insert the missing contributing
  tuples (relations whose tuple already exists contribute nothing);
* **replacement** — rewrite the contributing tuples of the relations
  owning the changed attributes; when a *join* attribute changes, the
  change can land on either side of the join (or both), which is the
  classic source of ambiguity.

Candidates are then filtered through the five validity criteria.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import UpdateError
from repro.keller import criteria
from repro.keller.views import RelationalView
from repro.relational.engine import Engine
from repro.relational.operations import (
    DatabaseOperation,
    Delete,
    Insert,
    Replace,
)

__all__ = [
    "contributing_rows",
    "enumerate_deletions",
    "enumerate_insertions",
    "enumerate_replacements",
    "valid_translations",
]


def _full_rows(view: RelationalView, engine: Engine) -> List[Dict[str, Any]]:
    """Unprojected view rows as qualified-attribute mappings."""
    body = RelationalView(
        view.name,
        view.relations,
        view.joins,
        view.selection,
        projection=None,
    )
    return body.materialize(engine).mappings()


def contributing_rows(
    view: RelationalView,
    engine: Engine,
    view_tuple: Mapping[str, Any],
) -> List[Dict[str, Any]]:
    """Full (unprojected) rows matching a projected view tuple."""
    rows = []
    for mapping in _full_rows(view, engine):
        if all(mapping.get(k) == v for k, v in view_tuple.items()):
            rows.append(mapping)
    return rows


def _base_key(
    engine: Engine, relation: str, qualified_row: Mapping[str, Any]
) -> Tuple[Any, ...]:
    schema = engine.schema(relation)
    return tuple(qualified_row[f"{relation}.{k}"] for k in schema.key)


def enumerate_deletions(
    view: RelationalView,
    engine: Engine,
    view_tuple: Mapping[str, Any],
) -> List[List[DatabaseOperation]]:
    """One candidate per underlying relation choice."""
    rows = contributing_rows(view, engine, view_tuple)
    if not rows:
        raise UpdateError(
            f"view {view.name!r}: no tuple matches {dict(view_tuple)!r}"
        )
    candidates: List[List[DatabaseOperation]] = []
    seen = set()
    for relation in view.relations:
        plan: List[DatabaseOperation] = []
        keys = set()
        for row in rows:
            key = _base_key(engine, relation, row)
            if key not in keys:
                keys.add(key)
                plan.append(Delete(relation, key))
        signature = (relation, tuple(sorted(keys)))
        if signature not in seen:
            seen.add(signature)
            candidates.append(plan)
    return candidates


def enumerate_insertions(
    view: RelationalView,
    engine: Engine,
    base_tuples: Mapping[str, Sequence[Any]],
) -> List[List[DatabaseOperation]]:
    """Insert whichever contributing tuples are missing.

    ``base_tuples`` maps each view relation to the full base tuple the
    new view tuple decomposes into (the caller resolves projected-out
    attributes, as in the paper's view-object treatment).
    """
    plan: List[DatabaseOperation] = []
    for relation in view.relations:
        if relation not in base_tuples:
            raise UpdateError(
                f"insertion into view {view.name!r} must specify a tuple "
                f"for relation {relation!r}"
            )
        values = tuple(base_tuples[relation])
        schema = engine.schema(relation)
        key = schema.key_of(values)
        if engine.get(relation, key) is None:
            plan.append(Insert(relation, values))
    return [plan]


def enumerate_replacements(
    view: RelationalView,
    engine: Engine,
    old_view_tuple: Mapping[str, Any],
    changes: Mapping[str, Any],
) -> List[List[DatabaseOperation]]:
    """Candidates for changing qualified attributes of one view tuple.

    Non-join attributes must change in their owning relation; a changed
    join attribute may change on the left side, the right side, or both
    — each combination is one candidate.
    """
    rows = contributing_rows(view, engine, old_view_tuple)
    if not rows:
        raise UpdateError(
            f"view {view.name!r}: no tuple matches {dict(old_view_tuple)!r}"
        )
    join_partners: Dict[str, List[str]] = {}
    for edge in view.joins:
        for a, b in edge.pairs:
            left_q = f"{edge.left}.{a}"
            right_q = f"{edge.right}.{b}"
            join_partners.setdefault(left_q, []).append(right_q)
            join_partners.setdefault(right_q, []).append(left_q)

    # Each changed attribute has a set of placement options: every
    # nonempty subset of {itself} ∪ {its join partners}.
    options: List[List[Tuple[Tuple[str, Any], ...]]] = []
    for qualified, new_value in changes.items():
        spots = [qualified] + join_partners.get(qualified, [])
        subsets: List[Tuple[Tuple[str, Any], ...]] = []
        for size in range(1, len(spots) + 1):
            for subset in itertools.combinations(spots, size):
                subsets.append(tuple((spot, new_value) for spot in subset))
        options.append(subsets)

    candidates: List[List[DatabaseOperation]] = []
    seen = set()
    for combo in itertools.product(*options):
        per_relation: Dict[str, Dict[str, Any]] = {}
        for placement in combo:
            for qualified, new_value in placement:
                relation, attribute = qualified.split(".", 1)
                per_relation.setdefault(relation, {})[attribute] = new_value
        plan: List[DatabaseOperation] = []
        handled = set()
        for row in rows:
            for relation, updates in per_relation.items():
                key = _base_key(engine, relation, row)
                if (relation, key) in handled:
                    continue
                handled.add((relation, key))
                existing = engine.get(relation, key)
                if existing is None:
                    continue
                schema = engine.schema(relation)
                mapping = schema.as_mapping(existing)
                mapping.update(updates)
                plan.append(
                    Replace(relation, key, schema.row_from_mapping(mapping))
                )
        signature = tuple(sorted(repr(op) for op in plan))
        if signature not in seen:
            seen.add(signature)
            candidates.append(plan)
    return candidates


def valid_translations(
    view: RelationalView,
    engine: Engine,
    candidates: Sequence[Sequence[DatabaseOperation]],
    expected_view: List[Tuple],
) -> List[List[DatabaseOperation]]:
    """Filter candidates through the five validity criteria."""
    return [
        list(plan)
        for plan in candidates
        if criteria.satisfies_all(view, engine, plan, expected_view)
    ]
