"""Keller's relational-view update framework: the paper's baseline.

Flat select-project-join views, the five validity criteria, candidate
enumeration, and a definition-time-chosen translator — the approach the
view-object algorithms of Section 5 extend.
"""

from repro.keller.criteria import (
    no_delete_insert_pairs,
    no_side_effects,
    no_unnecessary_changes,
    one_step_changes,
    satisfies_all,
    simplest_replacements,
)
from repro.keller.dialog import choose_flat_translator
from repro.keller.enumeration import (
    contributing_rows,
    enumerate_deletions,
    enumerate_insertions,
    enumerate_replacements,
    valid_translations,
)
from repro.keller.translator import KellerTranslator
from repro.keller.views import JoinEdge, RelationalView

__all__ = [
    "RelationalView",
    "JoinEdge",
    "KellerTranslator",
    "choose_flat_translator",
    "contributing_rows",
    "enumerate_deletions",
    "enumerate_insertions",
    "enumerate_replacements",
    "valid_translations",
    "one_step_changes",
    "no_delete_insert_pairs",
    "simplest_replacements",
    "no_side_effects",
    "no_unnecessary_changes",
    "satisfies_all",
]
