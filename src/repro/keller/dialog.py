"""Definition-time dialog for flat relational views.

"In the case of relational views, these semantics are obtained by a
dialog during view definition time by asking a series of questions to
the view definer, typically the database administrator." The flat-view
dialog asks which relation absorbs deletions, which relations accept
insertions, and which side of a join absorbs join-attribute changes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import DialogError
from repro.dialog.answers import AnswerSource
from repro.dialog.questions import Question
from repro.dialog.transcript import Transcript
from repro.keller.translator import KellerTranslator
from repro.keller.views import RelationalView

__all__ = ["choose_flat_translator"]


def choose_flat_translator(
    view: RelationalView,
    source: AnswerSource,
) -> Tuple[KellerTranslator, Transcript]:
    """Run the flat-view dialog; return the configured translator."""
    transcript = Transcript()

    def ask(question: Question) -> bool:
        answer = source.answer(question)
        transcript.record(question, answer)
        return answer

    delete_target: Optional[str] = None
    for relation in view.relations:
        question = Question(
            f"flat.delete.{relation}",
            f"When a tuple of view {view.name} is deleted, should the "
            f"deletion be performed on relation {relation}?",
            relation=relation,
            section="deletion",
        )
        if ask(question):
            delete_target = relation
            break
    if delete_target is None:
        raise DialogError(
            f"view {view.name!r}: the dialog rejected every deletion "
            f"target; deletions through this view are impossible"
        )

    insertable = []
    for relation in view.relations:
        question = Question(
            f"flat.insert.{relation}",
            f"Can relation {relation} receive insertions when a new "
            f"{view.name} tuple is inserted?",
            relation=relation,
            section="insertion",
        )
        if ask(question):
            insertable.append(relation)

    join_change_side = "left"
    if view.joins:
        question = Question(
            "flat.join_side",
            f"When a join attribute of view {view.name} changes, should "
            f"the change be applied to the referencing (left) relation "
            f"only?",
            section="replacement",
        )
        join_change_side = "left" if ask(question) else "both"

    translator = KellerTranslator(
        view,
        delete_target=delete_target,
        insertable=insertable,
        join_change_side=join_change_side,
    )
    return translator, transcript
