"""The chosen translator for a flat relational view.

"We use semantics of the application to choose among the alternative
translations of view updates ... obtained by a dialog during view
definition time." A :class:`KellerTranslator` records those choices —
which relation absorbs deletions, which relations accept insertions,
which side of a join absorbs join-attribute changes — and applies them
to subsequent updates without further interaction.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.errors import UpdateError, UpdateRejectedError
from repro.keller.enumeration import contributing_rows
from repro.keller.views import RelationalView
from repro.relational.engine import Engine
from repro.relational.operations import (
    Delete,
    Insert,
    Replace,
    UpdatePlan,
)

__all__ = ["KellerTranslator"]


class KellerTranslator:
    """Applies the definition-time choices to flat-view updates.

    Parameters
    ----------
    view:
        The relational view.
    delete_target:
        The relation whose contributing tuple a view deletion removes
        (Keller's algorithm defaults to the query-graph root).
    insertable:
        Relations allowed to receive insertions during view insertions.
    join_change_side:
        For changed join attributes, ``"left"``, ``"right"``, or
        ``"both"`` — which side of the join absorbs the change.
    """

    def __init__(
        self,
        view: RelationalView,
        delete_target: Optional[str] = None,
        insertable: Optional[Sequence[str]] = None,
        join_change_side: str = "left",
    ) -> None:
        self.view = view
        self.delete_target = delete_target or view.anchor
        if self.delete_target not in view.relations:
            raise UpdateError(
                f"delete target {self.delete_target!r} is not part of view "
                f"{view.name!r}"
            )
        self.insertable = (
            set(insertable) if insertable is not None else set(view.relations)
        )
        if join_change_side not in ("left", "right", "both"):
            raise UpdateError(
                f"join_change_side must be left/right/both, got "
                f"{join_change_side!r}"
            )
        self.join_change_side = join_change_side

    # -- operations -----------------------------------------------------------

    def delete(
        self, engine: Engine, view_tuple: Mapping[str, Any]
    ) -> UpdatePlan:
        """Delete the matching view tuple(s) via the chosen relation."""
        rows = contributing_rows(self.view, engine, view_tuple)
        if not rows:
            raise UpdateError(
                f"view {self.view.name!r}: no tuple matches "
                f"{dict(view_tuple)!r}"
            )
        plan = UpdatePlan()
        schema = engine.schema(self.delete_target)
        seen = set()
        engine.begin()
        try:
            for row in rows:
                key = tuple(
                    row[f"{self.delete_target}.{k}"] for k in schema.key
                )
                if key in seen:
                    continue
                seen.add(key)
                engine.delete(self.delete_target, key)
                plan.add(
                    Delete(self.delete_target, key),
                    reason=f"flat-view deletion via {self.delete_target}",
                )
        except Exception:
            engine.rollback()
            raise
        engine.commit()
        return plan

    def insert(
        self, engine: Engine, base_tuples: Mapping[str, Sequence[Any]]
    ) -> UpdatePlan:
        """Insert the missing contributing tuples of a new view tuple."""
        plan = UpdatePlan()
        engine.begin()
        try:
            for relation in self.view.relations:
                values = tuple(base_tuples[relation])
                schema = engine.schema(relation)
                key = schema.key_of(values)
                existing = engine.get(relation, key)
                if existing is not None:
                    if existing != values:
                        raise UpdateRejectedError(
                            f"flat-view insertion conflicts with existing "
                            f"{relation!r} tuple {key!r}",
                            relation=relation,
                        )
                    continue
                if relation not in self.insertable:
                    raise UpdateRejectedError(
                        f"flat-view insertion needs a new {relation!r} tuple "
                        f"but the translator does not allow insertions there",
                        relation=relation,
                    )
                engine.insert(relation, values)
                plan.add(
                    Insert(relation, values),
                    reason=f"flat-view insertion into {relation}",
                )
        except Exception:
            engine.rollback()
            raise
        engine.commit()
        return plan

    def replace(
        self,
        engine: Engine,
        old_view_tuple: Mapping[str, Any],
        changes: Mapping[str, Any],
    ) -> UpdatePlan:
        """Change qualified attributes of one view tuple."""
        rows = contributing_rows(self.view, engine, old_view_tuple)
        if not rows:
            raise UpdateError(
                f"view {self.view.name!r}: no tuple matches "
                f"{dict(old_view_tuple)!r}"
            )
        placements = self._place_changes(changes)
        plan = UpdatePlan()
        handled = set()
        engine.begin()
        try:
            for row in rows:
                for relation, updates in placements.items():
                    schema = engine.schema(relation)
                    key = tuple(row[f"{relation}.{k}"] for k in schema.key)
                    if (relation, key) in handled:
                        continue
                    handled.add((relation, key))
                    existing = engine.get(relation, key)
                    if existing is None:
                        continue
                    mapping = schema.as_mapping(existing)
                    mapping.update(updates)
                    new_values = schema.row_from_mapping(mapping)
                    engine.replace(relation, key, new_values)
                    plan.add(
                        Replace(relation, key, new_values),
                        reason=f"flat-view replacement in {relation}",
                    )
        except Exception:
            engine.rollback()
            raise
        engine.commit()
        return plan

    # -- helpers -----------------------------------------------------------------

    def _place_changes(
        self, changes: Mapping[str, Any]
    ) -> Dict[str, Dict[str, Any]]:
        """Distribute qualified changes over relations per the chosen
        join-change side."""
        join_partner: Dict[str, str] = {}
        for edge in self.view.joins:
            for a, b in edge.pairs:
                join_partner[f"{edge.left}.{a}"] = f"{edge.right}.{b}"
        per_relation: Dict[str, Dict[str, Any]] = {}

        def place(qualified: str, value: Any) -> None:
            relation, attribute = qualified.split(".", 1)
            per_relation.setdefault(relation, {})[attribute] = value

        for qualified, value in changes.items():
            partner = join_partner.get(qualified)
            if partner is None:
                # Right-side attrs keyed by their left partner too.
                reverse = {v: k for k, v in join_partner.items()}
                partner = reverse.get(qualified)
                if partner is not None and self.join_change_side in (
                    "left",
                    "both",
                ):
                    place(partner, value)
                if partner is None or self.join_change_side in (
                    "right",
                    "both",
                ):
                    place(qualified, value)
                continue
            # ``qualified`` is a left-side join attribute.
            if self.join_change_side in ("left", "both"):
                place(qualified, value)
            if self.join_change_side in ("right", "both"):
                place(partner, value)
        return per_relation
