"""Flat relational views: the substrate of Keller's approach (Section 4).

"Keller's approach to updating relational databases through views starts
with a relational view definition. This relational view differs from a
view object in that each tuple is in first normal form."

A :class:`RelationalView` is a select-project-join view: an ordered list
of base relations, equi-join conditions given as connection-style
attribute pairs, a selection predicate, and an output projection.
Attribute names are qualified ``RELATION.attr`` internally to keep the
join unambiguous.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational import algebra
from repro.relational.engine import Engine
from repro.relational.expressions import Expression, TRUE

__all__ = ["JoinEdge", "RelationalView"]


class JoinEdge:
    """One equi-join between two base relations of the view."""

    __slots__ = ("left", "right", "pairs")

    def __init__(
        self, left: str, right: str, pairs: Sequence[Tuple[str, str]]
    ) -> None:
        self.left = left
        self.right = right
        self.pairs = tuple(pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{a}={b}" for a, b in self.pairs)
        return f"JoinEdge({self.left} * {self.right} on {pairs})"


class RelationalView:
    """A named select-project-join view over base relations.

    Parameters
    ----------
    name:
        View name.
    relations:
        Base relation names, in join order; the first is the view's
        anchor (Keller's query-graph root).
    joins:
        Join edges; each must connect a later relation to an earlier
        one, forming a join tree.
    selection:
        Predicate over *qualified* attribute names
        (``"COURSES.level"``); default true.
    projection:
        Qualified attribute names the view exposes; default all.
    """

    def __init__(
        self,
        name: str,
        relations: Sequence[str],
        joins: Sequence[JoinEdge] = (),
        selection: Expression = TRUE,
        projection: Optional[Sequence[str]] = None,
    ) -> None:
        if not relations:
            raise SchemaError(f"view {name!r} needs at least one relation")
        self.name = name
        self.relations = tuple(relations)
        self.joins = tuple(joins)
        self.selection = selection
        self.projection = tuple(projection) if projection is not None else None
        placed = {self.relations[0]}
        for edge in self.joins:
            if edge.right in placed and edge.left not in placed:
                edge = JoinEdge(
                    edge.right, edge.left, [(b, a) for a, b in edge.pairs]
                )
            if edge.left not in placed:
                raise SchemaError(
                    f"view {name!r}: join edge touches {edge.left!r} before "
                    f"it is reachable from {self.relations[0]!r}"
                )
            placed.add(edge.right)
        missing = set(self.relations) - placed
        if missing:
            raise SchemaError(
                f"view {name!r}: relations {sorted(missing)!r} are not "
                f"connected by any join edge"
            )

    @property
    def anchor(self) -> str:
        return self.relations[0]

    # -- evaluation ----------------------------------------------------------

    def qualified(self, engine: Engine, relation: str) -> algebra.DerivedRelation:
        """A base relation with ``RELATION.attr`` qualified names."""
        base = algebra.from_engine(engine, relation)
        renames = {
            a.name: f"{relation}.{a.name}" for a in base.schema.attributes
        }
        return algebra.rename(base, renames, new_name=relation)

    def materialize(self, engine: Engine) -> algebra.DerivedRelation:
        """Evaluate the view body into a derived relation."""
        current = self.qualified(engine, self.relations[0])
        joined = {self.relations[0]}
        pending = list(self.joins)
        while pending:
            progressed = False
            for edge in list(pending):
                left, right, pairs = edge.left, edge.right, edge.pairs
                if right in joined and left not in joined:
                    left, right = right, left
                    pairs = [(b, a) for a, b in pairs]
                if left not in joined or right in joined:
                    continue
                other = self.qualified(engine, right)
                current = algebra.join(
                    current,
                    other,
                    on=[
                        (f"{left}.{a}", f"{right}.{b}")
                        for a, b in pairs
                    ],
                    new_name=self.name,
                )
                joined.add(right)
                pending.remove(edge)
                progressed = True
            if not progressed:  # pragma: no cover - guarded in __init__
                raise SchemaError(
                    f"view {self.name!r}: join graph is disconnected"
                )
        current = algebra.select(current, self.selection)
        if self.projection is not None:
            current = algebra.project(
                current, self.projection, new_name=self.name
            )
        return current

    def tuples(self, engine: Engine) -> List[Tuple]:
        return list(self.materialize(engine).tuples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelationalView({self.name!r}, {'*'.join(self.relations)})"
