"""Keller's five validity criteria for view-update translations.

"Conceptually, we specify an enumeration of all possible valid
translations ... This enumeration is based on five validity criteria
that must all be satisfied. These criteria are syntactically based and
they characterize the nature of the ambiguity in view-update
translation."

From Keller's PODS'85 paper, a candidate translation must have:

1. **No database side effects** — the view after the translation equals
   the view after the requested update and nothing else changed in it;
2. **Only one-step changes** — each database tuple is affected by at
   most one operation of the translation;
3. **No unnecessary changes** — no proper subset of the translation
   achieves the same view update (minimality);
4. **Simplest replacements** — a requested view replacement maps to
   database replacements, never to delete-insert pairs on the same key;
5. **No delete-insert pairs** — the translation never deletes a
   database tuple and re-inserts one with the same key.

Criteria 2, 4, and 5 are purely syntactic over the operation list;
criteria 1 and 3 need the database (we check them by applying candidate
plans inside a transaction and rolling back).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.keller.views import RelationalView
from repro.relational.engine import Engine
from repro.relational.operations import (
    DatabaseOperation,
    Delete,
    Insert,
    Replace,
)

__all__ = [
    "touched_keys",
    "one_step_changes",
    "no_delete_insert_pairs",
    "simplest_replacements",
    "no_side_effects",
    "no_unnecessary_changes",
    "satisfies_all",
]


def touched_keys(plan: Sequence[DatabaseOperation]) -> List[Tuple[str, Tuple]]:
    """(relation, key) pairs each operation touches, in order."""
    touched = []
    for operation in plan:
        if isinstance(operation, Insert):
            # The inserted tuple's key is not recoverable without the
            # schema; approximate with the full tuple (safe for
            # uniqueness checks — stricter, never laxer).
            touched.append((operation.relation, operation.values))
        elif isinstance(operation, Delete):
            touched.append((operation.relation, operation.key))
        elif isinstance(operation, Replace):
            touched.append((operation.relation, operation.key))
    return touched


def one_step_changes(plan: Sequence[DatabaseOperation]) -> bool:
    """Criterion 2: each database tuple changed at most once."""
    seen: Set[Tuple[str, Tuple]] = set()
    for entry in touched_keys(plan):
        if entry in seen:
            return False
        seen.add(entry)
    return True


def no_delete_insert_pairs(
    plan: Sequence[DatabaseOperation], engine: Engine
) -> bool:
    """Criterion 5: no deletion later re-inserted with the same key."""
    deleted: Set[Tuple[str, Tuple]] = set()
    for operation in plan:
        if isinstance(operation, Delete):
            deleted.add((operation.relation, operation.key))
        elif isinstance(operation, Insert):
            schema = engine.schema(operation.relation)
            key = schema.key_of(operation.values)
            if (operation.relation, key) in deleted:
                return False
    return True


def simplest_replacements(
    plan: Sequence[DatabaseOperation], engine: Engine
) -> bool:
    """Criterion 4: alias of criterion 5 at the plan level — a view
    replacement must not decompose into delete+insert of one tuple."""
    return no_delete_insert_pairs(plan, engine)


def no_side_effects(
    view: RelationalView,
    engine: Engine,
    plan: Sequence[DatabaseOperation],
    expected_view: List[Tuple],
) -> bool:
    """Criterion 1: after the plan, the view equals the expected state."""
    engine.begin()
    try:
        for operation in plan:
            operation.apply(engine)
        actual = sorted(view.tuples(engine))
    except Exception:
        engine.rollback()
        return False
    engine.rollback()
    return actual == sorted(expected_view)


def no_unnecessary_changes(
    view: RelationalView,
    engine: Engine,
    plan: Sequence[DatabaseOperation],
    expected_view: List[Tuple],
) -> bool:
    """Criterion 3: no proper subset of the plan also works."""
    if len(plan) <= 1:
        return True
    for skip in range(len(plan)):
        subset = [op for index, op in enumerate(plan) if index != skip]
        if no_side_effects(view, engine, subset, expected_view):
            return False
    return True


def satisfies_all(
    view: RelationalView,
    engine: Engine,
    plan: Sequence[DatabaseOperation],
    expected_view: List[Tuple],
) -> bool:
    """All five criteria."""
    return (
        one_step_changes(plan)
        and no_delete_insert_pairs(plan, engine)
        and simplest_replacements(plan, engine)
        and no_side_effects(view, engine, plan, expected_view)
        and no_unnecessary_changes(view, engine, plan, expected_view)
    )
