"""Deterministic shard routing for horizontally partitioned databases.

The paper's translation machinery is island-local: once the DBA dialog
fixes a translator, a view-object update touches only the relations of
one dependency island, and every island tuple carries the pivot key in
its own primary key (the structural model's ownership chains accumulate
key attributes downward). That makes base relations naturally
partitionable *by pivot key*:

* a relation whose primary key contains every pivot-key attribute is
  **partitioned** — each tuple lives on exactly one shard, chosen by
  the pivot-key values it carries;
* every other relation (referenced lookups like ``PHYSICIAN`` or
  ``MEDICATION``, small dimension tables) is **replicated** — present
  on every shard, so island-local translation can run entirely on the
  owning shard.

:class:`Placement` computes that classification from a structural
schema; :class:`HashRouter` and :class:`RangeRouter` map routing keys
to shard ids deterministically (stable across processes — no reliance
on Python's randomized ``hash``); :func:`partition_plan` splits a
coalesced :class:`~repro.relational.operations.UpdatePlan` into
per-shard sub-plans, turning a pivot-key re-homing replacement into a
delete on the old owner plus an insert on the new one.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import UpdateError
from repro.relational.operations import Delete, Insert, UpdatePlan
from repro.structural.schema_graph import StructuralSchema

__all__ = [
    "Placement",
    "Router",
    "HashRouter",
    "RangeRouter",
    "partition_plan",
    "stable_hash",
]

RoutingKey = Tuple[Any, ...]


def stable_hash(key: Sequence[Any]) -> int:
    """A process-stable 64-bit hash of a routing key.

    Python's built-in ``hash`` is randomized per process for strings,
    which would scatter the same pivot key to different shards across
    restarts; routing must be a pure function of the data.
    """
    digest = hashlib.blake2b(digest_size=8)
    for value in key:
        digest.update(type(value).__name__.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(str(value).encode("utf-8"))
        digest.update(b"\x1e")
    return int.from_bytes(digest.digest(), "big")


class Router:
    """Maps a routing key (the pivot-key values) to a shard id."""

    num_shards: int

    def shard_of(self, key: Sequence[Any]) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class HashRouter(Router):
    """Uniform hash partitioning over a stable key hash."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, key: Sequence[Any]) -> int:
        return stable_hash(key) % self.num_shards

    def describe(self) -> str:
        return f"hash({self.num_shards})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRouter({self.num_shards})"


class RangeRouter(Router):
    """Range partitioning on the *first* routing-key attribute.

    ``boundaries`` are the sorted split points: shard 0 serves keys
    strictly below ``boundaries[0]``, shard i serves
    ``boundaries[i-1] <= key < boundaries[i]``, and the last shard
    serves everything from ``boundaries[-1]`` up. With N-1 boundaries
    there are N shards.
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        if not boundaries:
            raise ValueError("a RangeRouter needs at least one boundary")
        ordered = list(boundaries)
        if ordered != sorted(ordered):
            raise ValueError(f"boundaries must be sorted: {boundaries!r}")
        self.boundaries = ordered
        self.num_shards = len(ordered) + 1

    def shard_of(self, key: Sequence[Any]) -> int:
        return bisect.bisect_right(self.boundaries, key[0])

    def describe(self) -> str:
        return f"range({self.boundaries!r})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeRouter({self.boundaries!r})"


class Placement:
    """Partitioned-vs-replicated classification of one schema's relations.

    Parameters
    ----------
    graph:
        The structural schema.
    partition_by:
        The pivot relation whose primary key is the partitioning key.
        A relation is partitioned iff its own primary key contains
        every partitioning attribute (in the structural model, exactly
        the pivot relation and the ownership chain hanging off it);
        everything else is replicated to all shards.
    """

    def __init__(self, graph: StructuralSchema, partition_by: str) -> None:
        self.graph = graph
        self.partition_by = partition_by
        pivot_schema = graph.relation(partition_by)
        self.partition_attrs: Tuple[str, ...] = tuple(pivot_schema.key)
        self._key_positions: Dict[str, Tuple[int, ...]] = {}
        self._value_positions: Dict[str, Tuple[int, ...]] = {}
        for name in graph.relation_names:
            schema = graph.relation(name)
            key_attrs = tuple(schema.key)
            if all(attr in key_attrs for attr in self.partition_attrs):
                self._key_positions[name] = tuple(
                    key_attrs.index(attr) for attr in self.partition_attrs
                )
                names = schema.attribute_names
                self._value_positions[name] = tuple(
                    names.index(attr) for attr in self.partition_attrs
                )

    @property
    def partitioned(self) -> Tuple[str, ...]:
        return tuple(sorted(self._key_positions))

    @property
    def replicated(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                name
                for name in self.graph.relation_names
                if name not in self._key_positions
            )
        )

    def is_partitioned(self, relation: str) -> bool:
        return relation in self._key_positions

    def routing_key_of_key(
        self, relation: str, key: Sequence[Any]
    ) -> RoutingKey:
        """The routing key carried by a partitioned relation's primary key."""
        positions = self._key_positions[relation]
        return tuple(key[i] for i in positions)

    def routing_key_of_values(
        self, relation: str, values: Sequence[Any]
    ) -> RoutingKey:
        """The routing key carried by a partitioned relation's full tuple."""
        positions = self._value_positions[relation]
        return tuple(values[i] for i in positions)

    def describe(self) -> str:
        return (
            f"partition by {self.partition_by}"
            f"{list(self.partition_attrs)!r}: "
            f"partitioned={list(self.partitioned)}, "
            f"replicated={list(self.replicated)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Placement({self.partition_by!r}, {self.partition_attrs!r})"


def partition_plan(
    plan: UpdatePlan,
    placement: Placement,
    router: Router,
    num_shards: Optional[int] = None,
) -> Dict[int, UpdatePlan]:
    """Split a coalesced plan into per-shard sub-plans.

    * operations on replicated relations go to **every** shard (the
      replicas must stay in lockstep — this is what lets island-local
      translation run on any single shard);
    * operations on partitioned relations go to the shard owning their
      routing key;
    * a replacement whose new values re-home the routing key to a
      different shard is split into a ``Delete`` on the old owner and
      an ``Insert`` on the new one.

    Returns only the shards with work ({} for an empty plan); a
    single-key result means the plan is island-local and needs no
    cross-shard coordination.
    """
    shard_count = num_shards if num_shards is not None else router.num_shards
    split: Dict[int, UpdatePlan] = {}

    def plan_for(shard_id: int) -> UpdatePlan:
        sub = split.get(shard_id)
        if sub is None:
            sub = split[shard_id] = UpdatePlan()
        return sub

    for operation, reason in zip(plan.operations, plan.reasons):
        relation = operation.relation
        if not placement.is_partitioned(relation):
            for shard_id in range(shard_count):
                plan_for(shard_id).add(operation, reason)
            continue
        if operation.kind == "insert":
            routing = placement.routing_key_of_values(
                relation, operation.values
            )
            plan_for(router.shard_of(routing)).add(operation, reason)
        elif operation.kind == "delete":
            routing = placement.routing_key_of_key(relation, operation.key)
            plan_for(router.shard_of(routing)).add(operation, reason)
        else:  # replace
            old_routing = placement.routing_key_of_key(
                relation, operation.key
            )
            new_routing = placement.routing_key_of_values(
                relation, operation.values
            )
            old_shard = router.shard_of(old_routing)
            new_shard = router.shard_of(new_routing)
            if old_shard == new_shard:
                plan_for(old_shard).add(operation, reason)
            else:
                plan_for(old_shard).add(
                    Delete(relation, operation.key),
                    reason or "re-homed to another shard",
                )
                plan_for(new_shard).add(
                    Insert(relation, operation.values),
                    reason or "re-homed from another shard",
                )
    for shard_id in split:
        if shard_id < 0 or shard_id >= shard_count:
            raise UpdateError(
                f"router produced shard {shard_id} outside 0..{shard_count - 1}"
            )
    return split
