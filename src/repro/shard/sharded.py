"""The sharded facade: one logical Penguin over N partitioned engines.

:class:`ShardedPenguin` presents the same view-object surface as
:class:`~repro.penguin.Penguin`, backed by ``num_shards`` independent
engine instances. Each shard is a full serving stack of its own — a
:class:`~repro.serve.concurrent.ConcurrentPenguin` with its own plan
journal, circuit breaker, audit log, and materialized caches — so a
shard can fail, degrade, and recover independently.

Placement follows the paper's structure (see
:mod:`repro.shard.router`): island relations carry the pivot key in
their primary keys and are partitioned by it; referenced lookups are
replicated to every shard. A view-object update therefore translates
entirely on the shard that owns its pivot key — translation runs
side-effect-free there (:meth:`Translator.explain`), the coalesced
plan is partitioned, and:

* a plan confined to one shard takes the **fast path**: journaled,
  audited, breaker-guarded apply on that shard alone;
* a plan spanning shards (a peninsula fix touching a replicated
  relation, a replacement re-homing the pivot key) goes through the
  **two-phase coordinator** (:mod:`repro.shard.twophase`), which holds
  the write locks of every participant and leaves each shard's journal
  able to finish the transaction after a crash.

Coordination between the two paths uses a second readers-writer lock:
fast-path writes on *different* shards share it and run concurrently;
a cross-shard transaction takes it exclusively, so it can never
interleave with a fast-path write on one of its participants.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import repro.obs as obs
from repro.core.instance import Instance, build_instance
from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    Replacement,
    UpdateRequest,
)
from repro.errors import DegradedServiceError, ReplicationQuorumError
from repro.obs.audit import COMMITTED as AUDIT_COMMITTED
from repro.obs.audit import ROLLED_BACK as AUDIT_ROLLED_BACK
from repro.obs.audit import AuditLog, MemoryAuditLog
from repro.obs.explain import TranslationExplanation
from repro.penguin import Penguin
from repro.relational.engine import Engine
from repro.relational.journal import MemoryJournal, PlanJournal, plan_images
from repro.relational.operations import UpdatePlan
from repro.replicate import ReplicaSet, ReplicationConfig, ShippedRecord
from repro.serve.breaker import CircuitBreaker
from repro.serve.concurrent import ConcurrentPenguin, ServedRead
from repro.serve.locks import ReadWriteLock
from repro.shard.router import HashRouter, Placement, Router, partition_plan
from repro.shard.twophase import recover_two_phase, two_phase_apply
from repro.structural.schema_graph import StructuralSchema

__all__ = ["Shard", "ShardedPenguin", "ShardedRecovery", "sharded_loader"]


class Shard:
    """One shard: a serving facade plus its id, as seen by the router.

    With replication attached (:attr:`replica_set` non-None), every
    accessor resolves through the set's *current primary* — after a
    failover the promoted replica's stack is what ``serving``,
    ``engine``, ``journal``, and ``lock`` return, so routing follows
    the promotion with no re-wiring anywhere else.
    """

    def __init__(
        self,
        shard_id: int,
        serving: ConcurrentPenguin,
        replica_set: Optional[ReplicaSet] = None,
    ) -> None:
        self.shard_id = shard_id
        self._serving = serving
        self.replica_set = replica_set

    @property
    def serving(self) -> ConcurrentPenguin:
        if self.replica_set is not None:
            return self.replica_set.primary.serving
        return self._serving

    @property
    def penguin(self) -> Penguin:
        return self.serving.penguin

    @property
    def engine(self) -> Engine:
        return self.serving.penguin.engine

    @property
    def journal(self) -> PlanJournal:
        return self.serving.penguin.journal

    @property
    def lock(self) -> ReadWriteLock:
        return self.serving.lock

    # -- replication-aware routing ------------------------------------------

    def each_serving(self):
        """The primary's facade, then every replica's (definition fan-out)."""
        yield self.serving
        if self.replica_set is not None:
            for replica in self.replica_set.replicas:
                yield replica.serving

    def seed_engines(self) -> List[Engine]:
        """Every engine that must hold this shard's seed data."""
        engines = [self.engine]
        if self.replica_set is not None:
            engines.extend(
                replica.engine for replica in self.replica_set.replicas
            )
        return engines

    def apply_plan(
        self, name: str, plan: UpdatePlan, op: str = "update", items: int = 1
    ) -> UpdatePlan:
        """The shard-local write entry point, quorum-replicated if so configured."""
        if self.replica_set is not None:
            return self.replica_set.apply_plan(name, plan, op=op, items=items)
        return self.serving.apply_plan(name, plan, op=op, items=items)

    def get_served(self, name: str, key: Sequence[Any]) -> ServedRead:
        if self.replica_set is not None:
            return self.replica_set.get_served(name, key)
        return self.serving.get_served(name, key)

    def query_served(
        self, name: str, text: Optional[str] = None
    ) -> ServedRead:
        if self.replica_set is not None:
            return self.replica_set.query_served(name, text)
        return self.serving.query_served(name, text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shard({self.shard_id}, {self.serving!r})"


class ShardedRecovery:
    """Combined startup-recovery outcome: 2PC pass + per-shard passes."""

    def __init__(self, two_phase, shards: Dict[int, Any]) -> None:
        self.two_phase = two_phase
        self.shards = shards

    @property
    def clean(self) -> bool:
        return self.two_phase.clean

    def as_dict(self) -> Dict[str, Any]:
        return {
            "two_phase": self.two_phase.as_dict(),
            "shards": {
                shard_id: getattr(report, "as_dict", lambda: report)()
                for shard_id, report in self.shards.items()
            },
        }


class ShardedPenguin:
    """Horizontal partitioning of one structural schema across N shards.

    Parameters
    ----------
    graph:
        The structural schema, installed identically on every shard.
    partition_by:
        The relation whose primary key partitions the data — normally
        the pivot of the workload's main view object. Relations whose
        keys contain all of its key attributes are partitioned;
        everything else is replicated.
    num_shards / router:
        Either a shard count (hash partitioning) or an explicit
        :class:`~repro.shard.router.Router`; the router's shard count
        wins when both are given.
    engines / journals / audits / breakers:
        Optional per-shard components, mainly for restart-after-crash
        scenarios where existing engines and journals are re-attached.
        Defaults: fresh memory engines, :class:`MemoryJournal` and
        :class:`MemoryAuditLog` per shard. Pass ``install=False`` when
        re-attaching engines that already have the schema.
    replication:
        A :class:`~repro.replicate.ReplicationConfig` attaches a
        :class:`~repro.replicate.ReplicaSet` to every shard: writes ack
        only after the configured quorum of replicas has durable
        receipt of the shipped plan, reads fall back to the
        most-caught-up replica (marked stale) when the primary is dead
        or degraded, and the failure detector promotes a replica
        automatically after ``miss_threshold`` missed probes. ``None``
        (the default) changes nothing. Replica stacks always use fresh
        memory engines.

    Startup always runs recovery — the cross-shard two-phase pass
    first, then each shard's standard journal recovery — and keeps the
    report as :attr:`recovery`.
    """

    def __init__(
        self,
        graph: StructuralSchema,
        partition_by: str,
        num_shards: int = 4,
        router: Optional[Router] = None,
        backend: str = "memory",
        metric=None,
        verify_integrity: bool = False,
        engines: Optional[Sequence[Engine]] = None,
        journals: Optional[Sequence[PlanJournal]] = None,
        audits: Optional[Sequence[AuditLog]] = None,
        breakers: Optional[Sequence[CircuitBreaker]] = None,
        install: Optional[bool] = None,
        replication: Optional[ReplicationConfig] = None,
    ) -> None:
        self.graph = graph
        self.placement = Placement(graph, partition_by)
        self.router = router or HashRouter(num_shards)
        self.num_shards = self.router.num_shards
        if install is None:
            install = engines is None
        for name, given in (
            ("engines", engines), ("journals", journals),
            ("audits", audits), ("breakers", breakers),
        ):
            if given is not None and len(given) != self.num_shards:
                raise ValueError(
                    f"{name} must have one entry per shard "
                    f"({len(given)} != {self.num_shards})"
                )
        self._shards: Dict[int, Shard] = {}
        for shard_id in range(self.num_shards):
            penguin = Penguin(
                graph,
                engine=engines[shard_id] if engines else None,
                backend=backend,
                metric=metric,
                install=install,
                verify_integrity=verify_integrity,
                audit=audits[shard_id] if audits else MemoryAuditLog(),
            )
            # Attached after construction so recovery is NOT run per
            # shard in isolation here — per-shard recovery would tear a
            # half-applied cross-shard transaction; recover() below
            # settles the 2PC entries globally first.
            penguin.journal = (
                journals[shard_id] if journals else MemoryJournal()
            )
            serving = ConcurrentPenguin(
                penguin,
                breaker=breakers[shard_id] if breakers else CircuitBreaker(),
            )
            serving.metric_labels = {"shard": str(shard_id)}
            serving.component = f"shard{shard_id}"
            replica_set = None
            if replication is not None:
                replica_set = ReplicaSet(
                    shard_id, serving, graph, config=replication,
                    metric=metric,
                )
            self._shards[shard_id] = Shard(
                shard_id, serving, replica_set=replica_set
            )
        self.replication = replication
        # Fast-path writes (one shard) share this lock; a cross-shard
        # transaction takes it exclusively. Reads never touch it.
        self._coordinator = ReadWriteLock()
        self._txn_counter = itertools.count(1)
        self._txn_lock = threading.Lock()
        #: Optional (stage, shard_id) hook for crash-point tests;
        #: forwarded to :func:`two_phase_apply`.
        self.failpoint = None
        self.recovery = self.recover()

    # -- shard access --------------------------------------------------------

    @property
    def shards(self) -> Tuple[Shard, ...]:
        return tuple(self._shards[i] for i in range(self.num_shards))

    def shard(self, shard_id: int) -> Shard:
        return self._shards[shard_id]

    def owner_of(self, name: str, key: Sequence[Any]) -> int:
        """The shard owning the instance with object key ``key``."""
        self._object_of(name)  # validates the object exists
        return self.router.shard_of(tuple(key))

    def describe(self) -> str:
        return f"{self.router.describe()} over {self.placement.describe()}"

    def _object_of(self, name: str):
        return self._shards[0].penguin.object(name)

    # -- definition-time fan-out --------------------------------------------

    def _fan_out(self, call) -> List[Any]:
        """Apply a definition-time call to every stack (primaries first
        within each shard, then replicas); returns the primaries'
        results, one per shard."""
        results = []
        for shard in self.shards:
            for index, serving in enumerate(shard.each_serving()):
                result = call(serving)
                if index == 0:
                    results.append(result)
        return results

    def define_object(self, *args: Any, **kwargs: Any):
        """Define the object on every shard (and every replica stack);
        returns shard 0's definition."""
        return self._fan_out(
            lambda serving: serving.define_object(*args, **kwargs)
        )[0]

    def register_object(self, view_object) -> None:
        self._fan_out(
            lambda serving: serving.register_object(view_object)
        )

    def choose_translator(self, name: str, answers=None):
        """Run the dialog once per shard with identical answers, so every
        shard binds the same translator; returns shard 0's result."""
        return self._fan_out(
            lambda serving: serving.choose_translator(name, answers)
        )[0]

    def set_policy(self, name: str, policy):
        return self._fan_out(
            lambda serving: serving.set_policy(name, policy)
        )[0]

    def materialize(self, name: str, policy: Optional[str] = None):
        return self._fan_out(
            lambda serving: serving.materialize(name, policy)
        )

    def dematerialize(self, name: str) -> None:
        self._fan_out(lambda serving: serving.dematerialize(name))

    @property
    def object_names(self) -> Tuple[str, ...]:
        return self._shards[0].penguin.object_names

    def risk_summary(self):
        # Every shard binds the same objects with the same policy, so
        # shard 0's strategy risk is the deployment's.
        return self._shards[0].penguin.risk_summary()

    # -- base-data loading ---------------------------------------------------

    def seed_insert(
        self, relation: str, values: Union[Mapping[str, Any], Sequence[Any]]
    ) -> None:
        """Route one base-relation insert during initial data loading.

        Partitioned rows land on their owning shard; replicated rows
        land on every shard. Replica stacks receive every row their
        shard does, so replication starts from an identical baseline.
        This is the loading path only — steady state writes go through
        the view-object operations.
        """
        if self.placement.is_partitioned(relation):
            if isinstance(values, Mapping):
                routing = tuple(
                    values[attr] for attr in self.placement.partition_attrs
                )
            else:
                routing = self.placement.routing_key_of_values(
                    relation, values
                )
            targets = [self._shards[self.router.shard_of(routing)]]
        else:
            targets = list(self.shards)
        for shard in targets:
            for engine in shard.seed_engines():
                engine.insert(relation, values)

    def all_rows(self, relation: str) -> List[Tuple[Any, ...]]:
        """The logical contents of one relation, sorted.

        Partitioned relations are the disjoint union of the shards;
        replicated relations are read from shard 0 (the replicas are
        kept in lockstep — tests assert this invariant separately).
        """
        if self.placement.is_partitioned(relation):
            rows: List[Tuple[Any, ...]] = []
            for shard in self.shards:
                rows.extend(shard.engine.scan(relation))
            return sorted(rows, key=repr)
        return sorted(self._shards[0].engine.scan(relation), key=repr)

    def counts(self) -> Dict[str, int]:
        return {
            name: len(self.all_rows(name))
            for name in self.graph.relation_names
        }

    # -- reads ---------------------------------------------------------------

    def get(self, name: str, key: Sequence[Any]) -> Optional[Instance]:
        return self.get_served(name, key).value

    def get_served(self, name: str, key: Sequence[Any]) -> ServedRead:
        """One instance by object key, with serving metadata attached."""
        owner = self.owner_of(name, key)
        served = self._shards[owner].get_served(name, key)
        served.shard = owner
        return served

    def query(self, name: str, text: Optional[str] = None) -> List[Instance]:
        return self.query_served(name, text).value

    def query_served(
        self, name: str, text: Optional[str] = None
    ) -> ServedRead:
        """Scatter the query to every shard and merge, deterministically.

        Instances are rooted at pivot tuples, which are partitioned, so
        per-shard results are disjoint; the merge sorts by object key.
        The merged read is marked stale if *any* shard answered stale.
        """
        merged: List[Instance] = []
        stale = False
        staleness = None
        for shard in self.shards:
            served = shard.query_served(name, text)
            merged.extend(served.value)
            if served.stale:
                stale = True
                if served.staleness is not None:
                    staleness = max(staleness or 0.0, served.staleness)
        merged.sort(key=lambda instance: repr(instance.key))
        return ServedRead(
            value=merged,
            stale=stale,
            shard=None,
            staleness=staleness,
            object_name=name,
        )

    # -- writes --------------------------------------------------------------

    def insert(
        self, name: str, instance: Union[Instance, Mapping]
    ) -> UpdatePlan:
        coerced = self._coerce(name, instance)
        return self._update(name, "insert", CompleteInsertion(coerced))

    def delete(
        self,
        name: str,
        key_or_instance: Union[Instance, Mapping, Sequence[Any]],
    ) -> UpdatePlan:
        return self._update(
            name, "delete", CompleteDeletion(key_or_instance)
        )

    def replace(
        self,
        name: str,
        old: Union[Instance, Mapping, Sequence[Any]],
        new: Union[Instance, Mapping],
    ) -> UpdatePlan:
        return self._update(
            name, "replace", Replacement(old, self._coerce(name, new))
        )

    def insert_many(
        self, name: str, instances: Iterable[Union[Instance, Mapping]]
    ) -> UpdatePlan:
        requests = [
            CompleteInsertion(self._coerce(name, instance))
            for instance in instances
        ]
        return self.apply_plan_batch(name, requests, op="insert")

    def delete_many(
        self,
        name: str,
        keys_or_instances: Iterable[Union[Instance, Mapping, Sequence[Any]]],
    ) -> UpdatePlan:
        requests = [
            CompleteDeletion(item) for item in keys_or_instances
        ]
        return self.apply_plan_batch(name, requests, op="delete")

    def apply_plan_batch(
        self,
        name: str,
        requests: Iterable[UpdateRequest],
        op: str = "batch",
    ) -> UpdatePlan:
        """Apply a mixed batch, grouped by owning shard.

        Each owner group is translated and applied as one atomic
        coalesced plan on its shard (the PR-2 bulk path); groups for
        different shards are independent units. A request whose plan
        itself crosses shards still escalates to the coordinator.
        """
        groups: Dict[int, List[UpdateRequest]] = {}
        for request in requests:
            groups.setdefault(self._route_request(name, request), []).append(
                request
            )
        combined = UpdatePlan()
        for owner_id in sorted(groups):
            combined.extend(
                self._update(name, op, groups[owner_id], owner_id=owner_id)
            )
        return combined

    def delete_where(self, name: str, query: str) -> UpdatePlan:
        """Delete every matching instance; each owner shard's matches are
        one atomic batch (no cross-shard atomicity between groups)."""
        matches = self.query(name, query)
        return self.delete_many(name, matches) if matches else UpdatePlan()

    def update_where(self, name: str, query: str, transform) -> UpdatePlan:
        combined = UpdatePlan()
        for instance in self.query(name, query):
            combined.extend(
                self.replace(name, instance, transform(instance.to_dict()))
            )
        return combined

    # -- the write pipeline --------------------------------------------------

    def _coerce(
        self, name: str, instance: Union[Instance, Mapping]
    ) -> Instance:
        if isinstance(instance, Instance):
            return instance
        return build_instance(self._object_of(name), instance)

    def _route_request(self, name: str, request: UpdateRequest) -> int:
        """The shard that must translate this request (its pivot owner)."""
        if isinstance(request, Replacement):
            anchor = request.old
        else:
            anchor = request.instance
        if isinstance(anchor, Instance):
            key = anchor.key
        elif isinstance(anchor, Mapping):
            key = self._coerce(name, anchor).key
        else:  # a raw object key
            key = tuple(anchor)
        return self.router.shard_of(key)

    def _update(
        self,
        name: str,
        op: str,
        request_or_batch: Union[UpdateRequest, List[UpdateRequest]],
        owner_id: Optional[int] = None,
    ) -> UpdatePlan:
        requests = (
            request_or_batch
            if isinstance(request_or_batch, list)
            else [request_or_batch]
        )
        if owner_id is None:
            owner_id = self._route_request(name, requests[0])
        owner = self._shards[owner_id]

        # Fast path: translate on the owner and, if the plan stays on a
        # single shard, apply it there under the shared coordinator
        # mode — concurrent fast-path writes on other shards proceed.
        with self._coordinator.read_locked():
            explanation = self._explain_on(owner, name, op, requests)
            split = partition_plan(
                explanation.coalesced, self.placement, self.router
            )
            if len(split) <= 1:
                return self._apply_local(
                    owner_id if not split else next(iter(split)),
                    name,
                    op,
                    split,
                    explanation,
                    len(requests),
                )

        # Cross-shard: retranslate under the exclusive coordinator mode
        # (the first explanation may be stale by the time we get here)
        # and hand the split to the two-phase protocol.
        with self._coordinator.write_locked():
            explanation = self._explain_on(owner, name, op, requests)
            split = partition_plan(
                explanation.coalesced, self.placement, self.router
            )
            if len(split) <= 1:
                return self._apply_local(
                    owner_id if not split else next(iter(split)),
                    name,
                    op,
                    split,
                    explanation,
                    len(requests),
                )
            return self._apply_cross_shard(
                owner_id, name, op, explanation, split, len(requests)
            )

    def _explain_on(
        self, owner: Shard, name: str, op: str, requests: List[UpdateRequest]
    ) -> TranslationExplanation:
        """Side-effect-free translation on the owner shard.

        Runs the full pipeline (validation, policy checks, propagation)
        over a buffer; a rejection raises here and is audited on the
        owner exactly as a single-engine session would audit it.
        """
        translator = owner.penguin.translator(name)
        try:
            with owner.lock.read_locked():
                return translator.explain_batch(owner.engine, requests)
        except Exception as exc:
            obs.metrics().counter(
                "shard_updates_total",
                outcome="rejected",
                shard=str(owner.shard_id),
            ).inc()
            audit = owner.penguin.audit
            if audit is not None:
                translator._audit(
                    audit, op, AUDIT_ROLLED_BACK,
                    items=len(requests), error=exc,
                )
            raise

    def _apply_local(
        self,
        shard_id: int,
        name: str,
        op: str,
        split: Dict[int, UpdatePlan],
        explanation: TranslationExplanation,
        items: int,
    ) -> UpdatePlan:
        plan = split.get(shard_id, explanation.coalesced)
        result = self._shards[shard_id].apply_plan(
            name, plan, op=op, items=items
        )
        obs.metrics().counter(
            "shard_updates_total", outcome="local", shard=str(shard_id)
        ).inc()
        return result

    def _apply_cross_shard(
        self,
        owner_id: int,
        name: str,
        op: str,
        explanation: TranslationExplanation,
        split: Dict[int, UpdatePlan],
        items: int,
    ) -> UpdatePlan:
        owner = self._shards[owner_id]
        for shard_id in sorted(split):
            shard = self._shards[shard_id]
            if not shard.serving.breaker.allow():
                owner.serving._audit_refusal(op, name)
                raise DegradedServiceError(
                    f"shard {shard_id} is degraded: cross-shard update "
                    f"refused"
                )
            if (
                shard.replica_set is not None
                and not shard.replica_set.quorum_reachable()
            ):
                owner.serving._audit_refusal(op, name)
                raise ReplicationQuorumError(
                    f"shard {shard_id} cannot reach its replication "
                    f"quorum: cross-shard update refused"
                )
        with self._txn_lock:
            txn_id = f"txn{next(self._txn_counter)}"
        # Before-images for the audit record, read before anything is
        # applied (replicated cells appear once per shard with
        # identical images, so the union is well defined).
        images: Dict[Tuple[str, Tuple[Any, ...]], Any] = {}
        for shard_id in sorted(split):
            images.update(
                plan_images(self._shards[shard_id].engine, split[shard_id])
            )
        translator = owner.penguin.translator(name)
        audit = owner.penguin.audit

        # With replication attached, each participant's replicas must
        # receive exactly that participant's sub-plan — shipped after
        # the apply phase, before the commit markers, so a quorum
        # failure aborts through the ordinary 2PC inline-abort path.
        post_apply = None
        if any(self._shards[sid].replica_set is not None for sid in split):

            def post_apply(images_by_shard):
                shipped: List[int] = []
                try:
                    for sid in sorted(split):
                        replica_set = self._shards[sid].replica_set
                        if replica_set is None:
                            continue
                        replica_set.ship_record(
                            ShippedRecord.from_plan(
                                op, name, split[sid],
                                images_by_shard[sid], items=items,
                            )
                        )
                        shipped.append(sid)
                except Exception:
                    for sid in shipped:
                        self._shards[sid].replica_set.retract_last()
                    raise

        try:
            two_phase_apply(
                self._shards, split, txn_id, failpoint=self.failpoint,
                post_apply=post_apply,
            )
        except Exception as exc:
            if audit is not None:
                translator._audit(
                    audit, op, AUDIT_ROLLED_BACK,
                    plan=explanation.coalesced, items=items, error=exc,
                )
            obs.metrics().counter(
                "shard_updates_total", outcome="aborted", shard=str(owner_id)
            ).inc()
            raise
        if audit is not None:
            asn = translator._audit(
                audit, op, AUDIT_COMMITTED,
                plan=explanation.coalesced, images=images, items=items,
            )
            if owner.replica_set is not None:
                # The owner's replicas already got their sub-plan above;
                # the full-plan owner audit record must not ship too.
                owner.replica_set.skip_externally_shipped(asn)
        obs.metrics().counter(
            "shard_updates_total", outcome="cross_shard", shard=str(owner_id)
        ).inc()
        return explanation.coalesced

    # -- recovery ------------------------------------------------------------

    def recover(self) -> ShardedRecovery:
        """Two-phase recovery first, then each shard's standard recovery.

        Idempotent; safe to call after a simulated crash left journals
        pending. The ordering is load-bearing — see
        :func:`repro.shard.twophase.recover_two_phase`.
        """
        two_phase = recover_two_phase(self._shards)
        shard_reports = {
            shard_id: shard.penguin.recover()
            for shard_id, shard in self._shards.items()
        }
        return ShardedRecovery(two_phase, shard_reports)

    # -- health & observability ---------------------------------------------

    def health(self) -> Dict[str, Any]:
        per_shard = {
            str(shard_id): shard.serving.health()
            for shard_id, shard in self._shards.items()
        }
        out = {
            "shards": per_shard,
            "num_shards": self.num_shards,
            "router": self.router.describe(),
            "degraded": [
                shard_id
                for shard_id, shard in self._shards.items()
                if shard.serving.breaker.degraded
            ],
        }
        if self.replication is not None:
            out["replication"] = {
                str(shard_id): shard.replica_set.health()
                for shard_id, shard in self._shards.items()
                if shard.replica_set is not None
            }
        return out

    def close(self) -> None:
        """Stop replica applier threads (no-op without replication)."""
        for shard in self.shards:
            if shard.replica_set is not None:
                shard.replica_set.close()

    def audit_outcomes(self) -> List[Tuple[str, str]]:
        """Every shard's audited (op, outcome) pairs, sorted.

        The equivalence oracle: on identical workloads this multiset
        matches a single-engine session's, regardless of which shard
        audited each update.
        """
        outcomes: List[Tuple[str, str]] = []
        for shard in self.shards:
            audit = shard.penguin.audit
            if audit is None:
                continue
            outcomes.extend(
                (record.op, record.outcome) for record in audit.records()
            )
        return sorted(outcomes)

    def metrics_text(self, component: Optional[str] = None) -> str:
        """The cluster-wide merged exposition (every shard + replica)."""
        from repro.obs.cluster import ClusterMetrics

        return ClusterMetrics().render_text(component)

    def metrics_snapshot(
        self, component: Optional[str] = None
    ) -> Dict[str, Any]:
        from repro.obs.cluster import ClusterMetrics

        return ClusterMetrics().snapshot(component)

    def attach_flight_recorder(self, recorder) -> None:
        """Register every stack's audit tail as a bundle section and
        install the recorder on the active hub."""
        for shard_id, shard in self._shards.items():
            audit = shard.serving.penguin.audit
            if audit is not None:
                recorder.add_audit_source(f"audit/shard{shard_id}", audit)
            if shard.replica_set is not None:
                for replica in shard.replica_set.replicas:
                    if replica.audit is not None:
                        recorder.add_audit_source(
                            f"audit/shard{shard_id}/{replica.name}",
                            replica.audit,
                        )
        recorder.install()

    def cache_stats(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        return {
            str(shard_id): shard.serving.cache_stats()
            for shard_id, shard in self._shards.items()
        }

    def check_integrity(self) -> List[Any]:
        violations: List[Any] = []
        for shard in self.shards:
            violations.extend(shard.serving.check_integrity())
        return violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedPenguin(shards={self.num_shards}, "
            f"partition_by={self.placement.partition_by!r})"
        )


class _ShardedLoaderAdapter:
    """Engine-shaped routing adapter for the ``populate_*`` generators.

    Exposes exactly the surface those generators use (``insert``,
    ``count``, ``has_relation``, ``relation_names``), routing each
    insert through :meth:`ShardedPenguin.seed_insert` — the same
    deterministic generator then fills a sharded deployment and a
    single engine with identical logical contents.
    """

    def __init__(self, sharded: ShardedPenguin) -> None:
        self._sharded = sharded

    def insert(
        self, relation: str, values: Union[Mapping[str, Any], Sequence[Any]]
    ) -> None:
        self._sharded.seed_insert(relation, values)

    def count(self, relation: str) -> int:
        return len(self._sharded.all_rows(relation))

    def has_relation(self, relation: str) -> bool:
        return self._sharded.shard(0).engine.has_relation(relation)

    def relation_names(self) -> Tuple[str, ...]:
        return self._sharded.shard(0).engine.relation_names()


def sharded_loader(sharded: ShardedPenguin) -> _ShardedLoaderAdapter:
    """An engine-shaped adapter: ``populate_hospital(sharded_loader(sp))``."""
    return _ShardedLoaderAdapter(sharded)
