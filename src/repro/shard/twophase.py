"""Cross-shard atomicity: the plan journal as a two-phase intent log.

Most view-object updates are island-local and run entirely on one
shard. The rare exceptions — a peninsula fix that inserts a missing
referenced tuple (replicated, so every shard must apply it), or a
replacement that re-homes the pivot key to a different shard — span
shard boundaries and need the stronger protocol this module provides.

The coordinator reuses the PR-3 write-ahead
:class:`~repro.relational.journal.PlanJournal` of *each participating
shard* as its intent log, presumed-abort style:

1. **prepare** — every participant's sub-plan and before/after images
   are journaled ``PENDING`` under the label
   ``2pc:<txn>:<participants>:<shard>`` (nothing applied yet);
2. **apply** — each sub-plan is applied through the shard engine's
   batched transaction path;
3. **commit** — each entry is marked ``COMMITTED``.

Crash recovery (:func:`recover_two_phase`) groups the surviving
``PENDING`` 2PC entries by transaction and decides from the labels
alone: a transaction whose *every* participant journaled an intent had
finished its prepare phase — roll all participants **forward** to
their after-images; any transaction missing a participant's intent
never finished preparing — roll every survivor **back** to its
before-images. Either way the multi-shard update ends all-applied or
all-reverted, never torn, and re-running recovery is a no-op.

An ordinary *failure* mid-apply (duplicate key on the target shard,
say) aborts the transaction inline: already-applied participants are
reverted via their journaled images and every entry is marked
``ABORTED`` before the error is re-raised.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import repro.obs as obs
from repro.errors import JournalError
from repro.relational.journal import (
    ABORTED,
    COMMITTED,
    PENDING,
    Images,
    JournalEntry,
    plan_images,
)
from repro.relational.operations import UpdatePlan

__all__ = [
    "TWO_PHASE_PREFIX",
    "two_phase_apply",
    "recover_two_phase",
    "TwoPhaseRecoveryReport",
    "twophase_label",
    "parse_twophase_label",
]

TWO_PHASE_PREFIX = "2pc:"

#: Failpoint hook: called with (stage, shard_id) immediately *before*
#: each prepare/apply/commit step; raising from it models a coordinator
#: crash at that point (the crash-point sweep drives this).
Failpoint = Callable[[str, int], None]


def twophase_label(txn_id: str, participants: int, shard_id: int) -> str:
    if ":" in txn_id:
        raise ValueError(f"transaction id must not contain ':': {txn_id!r}")
    return f"{TWO_PHASE_PREFIX}{txn_id}:{participants}:{shard_id}"


def parse_twophase_label(label: str) -> Optional[Tuple[str, int, int]]:
    """(txn_id, participants, shard_id), or None for a non-2PC label."""
    if not label.startswith(TWO_PHASE_PREFIX):
        return None
    parts = label[len(TWO_PHASE_PREFIX):].split(":")
    if len(parts) != 3:
        raise JournalError(f"malformed two-phase label {label!r}")
    txn_id, participants, shard_id = parts
    return txn_id, int(participants), int(shard_id)


def _force_images(
    engine, images: Images, to_after: bool
) -> List[Tuple[str, Tuple[Any, ...]]]:
    """Drive every journaled cell to its before- or after-image.

    A 2PC sub-plan is coalesced, so each cell is touched by at most one
    operation and legitimately holds either its before- or after-image;
    a cell matching neither was overwritten by someone else after the
    crash — it is left alone and reported as a conflict rather than
    clobbered (mirroring single-shard recovery).
    """
    conflicts: List[Tuple[str, Tuple[Any, ...]]] = []
    engine.begin()
    try:
        for (relation, key), (before, after) in images.items():
            target = after if to_after else before
            current = engine.get(relation, key)
            if current == target:
                continue
            if current not in (before, after):
                conflicts.append((relation, key))
                continue
            if target is None:
                engine.delete(relation, key)
            elif current is None:
                engine.insert(relation, target)
            else:
                engine.replace(relation, key, target)
    except Exception:
        engine.rollback()
        raise
    engine.commit()
    return conflicts


def two_phase_apply(
    participants: Mapping[int, Any],
    split: Mapping[int, UpdatePlan],
    txn_id: str,
    failpoint: Optional[Failpoint] = None,
    post_apply: Optional[Callable[[Dict[int, Images]], None]] = None,
) -> Dict[int, int]:
    """Apply a partitioned plan atomically across its shards.

    ``participants`` maps shard id to an object exposing ``engine``,
    ``journal``, and a ``lock`` with ``write_locked()`` (the
    :class:`~repro.shard.sharded.Shard` wrapper); ``split`` maps the
    same ids to their sub-plans. Returns the journal entry id per
    shard. Shard locks are taken in id order (a global order, so two
    coordinators can never deadlock) and held across all three phases.

    ``post_apply`` runs after every sub-plan has applied but *before*
    the commit markers, with the per-shard before/after images; raising
    from it aborts the transaction through the ordinary inline-abort
    path (applied participants reverted, every entry marked ABORTED).
    The replication layer uses it to ship each participant's sub-plan
    and enforce "commit on the replication quorum or abort".
    """
    order = sorted(split)
    registry = obs.metrics()

    def checkpoint(stage: str, shard_id: int) -> None:
        if failpoint is not None:
            failpoint(stage, shard_id)

    with obs.tracer().span(
        "shard.two_phase", txn=txn_id, shards=len(order)
    ) as span:
        with ExitStack() as stack:
            for shard_id in order:
                stack.enter_context(participants[shard_id].lock.write_locked())

            # Phase 1: journal every participant's intent (nothing applied).
            entry_ids: Dict[int, int] = {}
            images_by_shard: Dict[int, Images] = {}
            for shard_id in order:
                checkpoint("prepare", shard_id)
                shard = participants[shard_id]
                with obs.tracer().span(
                    "2pc.prepare", txn=txn_id, shard=shard_id
                ):
                    images = plan_images(shard.engine, split[shard_id])
                    images_by_shard[shard_id] = images
                    entry_ids[shard_id] = shard.journal.begin(
                        split[shard_id],
                        images,
                        label=twophase_label(txn_id, len(order), shard_id),
                    )

            # Phase 2: apply. An ordinary failure aborts the whole
            # transaction — applied participants are reverted via their
            # journaled images; a BaseException (crash) leaves every
            # entry PENDING for recover_two_phase.
            applied: List[int] = []
            try:
                for shard_id in order:
                    checkpoint("apply", shard_id)
                    shard = participants[shard_id]
                    with obs.tracer().span(
                        "2pc.apply",
                        txn=txn_id,
                        shard=shard_id,
                        ops=len(split[shard_id].operations),
                    ):
                        shard.engine.apply_batch(split[shard_id].operations)
                    applied.append(shard_id)
                if post_apply is not None:
                    checkpoint("replicate", -1)
                    post_apply(images_by_shard)
            except Exception:
                for shard_id in applied:
                    _force_images(
                        participants[shard_id].engine,
                        images_by_shard[shard_id],
                        to_after=False,
                    )
                for shard_id in order:
                    participants[shard_id].journal.mark_aborted(
                        entry_ids[shard_id]
                    )
                registry.counter("shard_txns_total", outcome="aborted").inc()
                raise

            # Phase 3: commit markers.
            for shard_id in order:
                checkpoint("commit", shard_id)
                participants[shard_id].journal.mark_committed(
                    entry_ids[shard_id]
                )
        span.set(shards=len(order))
    registry.counter("shard_txns_total", outcome="committed").inc()
    return entry_ids


class TwoPhaseRecoveryReport:
    """What :func:`recover_two_phase` decided for each interrupted txn."""

    def __init__(self) -> None:
        self.rolled_forward: List[str] = []
        self.rolled_back: List[str] = []
        self.conflicts: List[Tuple[str, int, str, Tuple[Any, ...]]] = []

    @property
    def resolved(self) -> int:
        return len(self.rolled_forward) + len(self.rolled_back)

    @property
    def clean(self) -> bool:
        return not self.conflicts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rolled_forward": list(self.rolled_forward),
            "rolled_back": list(self.rolled_back),
            "conflicts": list(self.conflicts),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TwoPhaseRecoveryReport(forward={len(self.rolled_forward)}, "
            f"back={len(self.rolled_back)}, "
            f"conflicts={len(self.conflicts)})"
        )


def recover_two_phase(
    participants: Mapping[int, Any]
) -> TwoPhaseRecoveryReport:
    """Resolve every interrupted cross-shard transaction, idempotently.

    Must run *before* per-shard :func:`~repro.relational.journal.recover`
    — single-shard recovery resolves each entry in isolation and would
    tear a half-applied multi-shard transaction (committing the shard
    that applied, reverting the one that did not). This pass settles
    the ``2pc:``-labelled entries globally first; whatever is still
    pending afterwards is genuinely shard-local.
    """
    report = TwoPhaseRecoveryReport()

    for shard in participants.values():
        while getattr(shard.engine, "in_transaction", False):
            shard.engine.rollback()

    # Group every 2PC entry — resolved siblings included: a COMMITTED
    # entry on one shard proves the transaction passed its commit point
    # before the crash, so a sibling still PENDING elsewhere must roll
    # forward even though its own journal alone could not tell.
    # txn_id -> (declared participant count, {shard_id: entry})
    groups: Dict[str, Tuple[int, Dict[int, JournalEntry]]] = {}
    for shard_id, shard in participants.items():
        for entry in shard.journal.entries():
            parsed = parse_twophase_label(entry.label)
            if parsed is None:
                continue
            txn_id, declared, entry_shard = parsed
            if entry_shard != shard_id:
                raise JournalError(
                    f"two-phase entry for shard {entry_shard} found in "
                    f"shard {shard_id}'s journal"
                )
            count, members = groups.setdefault(txn_id, (declared, {}))
            if declared != count:
                raise JournalError(
                    f"transaction {txn_id!r}: inconsistent participant "
                    f"counts {count} vs {declared}"
                )
            members[shard_id] = entry

    for txn_id in sorted(groups):
        declared, members = groups[txn_id]
        statuses = {entry.status for entry in members.values()}
        if PENDING not in statuses:
            continue  # fully settled in a previous pass
        if COMMITTED in statuses:
            commit = True  # a commit marker survived: past the commit point
        elif ABORTED in statuses:
            commit = False  # an inline abort was interrupted mid-markdown
        else:
            # All intents still pending: commit iff every declared
            # participant got its intent journaled (prepare finished).
            commit = len(members) == declared
        for shard_id in sorted(members):
            entry = members[shard_id]
            if entry.status != PENDING:
                continue
            shard = participants[shard_id]
            conflicts = _force_images(
                shard.engine, entry.images(), to_after=commit
            )
            for relation, key in conflicts:
                report.conflicts.append((txn_id, shard_id, relation, key))
            if commit:
                shard.journal.mark_committed(entry.entry_id)
            else:
                shard.journal.mark_aborted(entry.entry_id)
        if commit:
            report.rolled_forward.append(txn_id)
        else:
            report.rolled_back.append(txn_id)

    if report.conflicts:
        obs.anomaly(
            "torn_recovery",
            conflicts=len(report.conflicts),
            transactions=sorted({c[0] for c in report.conflicts}),
        )
    registry = obs.metrics()
    registry.counter("shard_recoveries_total").inc()
    registry.counter("shard_txns_rolled_forward_total").inc(
        len(report.rolled_forward)
    )
    registry.counter("shard_txns_rolled_back_total").inc(
        len(report.rolled_back)
    )
    return report
