"""Horizontal partitioning: routing, placement, and the sharded facade.

The paper's island-local translation makes base relations naturally
partitionable by pivot key — see :mod:`repro.shard.router` for the
placement rule, :mod:`repro.shard.sharded` for the N-engine facade,
and :mod:`repro.shard.twophase` for the cross-shard atomicity
protocol built on the write-ahead plan journal.
"""

from repro.shard.router import (
    HashRouter,
    Placement,
    RangeRouter,
    Router,
    partition_plan,
    stable_hash,
)
from repro.shard.sharded import (
    Shard,
    ShardedPenguin,
    ShardedRecovery,
    sharded_loader,
)
from repro.shard.twophase import (
    TwoPhaseRecoveryReport,
    recover_two_phase,
    two_phase_apply,
)

__all__ = [
    "HashRouter",
    "Placement",
    "RangeRouter",
    "Router",
    "Shard",
    "ShardedPenguin",
    "ShardedRecovery",
    "TwoPhaseRecoveryReport",
    "partition_plan",
    "recover_two_phase",
    "sharded_loader",
    "stable_hash",
    "two_phase_apply",
]
