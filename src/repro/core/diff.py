"""Structural diff of two view-object instances.

``diff_instances`` reports, per tree node, which component tuples a
replacement would add, remove, or modify — the object-level view of
what VO-R is about to translate. The alignment mirrors the translation
algorithm's: by key first, leftovers pairwise, so a key change shows as
one ``rekeyed`` entry rather than an add/remove pair.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ViewObjectError
from repro.core.instance import ComponentTuple, Instance
from repro.core.view_object import ViewObjectDefinition

__all__ = ["ComponentChange", "diff_instances", "render_diff"]


class ComponentChange:
    """One difference at one node."""

    __slots__ = ("node_id", "kind", "key", "new_key", "changes")

    def __init__(
        self,
        node_id: str,
        kind: str,  # added | removed | modified | rekeyed
        key: Tuple[Any, ...],
        new_key: Optional[Tuple[Any, ...]] = None,
        changes: Optional[Dict[str, Tuple[Any, Any]]] = None,
    ) -> None:
        self.node_id = node_id
        self.kind = kind
        self.key = key
        self.new_key = new_key
        self.changes = changes or {}

    def describe(self) -> str:
        if self.kind == "added":
            return f"{self.node_id}: + {self.key!r}"
        if self.kind == "removed":
            return f"{self.node_id}: - {self.key!r}"
        if self.kind == "rekeyed":
            extra = _render_changes(self.changes)
            return (
                f"{self.node_id}: {self.key!r} => {self.new_key!r}{extra}"
            )
        return f"{self.node_id}: ~ {self.key!r}{_render_changes(self.changes)}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentChange({self.describe()})"


def _render_changes(changes: Dict[str, Tuple[Any, Any]]) -> str:
    if not changes:
        return ""
    parts = [
        f"{name}: {old!r} -> {new!r}" for name, (old, new) in changes.items()
    ]
    return "  (" + ", ".join(parts) + ")"


def _key_of(
    view_object: ViewObjectDefinition, component: ComponentTuple
) -> Tuple[Any, ...]:
    node = view_object.node(component.node_id)
    schema = view_object.graph.relation(node.relation)
    return tuple(component.values.get(k) for k in schema.key)


def _changed_attributes(
    old: ComponentTuple, new: ComponentTuple
) -> Dict[str, Tuple[Any, Any]]:
    changed = {}
    for name in new.values:
        if old.values.get(name) != new.values.get(name):
            changed[name] = (old.values.get(name), new.values.get(name))
    return changed


def diff_instances(old: Instance, new: Instance) -> List[ComponentChange]:
    """All component-level differences, in BFS node order."""
    if old.view_object is not new.view_object and (
        old.view_object.name != new.view_object.name
    ):
        raise ViewObjectError(
            "cannot diff instances of different view objects "
            f"({old.view_object.name!r} vs {new.view_object.name!r})"
        )
    view_object = old.view_object
    result: List[ComponentChange] = []

    def walk(
        node_id: str,
        old_components: List[ComponentTuple],
        new_components: List[ComponentTuple],
    ) -> None:
        old_by_key = {
            _key_of(view_object, c): c for c in old_components
        }
        unmatched_new: List[ComponentTuple] = []
        pairs: List[Tuple[ComponentTuple, ComponentTuple]] = []
        for component in new_components:
            key = _key_of(view_object, component)
            match = old_by_key.pop(key, None)
            if match is None:
                unmatched_new.append(component)
            else:
                pairs.append((match, component))
        leftovers_old = list(old_by_key.values())
        while leftovers_old and unmatched_new:
            old_component = leftovers_old.pop(0)
            new_component = unmatched_new.pop(0)
            result.append(
                ComponentChange(
                    node_id,
                    "rekeyed",
                    _key_of(view_object, old_component),
                    new_key=_key_of(view_object, new_component),
                    changes=_changed_attributes(old_component, new_component),
                )
            )
            pairs.append((old_component, new_component))
        for old_component in leftovers_old:
            result.append(
                ComponentChange(
                    node_id, "removed", _key_of(view_object, old_component)
                )
            )
        for new_component in unmatched_new:
            result.append(
                ComponentChange(
                    node_id, "added", _key_of(view_object, new_component)
                )
            )
        for old_component, new_component in pairs:
            if (
                _key_of(view_object, old_component)
                == _key_of(view_object, new_component)
            ):
                changed = _changed_attributes(old_component, new_component)
                if changed:
                    result.append(
                        ComponentChange(
                            node_id,
                            "modified",
                            _key_of(view_object, old_component),
                            changes=changed,
                        )
                    )
            for child in view_object.tree.children(node_id):
                walk(
                    child.node_id,
                    old_component.child_tuples(child.node_id),
                    new_component.child_tuples(child.node_id),
                )

    walk(view_object.pivot_node_id, [old.root], [new.root])
    return result


def render_diff(changes: List[ComponentChange]) -> str:
    """Multi-line rendering; empty diff renders as '(no changes)'."""
    if not changes:
        return "(no changes)"
    return "\n".join(change.describe() for change in changes)
