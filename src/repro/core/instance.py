"""Hierarchical view-object instances (Figure 4).

An instance binds one pivot tuple plus, for every child node of the
tree, the *set* of connected component tuples — "hierarchical instances
that have atomic-valued, tuple-valued, and set-valued attributes". The
nested-dictionary constructor mirrors the paper's notation::

    (COURSE: CS345 (CURRICULUM: ...) (DEPARTMENT: Computer Science)
     (GRADES: ...) (STUDENT: ...))

becomes::

    omega.new_instance({
        "course_id": "CS345", ...,
        "CURRICULUM": [...],
        "DEPARTMENT": [{"dept_name": "Computer Science", ...}],
        "GRADES": [{..., }],
    })

where child lists are keyed by tree node id and may nest further.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import InstantiationError, ViewObjectError
from repro.core.view_object import ViewObjectDefinition

__all__ = ["ComponentTuple", "Instance", "build_instance"]


class ComponentTuple:
    """One bound tuple at one node, with its child bindings."""

    __slots__ = ("node_id", "values", "children")

    def __init__(
        self,
        node_id: str,
        values: Dict[str, Any],
        children: Optional[Dict[str, List["ComponentTuple"]]] = None,
    ) -> None:
        self.node_id = node_id
        self.values = values
        self.children: Dict[str, List[ComponentTuple]] = children or {}

    def child_tuples(self, child_node_id: str) -> List["ComponentTuple"]:
        return self.children.get(child_node_id, [])

    def __getitem__(self, attribute: str) -> Any:
        return self.values[attribute]

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.values.get(attribute, default)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ComponentTuple)
            and other.node_id == self.node_id
            and other.values == self.values
            and other.children == self.children
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentTuple({self.node_id!r}, {self.values!r})"


class Instance:
    """A complete view-object instance: the pivot tuple plus components."""

    __slots__ = ("view_object", "root")

    def __init__(
        self, view_object: ViewObjectDefinition, root: ComponentTuple
    ) -> None:
        if root.node_id != view_object.pivot_node_id:
            raise InstantiationError(
                f"instance root must be the pivot node "
                f"{view_object.pivot_node_id!r}, got {root.node_id!r}"
            )
        self.view_object = view_object
        self.root = root

    @property
    def key(self) -> Tuple[Any, ...]:
        """The object-key value of this instance (K(ω))."""
        return tuple(self.root.values[k] for k in self.view_object.object_key)

    def tuples_at(self, node_id: str) -> List[ComponentTuple]:
        """All bound tuples at ``node_id``, flattened across parents."""
        self.view_object.node(node_id)  # validates
        trail = [
            n.node_id for n in reversed(self.view_object.tree.path_to_root(node_id))
        ]
        current = [self.root]
        for step in trail[1:]:
            nxt: List[ComponentTuple] = []
            for component in current:
                nxt.extend(component.child_tuples(step))
            current = nxt
        return current

    def count_at(self, node_id: str) -> int:
        return len(self.tuples_at(node_id))

    def iter_nodes(self) -> Iterator[Tuple[str, List[ComponentTuple]]]:
        """(node_id, flattened tuples) for every node, BFS order."""
        for node in self.view_object.tree.bfs():
            yield node.node_id, self.tuples_at(node.node_id)

    # -- conversion ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Nested-dictionary form (inverse of ``new_instance``)."""

        def render(component: ComponentTuple) -> Dict[str, Any]:
            out: Dict[str, Any] = dict(component.values)
            for child_id, components in component.children.items():
                out[child_id] = [render(c) for c in components]
            return out

        return render(self.root)

    def describe(self) -> str:
        """Paper-style rendering: ``(COURSES: CS345 (GRADES: ...))``."""

        def render(component: ComponentTuple) -> str:
            node = self.view_object.node(component.node_id)
            schema = self.view_object.graph.relation(node.relation)
            key_values = ", ".join(
                str(component.values.get(k, "?")) for k in schema.key
            )
            parts = [f"({component.node_id}: {key_values}"]
            extras = [
                f"{a}={component.values[a]!r}"
                for a in self.view_object.projection(component.node_id).attributes
                if a not in schema.key
            ]
            if extras:
                parts.append(" [" + ", ".join(extras) + "]")
            for child_id in node.children:
                for child in component.child_tuples(child_id):
                    parts.append(" " + render(child))
            parts.append(")")
            return "".join(parts)

        return render(self.root)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Instance)
            and other.view_object.name == self.view_object.name
            and other.root == self.root
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({self.view_object.name!r}, key={self.key!r})"


def build_instance(
    view_object: ViewObjectDefinition, data: Mapping[str, Any]
) -> Instance:
    """Build an :class:`Instance` from nested dictionaries.

    Attribute keys must match each node's projection exactly; child
    lists are keyed by child node id and default to empty.
    """

    def build_component(node_id: str, payload: Mapping[str, Any]) -> ComponentTuple:
        node = view_object.node(node_id)
        projection = view_object.projection(node_id)
        child_ids = set(node.children)
        values: Dict[str, Any] = {}
        children: Dict[str, List[ComponentTuple]] = {}
        for key, value in payload.items():
            if key in child_ids:
                if not isinstance(value, (list, tuple)):
                    raise ViewObjectError(
                        f"component {node_id!r}: child {key!r} must be a "
                        f"list of tuples"
                    )
                children[key] = [
                    build_component(key, element) for element in value
                ]
            elif key in projection.attributes:
                values[key] = value
            else:
                raise ViewObjectError(
                    f"component {node_id!r}: {key!r} is neither a projected "
                    f"attribute nor a child node of {node_id!r}"
                )
        missing = [a for a in projection.attributes if a not in values]
        if missing:
            raise ViewObjectError(
                f"component {node_id!r}: missing values for projected "
                f"attributes {missing!r}"
            )
        for child_id in child_ids:
            children.setdefault(child_id, [])
        return ComponentTuple(node_id, values, children)

    root = build_component(view_object.pivot_node_id, data)
    return Instance(view_object, root)
