"""Projections — the building blocks of view objects (Definition 3.1).

A view object is "a nonempty element of Set(Π)", where Π is the domain
of projections over base relations and ``d(π)`` names the relation a
projection is defined on. :class:`Projection` is that π: a relation name
plus an ordered tuple of retained attributes.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ProjectionError
from repro.relational.schema import RelationSchema

__all__ = ["Projection"]


class Projection:
    """A projection π with ``d(π) = relation``."""

    __slots__ = ("relation", "attributes")

    def __init__(self, relation: str, attributes: Sequence[str]) -> None:
        if not attributes:
            raise ProjectionError(
                f"projection on {relation!r} must keep at least one attribute"
            )
        attributes = tuple(attributes)
        if len(set(attributes)) != len(attributes):
            raise ProjectionError(
                f"projection on {relation!r} repeats an attribute"
            )
        self.relation = relation
        self.attributes = attributes

    def validate_against(self, schema: RelationSchema) -> None:
        """Check the projection fits the relation schema."""
        if schema.name != self.relation:
            raise ProjectionError(
                f"projection targets {self.relation!r} but was validated "
                f"against schema {schema.name!r}"
            )
        for name in self.attributes:
            if not schema.has_attribute(name):
                raise ProjectionError(
                    f"projection on {self.relation!r} keeps unknown "
                    f"attribute {name!r}"
                )

    def includes_key_of(self, schema: RelationSchema) -> bool:
        """True if all of ``K(d(π))`` is retained (Definition 3.2 needs
        this for the pivot projection)."""
        return set(schema.key) <= set(self.attributes)

    def covers(self, names: Sequence[str]) -> bool:
        return set(names) <= set(self.attributes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Projection)
            and other.relation == self.relation
            and other.attributes == self.attributes
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.attributes))

    def __repr__(self) -> str:
        return f"Projection({self.relation}: {', '.join(self.attributes)})"
