"""View-object definitions (Definitions 3.1 and 3.2).

A view object ω is a set of projections arranged into a tree rooted at
the **pivot relation**. Only the definition is stored — "a view object
is an uninstantiated window onto the underlying database". This module
ties together the metric, the tree builder, and the projections, and
enforces the paper's structural conditions:

* exactly one projection is defined on the pivot relation, and it
  retains all of ``K(pivot)`` — the *object key* ``K(ω)``;
* no other projection targets the pivot relation, but non-pivot
  relations may appear several times (copies);
* every projection retains the connecting attributes of the tree edges
  touching its node (otherwise instances could not be assembled or
  mapped back);
* for updatable objects, every projection retains its relation's full
  key so update translation can address database tuples.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PivotError, ProjectionError, ViewObjectError
from repro.core.information_metric import InformationMetric, RelevantSubgraph
from repro.core.projection import Projection
from repro.core.projection_tree import ProjectionTree, TreeNode
from repro.core.tree_builder import build_maximal_tree, prune_tree
from repro.structural.schema_graph import StructuralSchema

__all__ = ["ViewObjectDefinition", "define_view_object"]


class ViewObjectDefinition:
    """ω: a named, pruned tree of projections anchored on a pivot."""

    def __init__(
        self,
        name: str,
        graph: StructuralSchema,
        tree: ProjectionTree,
        projections: Mapping[str, Projection],
        updatable: bool = True,
        subgraph: Optional[RelevantSubgraph] = None,
        maximal_tree: Optional[ProjectionTree] = None,
    ) -> None:
        self.name = name
        self.graph = graph
        self.tree = tree
        self.projections: Dict[str, Projection] = dict(projections)
        self.updatable = updatable
        self.subgraph = subgraph
        self.maximal_tree = maximal_tree
        self._validate()

    # -- Definition 3.1 / 3.2 --------------------------------------------------

    @property
    def pivot_relation(self) -> str:
        """The relation the object is anchored on."""
        return self.tree.root.relation

    @property
    def pivot_node_id(self) -> str:
        return self.tree.root_id

    @property
    def object_key(self) -> Tuple[str, ...]:
        """K(ω) — isomorphic to the key of the pivot relation."""
        return self.graph.relation(self.pivot_relation).key

    @property
    def complexity(self) -> int:
        """The number of projections included in the object."""
        return len(self.projections)

    def projection(self, node_id: str) -> Projection:
        try:
            return self.projections[node_id]
        except KeyError:
            raise ViewObjectError(
                f"view object {self.name!r} has no node {node_id!r}"
            ) from None

    def node(self, node_id: str) -> TreeNode:
        return self.tree.node(node_id)

    def relations(self) -> Tuple[str, ...]:
        """d(ω): the distinct base relations the object draws from."""
        return self.tree.relations()

    # -- validation -----------------------------------------------------------------

    def _validate(self) -> None:
        if set(self.projections) != set(self.tree.node_ids):
            missing = set(self.tree.node_ids) - set(self.projections)
            extra = set(self.projections) - set(self.tree.node_ids)
            raise ViewObjectError(
                f"view object {self.name!r}: projections do not match tree "
                f"nodes (missing={sorted(missing)!r}, extra={sorted(extra)!r})"
            )

        pivot_relation = self.pivot_relation
        pivot_schema = self.graph.relation(pivot_relation)
        pivot_projection = self.projections[self.pivot_node_id]
        if not pivot_projection.includes_key_of(pivot_schema):
            raise PivotError(
                f"view object {self.name!r}: the pivot projection must "
                f"retain all of K({pivot_relation}) = {pivot_schema.key!r}"
            )
        for node_id, projection in self.projections.items():
            node = self.tree.node(node_id)
            if projection.relation != node.relation:
                raise ViewObjectError(
                    f"node {node_id!r} holds relation {node.relation!r} but "
                    f"its projection targets {projection.relation!r}"
                )
            schema = self.graph.relation(node.relation)
            projection.validate_against(schema)
            if node_id != self.pivot_node_id and node.relation == pivot_relation:
                raise PivotError(
                    f"view object {self.name!r}: no projection other than the "
                    f"pivot's may be defined on the pivot relation "
                    f"{pivot_relation!r}"
                )
            if self.updatable and not projection.includes_key_of(schema):
                raise ProjectionError(
                    f"updatable view object {self.name!r}: projection on node "
                    f"{node_id!r} must retain K({node.relation}) = "
                    f"{schema.key!r}"
                )
        self._validate_edge_attributes()

    def _validate_edge_attributes(self) -> None:
        """Each edge's endpoint attributes must be retained by the
        projections on both sides (intermediate relations of composite
        paths are not in the object and impose nothing)."""
        for node in self.tree.nodes():
            if node.path is None:
                continue
            parent = self.tree.node(node.parent_id)
            first = node.path.traversals[0]
            last = node.path.traversals[-1]
            parent_projection = self.projections[parent.node_id]
            child_projection = self.projections[node.node_id]
            if not parent_projection.covers(first.start_attributes):
                raise ProjectionError(
                    f"view object {self.name!r}: projection on "
                    f"{parent.node_id!r} must retain connecting attributes "
                    f"{first.start_attributes!r} of edge to {node.node_id!r}"
                )
            if not child_projection.covers(last.end_attributes):
                raise ProjectionError(
                    f"view object {self.name!r}: projection on "
                    f"{node.node_id!r} must retain connecting attributes "
                    f"{last.end_attributes!r} of edge from {parent.node_id!r}"
                )

    # -- rendering ---------------------------------------------------------------------

    def describe(self) -> str:
        """Indented rendering with selected attributes, Figure 2(c) style."""
        lines: List[str] = [f"view object {self.name!r} (complexity {self.complexity})"]

        def walk(node_id: str, indent: int) -> None:
            node = self.tree.node(node_id)
            attrs = ", ".join(self.projections[node_id].attributes)
            edge = ""
            if node.path is not None:
                edge = node.path.describe()
                edge = f"  via {edge}"
            lines.append("  " * indent + f"{node.node_id} ({attrs}){edge}")
            for child_id in node.children:
                walk(child_id, indent + 1)

        walk(self.pivot_node_id, 1)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ViewObjectDefinition({self.name!r}, pivot={self.pivot_relation!r}, "
            f"complexity={self.complexity})"
        )


def define_view_object(
    graph: StructuralSchema,
    name: str,
    pivot: str,
    selections: Mapping[str, Sequence[str]],
    metric: Optional[InformationMetric] = None,
    updatable: bool = True,
) -> ViewObjectDefinition:
    """The full definition pipeline of Figure 2: metric → tree → pruning.

    ``selections`` maps node ids of the maximal tree (relation names,
    with ``#k`` suffixes for copies) to the attributes their projections
    retain. The pivot node must be among the keys.

    Returns a :class:`ViewObjectDefinition` that keeps the intermediate
    artifacts (``subgraph``, ``maximal_tree``) for inspection — the
    Figure 2 benchmark prints all three stages.
    """
    metric = metric or InformationMetric()
    subgraph = metric.extract_subgraph(graph, pivot)
    maximal = build_maximal_tree(graph, subgraph, metric.weights)
    unknown = [n for n in selections if not maximal.has_node(n)]
    if unknown:
        raise ViewObjectError(
            f"selection names nodes absent from the maximal tree for pivot "
            f"{pivot!r}: {sorted(unknown)!r}; available: "
            f"{sorted(maximal.node_ids)!r}"
        )
    pruned = prune_tree(maximal, selections.keys())
    projections = {
        node_id: Projection(pruned.node(node_id).relation, attributes)
        for node_id, attributes in selections.items()
    }
    return ViewObjectDefinition(
        name,
        graph,
        pruned,
        projections,
        updatable=updatable,
        subgraph=subgraph,
        maximal_tree=maximal,
    )
