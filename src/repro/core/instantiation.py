"""Dynamic instantiation of view objects (Figure 4).

"A query on a view object is composed dynamically with the object's
structure to obtain a relational query that can be executed against the
database. View-object instances are assembled from the set of relational
tuples satisfying the request."

The :class:`Instantiator` binds base tuples into hierarchical instances:
starting from pivot tuples selected by a relational predicate, it walks
every tree edge — including composite multi-connection paths (Figure 3)
— collecting the connected tuples at each node, then projects them onto
the node's projection.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.instance import ComponentTuple, Instance
from repro.core.view_object import ViewObjectDefinition
from repro.relational.engine import Engine
from repro.relational.expressions import Expression, TRUE
from repro.structural.integrity import connected_tuples
from repro.structural.paths import ConnectionPath

__all__ = ["Instantiator"]


class Instantiator:
    """Assembles instances of one view object from an engine."""

    def __init__(self, view_object: ViewObjectDefinition) -> None:
        self.view_object = view_object
        self.graph = view_object.graph

    # -- public API ---------------------------------------------------------------

    def by_key(self, engine: Engine, key: Sequence[Any]) -> Optional[Instance]:
        """The instance whose object key equals ``key``, or ``None``."""
        pivot = self.view_object.pivot_relation
        values = engine.get(pivot, tuple(key))
        if values is None:
            return None
        return self.assemble(engine, values)

    def where(
        self, engine: Engine, predicate: Expression = TRUE
    ) -> List[Instance]:
        """All instances whose pivot tuple satisfies ``predicate``."""
        pivot = self.view_object.pivot_relation
        instances = []
        for values in engine.select(pivot, predicate):
            instances.append(self.assemble(engine, values))
        return instances

    def all(self, engine: Engine) -> List[Instance]:
        return self.where(engine, TRUE)

    # -- assembly -------------------------------------------------------------------

    def assemble(self, engine: Engine, pivot_values: Tuple[Any, ...]) -> Instance:
        """Assemble the instance rooted at one already-fetched pivot tuple.

        Public so callers that select pivot tuples themselves — the
        materialized-view cache re-assembling a single invalidated
        instance, for example — can reuse the walk without a redundant
        key lookup.
        """
        root = self._bind(engine, self.view_object.pivot_node_id, pivot_values)
        return Instance(self.view_object, root)

    def _bind(
        self, engine: Engine, node_id: str, base_values: Tuple[Any, ...]
    ) -> ComponentTuple:
        node = self.view_object.node(node_id)
        schema = self.graph.relation(node.relation)
        projection = self.view_object.projection(node_id)
        values = {
            name: value
            for name, value in zip(
                projection.attributes,
                schema.project(base_values, projection.attributes),
            )
        }
        children: Dict[str, List[ComponentTuple]] = {}
        for child in self.view_object.tree.children(node_id):
            bound = self._follow_path(engine, child.path, base_values)
            children[child.node_id] = [
                self._bind(engine, child.node_id, child_values)
                for child_values in bound
            ]
        return ComponentTuple(node_id, values, children)

    def _follow_path(
        self,
        engine: Engine,
        path: ConnectionPath,
        start_values: Tuple[Any, ...],
    ) -> List[Tuple[Any, ...]]:
        """All tuples at the end of ``path`` connected to ``start_values``.

        Composite paths chain the per-connection matching; duplicates
        (several routes to the same end tuple) collapse by key.
        """
        frontier = [start_values]
        for traversal in path:
            next_frontier: List[Tuple[Any, ...]] = []
            seen = set()
            end_schema = engine.schema(traversal.end)
            for values in frontier:
                for matched in connected_tuples(engine, traversal, values):
                    key = end_schema.key_of(matched)
                    if key in seen:
                        continue
                    seen.add(key)
                    next_frontier.append(matched)
            frontier = next_frontier
            if not frontier:
                break
        return frontier
