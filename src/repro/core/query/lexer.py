"""Tokenizer for the object query language."""

from __future__ import annotations

from typing import Any, List, NamedTuple

from repro.errors import QuerySyntaxError

__all__ = ["Token", "tokenize"]

_OPERATOR_CHARS = "=!<>"
_OPERATORS = {"=", "!=", "<>", "<", "<=", ">", ">="}
_KEYWORDS = {
    "and", "or", "not", "is", "null", "true", "false",
    "count", "min", "max", "sum", "avg", "in", "like",
    "order", "by", "asc", "desc", "limit",
}


class Token(NamedTuple):
    kind: str  # IDENT KEYWORD STRING NUMBER OP LPAREN RPAREN DOT COMMA EOF
    value: Any
    position: int


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_#"


def tokenize(text: str) -> List[Token]:
    """Split query text into tokens; raise on malformed input."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "(":
            tokens.append(Token("LPAREN", "(", index))
            index += 1
        elif ch == ")":
            tokens.append(Token("RPAREN", ")", index))
            index += 1
        elif ch == ".":
            tokens.append(Token("DOT", ".", index))
            index += 1
        elif ch == ",":
            tokens.append(Token("COMMA", ",", index))
            index += 1
        elif ch == "'":
            end = index + 1
            chunks = []
            while True:
                if end >= length:
                    raise QuerySyntaxError(
                        "unterminated string literal", position=index
                    )
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        chunks.append("'")  # doubled quote escapes
                        end += 2
                        continue
                    break
                chunks.append(text[end])
                end += 1
            tokens.append(Token("STRING", "".join(chunks), index))
            index = end + 1
        elif ch in _OPERATOR_CHARS:
            two = text[index : index + 2]
            if two in _OPERATORS:
                tokens.append(Token("OP", "!=" if two == "<>" else two, index))
                index += 2
            elif ch in ("=", "<", ">"):
                tokens.append(Token("OP", ch, index))
                index += 1
            else:
                raise QuerySyntaxError(
                    f"unexpected character {ch!r}", position=index
                )
        elif ch.isdigit() or (
            ch == "-" and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index + 1
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # A dot not followed by a digit belongs to syntax,
                    # not the number.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            raw = text[index:end]
            value = float(raw) if "." in raw else int(raw)
            tokens.append(Token("NUMBER", value, index))
            index = end
        elif _is_ident_start(ch):
            end = index + 1
            while end < length and _is_ident_char(text[end]):
                end += 1
            word = text[index:end]
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(Token("KEYWORD", lowered, index))
            else:
                tokens.append(Token("IDENT", word, index))
            index = end
        else:
            raise QuerySyntaxError(
                f"unexpected character {ch!r}", position=index
            )
    tokens.append(Token("EOF", None, length))
    return tokens
