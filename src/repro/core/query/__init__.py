"""The declarative object query language.

``execute_query(view_object, engine, text)`` is the one-call entry
point: parse, validate, push pivot conditions into the engine, assemble
instances, and filter by the residual condition.
"""

from typing import List

from repro.errors import QueryError

from repro.core.instance import Instance
from repro.core.instantiation import Instantiator
from repro.core.query.ast import (
    QAnd,
    QAttr,
    QCompare,
    QCount,
    QIsNull,
    QLiteral,
    QNot,
    QOr,
    QueryNode,
)
from repro.core.query.evaluator import evaluate, validate_against
from repro.core.query.lexer import Token, tokenize
from repro.core.query.parser import parse_query, parse_statement
from repro.core.query.planner import QueryPlan, plan_query
from repro.core.view_object import ViewObjectDefinition
from repro.relational.engine import Engine

__all__ = [
    "parse_query",
    "plan_query",
    "evaluate",
    "validate_against",
    "execute_query",
    "explain_query",
    "parse_statement",
    "QueryPlan",
    "QueryNode",
    "QAttr",
    "QCount",
    "QLiteral",
    "QCompare",
    "QIsNull",
    "QAnd",
    "QOr",
    "QNot",
    "Token",
    "tokenize",
]


def execute_query(
    view_object: ViewObjectDefinition,
    engine: Engine,
    text: str,
    instantiator=None,
) -> List[Instance]:
    """Run an object query and return the matching instances.

    Statements support ``order by`` (pivot attributes, ``count(NODE)``,
    or aggregates — ascending by default, nulls last ascending) and
    ``limit N``.

    ``instantiator`` overrides how matching pivot tuples become
    instances: any object with ``Instantiator``'s ``where(engine,
    predicate)`` signature works — in particular a
    :class:`~repro.materialize.MaterializedView`, which serves assembly
    from its cache.
    """
    statement = parse_statement(text)
    validate_against(statement.condition, view_object)
    plan = plan_query(statement.condition)
    if instantiator is None:
        instantiator = Instantiator(view_object)
    instances = instantiator.where(engine, plan.pushed)
    if plan.residual is not None:
        instances = [i for i in instances if evaluate(plan.residual, i)]
    if statement.order_by:
        for term in statement.order_by:
            validate_against(term.operand, view_object)
            if isinstance(term.operand, QAttr) and term.operand.node is not None:
                raise QueryError(
                    "order by a component attribute is ambiguous (set-"
                    "valued); order by an aggregate of it instead"
                )
        from repro.core.query.evaluator import _operand_values

        for term in reversed(statement.order_by):
            def sort_key(instance, operand=term.operand):
                value = _operand_values(operand, instance)[0]
                return (value is None, value)

            try:
                instances.sort(key=sort_key, reverse=term.descending)
            except TypeError:
                raise QueryError(
                    "order by values are not mutually comparable"
                ) from None
    if statement.limit is not None:
        instances = instances[: statement.limit]
    return instances


def explain_query(view_object: ViewObjectDefinition, text: str) -> str:
    """A readable account of how a query would execute.

    Shows the pivot predicate pushed into the storage engine (with its
    SQL form) and the residual condition evaluated on assembled
    instances — the "composition" of the query with the object's
    structure that the paper's query model describes.
    """
    statement = parse_statement(text)
    validate_against(statement.condition, view_object)
    plan = plan_query(statement.condition)
    sql, params = plan.pushed.to_sql()
    lines = [
        f"object query on {view_object.name!r} "
        f"(pivot {view_object.pivot_relation}):",
        f"  pushed to engine : {sql}  params={params!r}",
    ]
    if plan.residual is None:
        lines.append("  residual         : none (fully pushed down)")
    else:
        lines.append(f"  residual         : {plan.residual!r}")
        lines.append(
            "  evaluated on     : assembled instances "
            "(existential component semantics)"
        )
    if statement.order_by:
        rendered = ", ".join(repr(term) for term in statement.order_by)
        lines.append(f"  order by         : {rendered}")
    if statement.limit is not None:
        lines.append(f"  limit            : {statement.limit}")
    return "\n".join(lines)
