"""AST of the object query language.

The query model of the view-object papers supports "ad-hoc, declarative
queries on view objects"; our concrete language covers the needs of the
paper's examples — Figure 4's request is::

    level = 'graduate' and count(STUDENT) < 5

Operands are pivot attributes (unqualified), component attributes
(``NODE.attr``, existential semantics), component counts
(``count(NODE)``), and literals.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

__all__ = [
    "QueryNode",
    "QueryStatement",
    "OrderTerm",
    "QAttr",
    "QCount",
    "QAggregate",
    "QLiteral",
    "QCompare",
    "QIsNull",
    "QIn",
    "QLike",
    "QAnd",
    "QOr",
    "QNot",
]


class QueryNode:
    """Base class of all query AST nodes."""

    def children(self) -> Tuple["QueryNode", ...]:
        return ()


class OrderTerm:
    """One ``order by`` term: an operand plus a direction."""

    __slots__ = ("operand", "descending")

    def __init__(self, operand: "QueryNode", descending: bool = False) -> None:
        self.operand = operand
        self.descending = descending

    def __repr__(self) -> str:
        direction = " desc" if self.descending else ""
        return f"OrderTerm({self.operand!r}{direction})"


class QueryStatement:
    """A full statement: condition plus optional ordering and limit."""

    __slots__ = ("condition", "order_by", "limit")

    def __init__(
        self,
        condition: "QueryNode",
        order_by: List[OrderTerm] = None,
        limit: Optional[int] = None,
    ) -> None:
        self.condition = condition
        self.order_by = list(order_by or [])
        self.limit = limit

    def __repr__(self) -> str:
        return (
            f"QueryStatement({self.condition!r}, order_by={self.order_by!r}, "
            f"limit={self.limit!r})"
        )


class QAttr(QueryNode):
    """An attribute reference; ``node`` is None for pivot attributes."""

    __slots__ = ("node", "name")

    def __init__(self, node: Optional[str], name: str) -> None:
        self.node = node
        self.name = name

    def __repr__(self) -> str:
        prefix = f"{self.node}." if self.node else ""
        return f"QAttr({prefix}{self.name})"


class QCount(QueryNode):
    """``count(NODE)`` — number of component tuples bound at NODE."""

    __slots__ = ("node",)

    def __init__(self, node: str) -> None:
        self.node = node

    def __repr__(self) -> str:
        return f"QCount({self.node})"


class QLiteral(QueryNode):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"QLiteral({self.value!r})"


class QAggregate(QueryNode):
    """``min/max/sum/avg(NODE.attr)`` over the bound component tuples.

    Follows SQL semantics: nulls are ignored; an empty (or all-null)
    component yields null, which every comparison treats as false.
    """

    __slots__ = ("func", "node", "name")

    def __init__(self, func: str, node: str, name: str) -> None:
        self.func = func
        self.node = node
        self.name = name

    def __repr__(self) -> str:
        return f"QAggregate({self.func}({self.node}.{self.name}))"


class QIn(QueryNode):
    """``operand in (v1, v2, ...)`` / ``operand not in (...)``."""

    __slots__ = ("operand", "values", "negated")

    def __init__(self, operand: QueryNode, values, negated: bool) -> None:
        self.operand = operand
        self.values = tuple(values)
        self.negated = negated

    def children(self) -> Tuple[QueryNode, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        word = "not in" if self.negated else "in"
        return f"QIn({self.operand!r} {word} {self.values!r})"


class QLike(QueryNode):
    """``operand like 'pattern'`` with SQL ``%``/``_`` wildcards."""

    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: QueryNode, pattern: str, negated: bool) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def children(self) -> Tuple[QueryNode, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        word = "not like" if self.negated else "like"
        return f"QLike({self.operand!r} {word} {self.pattern!r})"


class QCompare(QueryNode):
    """Binary comparison; component operands are existential."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: QueryNode, right: QueryNode) -> None:
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[QueryNode, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"QCompare({self.op!r}, {self.left!r}, {self.right!r})"


class QIsNull(QueryNode):
    """``operand is null`` / ``operand is not null``."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: QueryNode, negated: bool) -> None:
        self.operand = operand
        self.negated = negated

    def children(self) -> Tuple[QueryNode, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"QIsNull({self.operand!r}, negated={self.negated})"


class QAnd(QueryNode):
    __slots__ = ("parts",)

    def __init__(self, parts: List[QueryNode]) -> None:
        self.parts = list(parts)

    def children(self) -> Tuple[QueryNode, ...]:
        return tuple(self.parts)

    def __repr__(self) -> str:
        return f"QAnd({self.parts!r})"


class QOr(QueryNode):
    __slots__ = ("parts",)

    def __init__(self, parts: List[QueryNode]) -> None:
        self.parts = list(parts)

    def children(self) -> Tuple[QueryNode, ...]:
        return tuple(self.parts)

    def __repr__(self) -> str:
        return f"QOr({self.parts!r})"


class QNot(QueryNode):
    __slots__ = ("part",)

    def __init__(self, part: QueryNode) -> None:
        self.part = part

    def children(self) -> Tuple[QueryNode, ...]:
        return (self.part,)

    def __repr__(self) -> str:
        return f"QNot({self.part!r})"
