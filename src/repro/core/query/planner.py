"""Query planning: pushing pivot-only conditions into the engine.

"A query on a view object is composed dynamically with the object's
structure to obtain a relational query that can be executed against the
database." The planner decomposes the query's top-level conjunction and
pushes every conjunct that touches only pivot attributes and literals
down to the storage engine as a relational predicate; the residual
(component references, counts) is evaluated on assembled instances.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import QueryError
from repro.core.query.ast import (
    QAggregate,
    QAnd,
    QAttr,
    QCompare,
    QCount,
    QIn,
    QIsNull,
    QLike,
    QLiteral,
    QNot,
    QOr,
    QueryNode,
)
from repro.relational import expressions as rel

__all__ = ["plan_query", "QueryPlan"]


class QueryPlan:
    """A pushed-down relational predicate plus a residual condition."""

    __slots__ = ("pushed", "residual")

    def __init__(
        self, pushed: rel.Expression, residual: Optional[QueryNode]
    ) -> None:
        self.pushed = pushed
        self.residual = residual

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryPlan(pushed={self.pushed!r}, residual={self.residual!r})"


def _is_pivot_only(node: QueryNode) -> bool:
    if isinstance(node, QAttr):
        return node.node is None
    if isinstance(node, (QCount, QAggregate)):
        return False
    if isinstance(node, QLiteral):
        return True
    return all(_is_pivot_only(child) for child in node.children())


def _to_relational(node: QueryNode) -> rel.Expression:
    if isinstance(node, QAttr):
        return rel.Attr(node.name)
    if isinstance(node, QLiteral):
        return rel.Const(node.value)
    if isinstance(node, QCompare):
        return rel.Comparison(
            node.op, _to_relational(node.left), _to_relational(node.right)
        )
    if isinstance(node, QIsNull):
        test = rel.IsNull(_to_relational(node.operand))
        return rel.Not(test) if node.negated else test
    if isinstance(node, QIn):
        test = rel.In(_to_relational(node.operand), node.values)
        return rel.Not(test) if node.negated else test
    if isinstance(node, QLike):
        test = rel.Like(_to_relational(node.operand), node.pattern)
        return rel.Not(test) if node.negated else test
    if isinstance(node, QAnd):
        return rel.And(*[_to_relational(part) for part in node.parts])
    if isinstance(node, QOr):
        return rel.Or(*[_to_relational(part) for part in node.parts])
    if isinstance(node, QNot):
        return rel.Not(_to_relational(node.part))
    raise QueryError(f"cannot push down query node {node!r}")


def plan_query(node: QueryNode) -> QueryPlan:
    """Split a query into pushed-down and residual parts."""
    conjuncts = node.parts if isinstance(node, QAnd) else [node]
    pushed: List[rel.Expression] = []
    residual: List[QueryNode] = []
    for conjunct in conjuncts:
        if _is_pivot_only(conjunct):
            pushed.append(_to_relational(conjunct))
        else:
            residual.append(conjunct)
    pushed_expression = rel.And(*pushed) if pushed else rel.TRUE
    if not residual:
        residual_node: Optional[QueryNode] = None
    elif len(residual) == 1:
        residual_node = residual[0]
    else:
        residual_node = QAnd(residual)
    return QueryPlan(pushed_expression, residual_node)
