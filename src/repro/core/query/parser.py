"""Recursive-descent parser for the object query language.

Grammar (keywords case-insensitive)::

    query      := condition EOF
    condition  := and_expr ('or' and_expr)*
    and_expr   := not_expr ('and' not_expr)*
    not_expr   := 'not' not_expr | primary
    primary    := '(' condition ')' | comparison
    comparison := operand ( op operand
                          | 'is' ['not'] 'null'
                          | ['not'] 'in' '(' literal (',' literal)* ')'
                          | ['not'] 'like' STRING )
    operand    := 'count' '(' IDENT ')'
                | ('min'|'max'|'sum'|'avg') '(' IDENT '.' IDENT ')'
                | IDENT '.' IDENT
                | IDENT
                | literal
    literal    := STRING | NUMBER | 'true' | 'false' | 'null'
"""

from __future__ import annotations

from typing import List

from repro.errors import QuerySyntaxError
from repro.core.query.ast import (
    OrderTerm,
    QAggregate,
    QAnd,
    QAttr,
    QCompare,
    QCount,
    QIn,
    QIsNull,
    QLike,
    QLiteral,
    QNot,
    QOr,
    QueryNode,
    QueryStatement,
)
from repro.core.query.lexer import Token, tokenize

__all__ = ["parse_query", "parse_statement"]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, value=None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind
            raise QuerySyntaxError(
                f"expected {wanted!r}, found {token.value!r}",
                position=token.position,
            )
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value == word

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> QueryNode:
        node = self._condition()
        token = self._peek()
        if token.kind != "EOF":
            raise QuerySyntaxError(
                f"unexpected trailing input {token.value!r}",
                position=token.position,
            )
        return node

    def _condition(self) -> QueryNode:
        parts = [self._and_expr()]
        while self._at_keyword("or"):
            self._advance()
            parts.append(self._and_expr())
        return parts[0] if len(parts) == 1 else QOr(parts)

    def _and_expr(self) -> QueryNode:
        parts = [self._not_expr()]
        while self._at_keyword("and"):
            self._advance()
            parts.append(self._not_expr())
        return parts[0] if len(parts) == 1 else QAnd(parts)

    def _not_expr(self) -> QueryNode:
        if self._at_keyword("not"):
            self._advance()
            return QNot(self._not_expr())
        return self._primary()

    def _primary(self) -> QueryNode:
        if self._peek().kind == "LPAREN":
            self._advance()
            node = self._condition()
            self._expect("RPAREN")
            return node
        return self._comparison()

    def _comparison(self) -> QueryNode:
        left = self._operand()
        token = self._peek()
        if token.kind == "OP":
            self._advance()
            right = self._operand()
            return QCompare(token.value, left, right)
        if self._at_keyword("is"):
            self._advance()
            negated = False
            if self._at_keyword("not"):
                self._advance()
                negated = True
            self._expect("KEYWORD", "null")
            return QIsNull(left, negated)
        negated = False
        if self._at_keyword("not"):
            self._advance()
            negated = True
            token = self._peek()
            if not (
                token.kind == "KEYWORD" and token.value in ("in", "like")
            ):
                raise QuerySyntaxError(
                    "'not' after an operand must introduce 'in' or 'like'",
                    position=token.position,
                )
        if self._at_keyword("in"):
            self._advance()
            return QIn(left, self._literal_list(), negated)
        if self._at_keyword("like"):
            self._advance()
            pattern = self._expect("STRING")
            return QLike(left, pattern.value, negated)
        raise QuerySyntaxError(
            f"expected a comparison operator, found {token.value!r}",
            position=token.position,
        )

    def _literal_list(self):
        self._expect("LPAREN")
        values = [self._literal_value()]
        while self._peek().kind == "COMMA":
            self._advance()
            values.append(self._literal_value())
        self._expect("RPAREN")
        return values

    def _literal_value(self):
        token = self._peek()
        if token.kind in ("STRING", "NUMBER"):
            self._advance()
            return token.value
        if token.kind == "KEYWORD" and token.value in ("true", "false", "null"):
            self._advance()
            return {"true": True, "false": False, "null": None}[token.value]
        raise QuerySyntaxError(
            f"expected a literal, found {token.value!r}",
            position=token.position,
        )

    def _operand(self) -> QueryNode:
        token = self._peek()
        if token.kind == "STRING" or token.kind == "NUMBER":
            self._advance()
            return QLiteral(token.value)
        if token.kind == "KEYWORD":
            if token.value == "true":
                self._advance()
                return QLiteral(True)
            if token.value == "false":
                self._advance()
                return QLiteral(False)
            if token.value == "null":
                self._advance()
                return QLiteral(None)
            if token.value == "count":
                self._advance()
                self._expect("LPAREN")
                node_token = self._expect("IDENT")
                self._expect("RPAREN")
                return QCount(node_token.value)
            if token.value in ("min", "max", "sum", "avg"):
                func = token.value
                self._advance()
                self._expect("LPAREN")
                node_token = self._expect("IDENT")
                self._expect("DOT")
                attr_token = self._expect("IDENT")
                self._expect("RPAREN")
                return QAggregate(func, node_token.value, attr_token.value)
        if token.kind == "IDENT":
            self._advance()
            if self._peek().kind == "DOT":
                self._advance()
                attr_token = self._expect("IDENT")
                return QAttr(token.value, attr_token.value)
            return QAttr(None, token.value)
        raise QuerySyntaxError(
            f"expected an operand, found {token.value!r}",
            position=token.position,
        )


def parse_query(text: str) -> QueryNode:
    """Parse a bare condition into an AST; raise on syntax errors."""
    return _Parser(tokenize(text)).parse()


def parse_statement(text: str) -> QueryStatement:
    """Parse a full statement::

        condition ['order' 'by' term (',' term)*] ['limit' NUMBER]
        term := operand ['asc' | 'desc']

    Order-by operands may be pivot attributes, component attributes,
    ``count(NODE)``, or aggregates; limits must be positive integers.
    """
    parser = _Parser(tokenize(text))
    condition = parser._condition()
    order_terms: List[OrderTerm] = []
    if parser._at_keyword("order"):
        parser._advance()
        parser._expect("KEYWORD", "by")
        while True:
            operand = parser._operand()
            if isinstance(operand, QLiteral):
                raise QuerySyntaxError(
                    "order by needs an attribute, count, or aggregate"
                )
            descending = False
            if parser._at_keyword("asc"):
                parser._advance()
            elif parser._at_keyword("desc"):
                parser._advance()
                descending = True
            order_terms.append(OrderTerm(operand, descending))
            if parser._peek().kind == "COMMA":
                parser._advance()
                continue
            break
    limit = None
    if parser._at_keyword("limit"):
        parser._advance()
        token = parser._expect("NUMBER")
        if not isinstance(token.value, int) or token.value < 0:
            raise QuerySyntaxError(
                f"limit must be a non-negative integer, got {token.value!r}",
                position=token.position,
            )
        limit = token.value
    trailing = parser._peek()
    if trailing.kind != "EOF":
        raise QuerySyntaxError(
            f"unexpected trailing input {trailing.value!r}",
            position=trailing.position,
        )
    return QueryStatement(condition, order_terms, limit)
