"""Evaluation of object queries against assembled instances.

Semantics:

* pivot attributes evaluate to the root tuple's value;
* component attributes (``NODE.attr``) are **existential**: a comparison
  involving one holds when *some* tuple bound at NODE satisfies it (for
  two component operands, some pair);
* ``count(NODE)`` is the number of tuples bound at NODE, flattened
  across parents;
* comparisons follow SQL null semantics (null compares false); the
  explicit ``is null`` / ``is not null`` tests are also existential for
  component operands.
"""

from __future__ import annotations

import operator
from typing import Any, List

from repro.errors import QueryError
from repro.core.instance import Instance
from repro.core.query.ast import (
    QAggregate,
    QAnd,
    QAttr,
    QCompare,
    QCount,
    QIn,
    QIsNull,
    QLike,
    QLiteral,
    QNot,
    QOr,
    QueryNode,
)

__all__ = ["evaluate", "validate_against"]

_OPERATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _aggregate(node: QAggregate, instance: Instance) -> Any:
    values = []
    for component in instance.tuples_at(node.node):
        if node.name not in component.values:
            raise QueryError(
                f"node {node.node!r} projection has no attribute "
                f"{node.name!r}"
            )
        value = component.values[node.name]
        if value is not None:
            values.append(value)
    if not values:
        return None  # SQL: aggregates over nothing are null
    if node.func == "min":
        return min(values)
    if node.func == "max":
        return max(values)
    if node.func == "sum":
        return sum(values)
    if node.func == "avg":
        return sum(values) / len(values)
    raise QueryError(f"unknown aggregate {node.func!r}")  # pragma: no cover


def _operand_values(node: QueryNode, instance: Instance) -> List[Any]:
    """All candidate values of an operand for one instance."""
    if isinstance(node, QLiteral):
        return [node.value]
    if isinstance(node, QCount):
        return [instance.count_at(node.node)]
    if isinstance(node, QAggregate):
        return [_aggregate(node, instance)]
    if isinstance(node, QAttr):
        if node.node is None:
            values = instance.root.values
            if node.name not in values:
                raise QueryError(
                    f"pivot projection has no attribute {node.name!r}"
                )
            return [values[node.name]]
        components = instance.tuples_at(node.node)
        result = []
        for component in components:
            if node.name not in component.values:
                raise QueryError(
                    f"node {node.node!r} projection has no attribute "
                    f"{node.name!r}"
                )
            result.append(component.values[node.name])
        return result
    raise QueryError(f"not an operand: {node!r}")


def evaluate(node: QueryNode, instance: Instance) -> bool:
    """Does ``instance`` satisfy the query condition?"""
    if isinstance(node, QAnd):
        return all(evaluate(part, instance) for part in node.parts)
    if isinstance(node, QOr):
        return any(evaluate(part, instance) for part in node.parts)
    if isinstance(node, QNot):
        return not evaluate(node.part, instance)
    if isinstance(node, QCompare):
        compare = _OPERATORS[node.op]
        lefts = _operand_values(node.left, instance)
        rights = _operand_values(node.right, instance)
        for lhs in lefts:
            for rhs in rights:
                if lhs is None or rhs is None:
                    continue
                try:
                    if compare(lhs, rhs):
                        return True
                except TypeError:
                    raise QueryError(
                        f"cannot compare {lhs!r} with {rhs!r}"
                    ) from None
        return False
    if isinstance(node, QIsNull):
        values = _operand_values(node.operand, instance)
        if node.negated:
            return any(v is not None for v in values)
        return any(v is None for v in values)
    if isinstance(node, QIn):
        values = _operand_values(node.operand, instance)
        if node.negated:
            return any(v is not None and v not in node.values for v in values)
        return any(v is not None and v in node.values for v in values)
    if isinstance(node, QLike):
        import re

        fragments = []
        for ch in node.pattern:
            if ch == "%":
                fragments.append(".*")
            elif ch == "_":
                fragments.append(".")
            else:
                fragments.append(re.escape(ch))
        regex = re.compile("^" + "".join(fragments) + "$", re.DOTALL)
        values = _operand_values(node.operand, instance)
        if node.negated:
            return any(
                isinstance(v, str) and regex.match(v) is None for v in values
            )
        return any(
            isinstance(v, str) and regex.match(v) is not None for v in values
        )
    raise QueryError(f"cannot evaluate query node {node!r}")


def validate_against(node: QueryNode, view_object) -> None:
    """Static check: every reference names a real node and attribute."""
    if isinstance(node, QAttr):
        if node.node is None:
            projection = view_object.projection(view_object.pivot_node_id)
            if node.name not in projection.attributes:
                raise QueryError(
                    f"pivot projection of {view_object.name!r} has no "
                    f"attribute {node.name!r}"
                )
        else:
            projection = view_object.projection(node.node)  # raises if unknown
            if node.name not in projection.attributes:
                raise QueryError(
                    f"node {node.node!r} has no projected attribute "
                    f"{node.name!r}"
                )
    elif isinstance(node, QCount):
        view_object.node(node.node)
    elif isinstance(node, QAggregate):
        projection = view_object.projection(node.node)
        if node.name not in projection.attributes:
            raise QueryError(
                f"node {node.node!r} has no projected attribute "
                f"{node.name!r}"
            )
    for child in node.children():
        validate_against(child, view_object)
