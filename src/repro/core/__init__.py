"""The view-object model: the paper's primary contribution.

Definition pipeline (Figure 2): information metric → relevant subgraph →
maximal tree → pruned view object. Runtime (Figure 4): instantiation of
hierarchical instances. Updates (Section 5): dependency-island analysis
and the VO-CD / VO-CI / VO-R translation algorithms behind
:class:`~repro.core.updates.translator.Translator`.
"""

from repro.core.dependency_island import IslandAnalysis, NodeRole, analyze_island
from repro.core.diff import ComponentChange, diff_instances, render_diff
from repro.core.information_metric import (
    InformationMetric,
    MetricWeights,
    RelevantSubgraph,
)
from repro.core.instance import ComponentTuple, Instance, build_instance
from repro.core.instantiation import Instantiator
from repro.core.projection import Projection
from repro.core.projection_tree import ProjectionTree, TreeNode
from repro.core.tree_builder import build_maximal_tree, prune_tree
from repro.core.view_object import ViewObjectDefinition, define_view_object

__all__ = [
    "Projection",
    "ProjectionTree",
    "TreeNode",
    "InformationMetric",
    "MetricWeights",
    "RelevantSubgraph",
    "build_maximal_tree",
    "prune_tree",
    "ViewObjectDefinition",
    "define_view_object",
    "IslandAnalysis",
    "NodeRole",
    "analyze_island",
    "Instance",
    "ComponentTuple",
    "build_instance",
    "Instantiator",
    "diff_instances",
    "render_diff",
    "ComponentChange",
]
