"""The information metric: extracting the relevant subgraph G (Figure 2a).

The paper defers the metric's full definition to Barsalou's thesis [4]
and only requires that, given a pivot relation, it "isolates all the
relations deemed to be relevant to the new object". We implement a
*hop-decay relevance metric*:

* the pivot has relevance 1;
* traversing a connection multiplies relevance by a weight that depends
  on the connection kind and the direction of travel (owned components
  bind tighter than referencing entities), times a global per-hop decay;
* a relation's relevance is the best product over all paths from the
  pivot, computed by a max-product Dijkstra walk;
* an edge (in a given direction) belongs to G when following it from
  its start keeps relevance at or above the threshold; a relation
  belongs to G when some included edge reaches it.

With the default weights, the university schema of Figure 1 and pivot
COURSES yield exactly the subgraph of Figure 2(a): {COURSES, DEPARTMENT,
CURRICULUM, GRADES, STUDENT, PEOPLE} plus FACULTY (reachable through the
nullable instructor reference, needed for Figure 3's ω′), with one
circuit COURSES-DEPARTMENT-PEOPLE-STUDENT-GRADES-COURSES.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.structural.connections import Connection, ConnectionKind, Traversal
from repro.structural.schema_graph import StructuralSchema

__all__ = ["MetricWeights", "RelevantSubgraph", "InformationMetric"]


class MetricWeights:
    """Per-kind, per-direction traversal weights plus the hop decay.

    The defaults encode the intuition of the structural model: owned and
    subset tuples are integral parts of an entity (weight 1 forward);
    the owner or general entity is strong context (0.8 / 0.9 inverse);
    referenced abstractions contribute well (0.9 forward, halved to 0.5
    when the reference is nullable and hence often absent); referencing
    entities are weaker context (0.65 inverse).
    """

    def __init__(
        self,
        forward_ownership: float = 1.0,
        inverse_ownership: float = 0.8,
        forward_subset: float = 1.0,
        inverse_subset: float = 0.9,
        forward_reference: float = 0.9,
        forward_nullable_reference: float = 0.5,
        inverse_reference: float = 0.65,
        hop_decay: float = 0.8,
    ) -> None:
        self.forward_ownership = forward_ownership
        self.inverse_ownership = inverse_ownership
        self.forward_subset = forward_subset
        self.inverse_subset = inverse_subset
        self.forward_reference = forward_reference
        self.forward_nullable_reference = forward_nullable_reference
        self.inverse_reference = inverse_reference
        self.hop_decay = hop_decay

    def weight(self, graph: StructuralSchema, traversal: Traversal) -> float:
        """The relevance multiplier for one traversal (includes decay)."""
        kind = traversal.kind
        if kind is ConnectionKind.OWNERSHIP:
            base = self.forward_ownership if traversal.forward else self.inverse_ownership
        elif kind is ConnectionKind.SUBSET:
            base = self.forward_subset if traversal.forward else self.inverse_subset
        else:
            if traversal.forward:
                base = (
                    self.forward_nullable_reference
                    if self._reference_is_nullable(graph, traversal.connection)
                    else self.forward_reference
                )
            else:
                base = self.inverse_reference
        return base * self.hop_decay

    @staticmethod
    def _reference_is_nullable(
        graph: StructuralSchema, connection: Connection
    ) -> bool:
        schema = graph.relation(connection.source)
        return any(
            schema.attribute(name).nullable
            for name in connection.source_attributes
        )


class RelevantSubgraph:
    """The subgraph G: relevant relations, included edges, relevances."""

    __slots__ = ("pivot", "relations", "connections", "relevance")

    def __init__(
        self,
        pivot: str,
        relations: Set[str],
        connections: List[Connection],
        relevance: Dict[str, float],
    ) -> None:
        self.pivot = pivot
        self.relations = relations
        self.connections = connections
        self.relevance = relevance

    def has_connection(self, name: str) -> bool:
        return any(c.name == name for c in self.connections)

    def incident(self, relation: str) -> List[Connection]:
        """Included edges touching ``relation``."""
        return [
            c
            for c in self.connections
            if c.source == relation or c.target == relation
        ]

    def describe(self) -> str:
        lines = [f"relevant subgraph around pivot {self.pivot!r}:"]
        for name in sorted(self.relations):
            lines.append(f"  {name}  relevance={self.relevance[name]:.3f}")
        for connection in self.connections:
            lines.append(f"  edge [{connection.name}] {connection.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RelevantSubgraph({self.pivot!r}, {len(self.relations)} relations, "
            f"{len(self.connections)} edges)"
        )


class InformationMetric:
    """Max-product relevance propagation from a pivot relation."""

    def __init__(
        self,
        weights: Optional[MetricWeights] = None,
        threshold: float = 0.35,
    ) -> None:
        self.weights = weights or MetricWeights()
        self.threshold = threshold

    def relevance_map(
        self, graph: StructuralSchema, pivot: str
    ) -> Dict[str, float]:
        """Best-path relevance of every reachable relation (no threshold)."""
        graph.relation(pivot)
        best: Dict[str, float] = {pivot: 1.0}
        heap: List[Tuple[float, int, str]] = [(-1.0, 0, pivot)]
        counter = 0
        while heap:
            negative, __, node = heapq.heappop(heap)
            relevance = -negative
            if relevance < best.get(node, 0.0):
                continue
            for traversal in graph.traversals_from(node):
                candidate = relevance * self.weights.weight(graph, traversal)
                target = traversal.end
                if candidate > best.get(target, 0.0):
                    best[target] = candidate
                    counter += 1
                    heapq.heappush(heap, (-candidate, counter, target))
        return best

    def extract_subgraph(
        self, graph: StructuralSchema, pivot: str
    ) -> RelevantSubgraph:
        """The subgraph G of Figure 2(a): thresholded relevance growth.

        An edge is included when following it from its start relation
        keeps relevance at or above the threshold; a relation is
        included when the pivot reaches it through included edges.
        """
        relevance = self.relevance_map(graph, pivot)
        relations: Set[str] = {pivot}
        included: List[Connection] = []
        seen_edges: Set[str] = set()
        # Grow from the pivot: consider only relations already admitted.
        frontier = [pivot]
        while frontier:
            node = frontier.pop()
            for traversal in graph.traversals_from(node):
                weight = self.weights.weight(graph, traversal)
                candidate = relevance[node] * weight
                if candidate < self.threshold:
                    continue
                connection = traversal.connection
                if connection.name not in seen_edges:
                    seen_edges.add(connection.name)
                    included.append(connection)
                target = traversal.end
                if target not in relations:
                    relations.add(target)
                    frontier.append(target)
        kept_relevance = {name: relevance[name] for name in relations}
        return RelevantSubgraph(pivot, relations, included, kept_relevance)
