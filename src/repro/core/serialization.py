"""Persistence of view-object definitions and translator policies.

"A view object is an uninstantiated window onto the underlying database;
that is, only its definition is saved while base data remains stored in
the relational database." This module is that saving: definitions and
the policies the dialog produced serialize to plain dictionaries (and
JSON), and deserialize against a structural schema — the object
catalog a PENGUIN-style system keeps between sessions.

Completers are code, not data: a policy serialized here always
deserializes with the default null completer, and callers re-attach
application completers after loading.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from repro.errors import ViewObjectError
from repro.core.projection import Projection
from repro.core.projection_tree import ProjectionTree
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
)
from repro.core.view_object import ViewObjectDefinition
from repro.structural.connections import Traversal
from repro.structural.paths import ConnectionPath
from repro.structural.schema_graph import StructuralSchema

__all__ = [
    "view_object_to_dict",
    "view_object_from_dict",
    "view_object_to_json",
    "view_object_from_json",
    "policy_to_dict",
    "policy_from_dict",
]

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# View-object definitions
# ---------------------------------------------------------------------------


def view_object_to_dict(view_object: ViewObjectDefinition) -> Dict[str, Any]:
    """A JSON-safe description of a view-object definition."""
    nodes: List[Dict[str, Any]] = []
    for node in view_object.tree.bfs():
        entry: Dict[str, Any] = {
            "id": node.node_id,
            "relation": node.relation,
            "attributes": list(
                view_object.projection(node.node_id).attributes
            ),
        }
        if node.parent_id is not None:
            entry["parent"] = node.parent_id
            entry["path"] = [
                {"connection": t.connection.name, "forward": t.forward}
                for t in node.path
            ]
        nodes.append(entry)
    return {
        "format": FORMAT_VERSION,
        "name": view_object.name,
        "schema": view_object.graph.name,
        "updatable": view_object.updatable,
        "nodes": nodes,
    }


def view_object_from_dict(
    graph: StructuralSchema, data: Mapping[str, Any]
) -> ViewObjectDefinition:
    """Rebuild a definition against ``graph``.

    The schema the object was defined on must still contain every
    relation and connection the stored tree references; mismatches raise
    :class:`ViewObjectError` with a pointed message.
    """
    if data.get("format") != FORMAT_VERSION:
        raise ViewObjectError(
            f"unsupported view-object format {data.get('format')!r}"
        )
    nodes = list(data["nodes"])
    if not nodes:
        raise ViewObjectError("stored view object has no nodes")
    by_id = {entry["id"]: entry for entry in nodes}
    roots = [entry for entry in nodes if "parent" not in entry]
    if len(roots) != 1:
        raise ViewObjectError(
            f"stored view object must have exactly one root, found "
            f"{len(roots)}"
        )
    root = roots[0]
    tree = ProjectionTree(root["relation"], root_id=root["id"])
    placed = {root["id"]}
    pending = [entry for entry in nodes if "parent" in entry]
    while pending:
        progressed = False
        for entry in list(pending):
            if entry["parent"] not in placed:
                continue
            traversals = []
            for hop in entry["path"]:
                connection = graph.connection(hop["connection"])
                traversals.append(Traversal(connection, hop["forward"]))
            tree.add_child(
                entry["parent"],
                entry["relation"],
                ConnectionPath(traversals),
                node_id=entry["id"],
            )
            placed.add(entry["id"])
            pending.remove(entry)
            progressed = True
        if not progressed:
            orphans = sorted(entry["id"] for entry in pending)
            raise ViewObjectError(
                f"stored view object has orphaned nodes: {orphans!r}"
            )
    projections = {
        entry["id"]: Projection(entry["relation"], entry["attributes"])
        for entry in nodes
    }
    return ViewObjectDefinition(
        data["name"],
        graph,
        tree,
        projections,
        updatable=bool(data.get("updatable", True)),
    )


def view_object_to_json(view_object: ViewObjectDefinition, indent: int = 2) -> str:
    return json.dumps(view_object_to_dict(view_object), indent=indent)


def view_object_from_json(
    graph: StructuralSchema, text: str
) -> ViewObjectDefinition:
    return view_object_from_dict(graph, json.loads(text))


# ---------------------------------------------------------------------------
# Translator policies
# ---------------------------------------------------------------------------


def policy_to_dict(policy: TranslatorPolicy) -> Dict[str, Any]:
    """A JSON-safe description of a translator policy (minus completer)."""
    return {
        "format": FORMAT_VERSION,
        "allow_insertion": policy.allow_insertion,
        "allow_deletion": policy.allow_deletion,
        "allow_replacement": policy.allow_replacement,
        "authorized_users": (
            None
            if policy.authorized_users is None
            else sorted(policy.authorized_users)
        ),
        "relations": {
            relation: {
                "can_modify": rp.can_modify,
                "can_insert": rp.can_insert,
                "can_replace_existing": rp.can_replace_existing,
                "allow_key_replacement": rp.allow_key_replacement,
                "allow_db_key_replacement": rp.allow_db_key_replacement,
                "allow_merge_on_key_conflict": rp.allow_merge_on_key_conflict,
                "on_reference_delete": rp.on_reference_delete.value,
            }
            for relation, rp in policy.relations.items()
        },
    }


def policy_from_dict(data: Mapping[str, Any]) -> TranslatorPolicy:
    if data.get("format") != FORMAT_VERSION:
        raise ViewObjectError(
            f"unsupported policy format {data.get('format')!r}"
        )
    relations = {}
    for relation, stored in data.get("relations", {}).items():
        relations[relation] = RelationPolicy(
            can_modify=stored["can_modify"],
            can_insert=stored["can_insert"],
            can_replace_existing=stored["can_replace_existing"],
            allow_key_replacement=stored["allow_key_replacement"],
            allow_db_key_replacement=stored["allow_db_key_replacement"],
            allow_merge_on_key_conflict=stored["allow_merge_on_key_conflict"],
            on_reference_delete=ReferenceRepair(
                stored["on_reference_delete"]
            ),
        )
    return TranslatorPolicy(
        allow_insertion=bool(data.get("allow_insertion", True)),
        allow_deletion=bool(data.get("allow_deletion", True)),
        allow_replacement=bool(data.get("allow_replacement", True)),
        relations=relations,
        authorized_users=data.get("authorized_users"),
    )
