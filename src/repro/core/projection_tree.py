"""Trees of relations: the backbone of every view object.

Both the *maximal tree* T of Figure 2(b) (every configuration a pivot
allows) and the pruned tree of an actual view object (Figure 2c) are
:class:`ProjectionTree` instances. A node names a relation — possibly a
*copy* when circuits in G forced duplication — and carries the
connection path from its parent. In a pruned tree that path may span
several connections ("a path of two connections", Figure 3) when
intermediate relations were pruned away.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ViewObjectError
from repro.structural.paths import ConnectionPath

__all__ = ["TreeNode", "ProjectionTree"]


class TreeNode:
    """One node of a projection tree."""

    __slots__ = ("node_id", "relation", "parent_id", "path", "children")

    def __init__(
        self,
        node_id: str,
        relation: str,
        parent_id: Optional[str],
        path: Optional[ConnectionPath],
    ) -> None:
        if (parent_id is None) != (path is None):
            raise ViewObjectError(
                f"node {node_id!r}: parent and path must be given together"
            )
        self.node_id = node_id
        self.relation = relation
        self.parent_id = parent_id
        self.path = path
        self.children: List[str] = []

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeNode({self.node_id!r}, relation={self.relation!r})"


class ProjectionTree:
    """A rooted tree of relation nodes with connection-path edges."""

    def __init__(self, root_relation: str, root_id: Optional[str] = None) -> None:
        root_id = root_id or root_relation
        self._nodes: Dict[str, TreeNode] = {
            root_id: TreeNode(root_id, root_relation, None, None)
        }
        self._root_id = root_id
        self._copies: Dict[str, int] = {root_relation: 1}

    # -- construction ---------------------------------------------------------

    def allocate_id(self, relation: str) -> str:
        """A fresh node id: the relation name, or ``NAME#k`` for copies."""
        count = self._copies.get(relation, 0) + 1
        self._copies[relation] = count
        return relation if count == 1 else f"{relation}#{count}"

    def add_child(
        self,
        parent_id: str,
        relation: str,
        path: ConnectionPath,
        node_id: Optional[str] = None,
    ) -> TreeNode:
        parent = self.node(parent_id)
        if path.start != parent.relation:
            raise ViewObjectError(
                f"edge path starts at {path.start!r} but parent node "
                f"{parent_id!r} holds relation {parent.relation!r}"
            )
        if path.end != relation:
            raise ViewObjectError(
                f"edge path ends at {path.end!r}, not {relation!r}"
            )
        node_id = node_id or self.allocate_id(relation)
        if node_id in self._nodes:
            raise ViewObjectError(f"node id {node_id!r} already used")
        node = TreeNode(node_id, relation, parent_id, path)
        self._nodes[node_id] = node
        parent.children.append(node_id)
        return node

    # -- access -------------------------------------------------------------------

    @property
    def root(self) -> TreeNode:
        return self._nodes[self._root_id]

    @property
    def root_id(self) -> str:
        return self._root_id

    def node(self, node_id: str) -> TreeNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ViewObjectError(f"unknown tree node: {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def nodes(self) -> Iterator[TreeNode]:
        return iter(self._nodes.values())

    def children(self, node_id: str) -> List[TreeNode]:
        return [self._nodes[c] for c in self.node(node_id).children]

    def parent(self, node_id: str) -> Optional[TreeNode]:
        parent_id = self.node(node_id).parent_id
        return None if parent_id is None else self._nodes[parent_id]

    def relations(self) -> Tuple[str, ...]:
        """Distinct relation names present in the tree."""
        seen: List[str] = []
        for node in self._nodes.values():
            if node.relation not in seen:
                seen.append(node.relation)
        return tuple(seen)

    def nodes_for_relation(self, relation: str) -> List[TreeNode]:
        return [n for n in self._nodes.values() if n.relation == relation]

    def depth(self, node_id: str) -> int:
        depth = 0
        node = self.node(node_id)
        while node.parent_id is not None:
            node = self._nodes[node.parent_id]
            depth += 1
        return depth

    def path_to_root(self, node_id: str) -> List[TreeNode]:
        """Nodes from ``node_id`` up to (and including) the root."""
        trail = [self.node(node_id)]
        while trail[-1].parent_id is not None:
            trail.append(self._nodes[trail[-1].parent_id])
        return trail

    # -- traversal orders -------------------------------------------------------------

    def dfs(self) -> Iterator[TreeNode]:
        """Depth-first, children in insertion order — the order VO-R walks."""
        stack = [self._root_id]
        while stack:
            node = self._nodes[stack.pop()]
            yield node
            stack.extend(reversed(node.children))

    def bfs(self) -> Iterator[TreeNode]:
        queue = [self._root_id]
        index = 0
        while index < len(queue):
            node = self._nodes[queue[index]]
            index += 1
            yield node
            queue.extend(node.children)

    def leaves(self) -> List[TreeNode]:
        return [n for n in self._nodes.values() if not n.children]

    def __len__(self) -> int:
        return len(self._nodes)

    # -- rendering ---------------------------------------------------------------------

    def describe(self) -> str:
        """Indented ASCII rendering (used by the Figure 2 bench)."""
        lines: List[str] = []

        def walk(node_id: str, indent: int) -> None:
            node = self._nodes[node_id]
            if node.path is None:
                edge = ""
            else:
                arrows = " ".join(
                    t.kind.symbol if t.forward else "(" + t.kind.symbol + ")^-1"
                    for t in node.path
                )
                edge = f"  [{arrows}]"
            lines.append("  " * indent + node.node_id + edge)
            for child_id in node.children:
                walk(child_id, indent + 1)

        walk(self._root_id, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProjectionTree(root={self._root_id!r}, {len(self._nodes)} nodes)"
