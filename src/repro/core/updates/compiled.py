"""Definition-time compilation of the update translator (§6).

"Once the DBA has chosen the translator, users can specify updates
through the view object" — the translator is *fixed* when the object is
defined, yet the interpreted algorithms re-derive everything per call:
each update re-walks the projection tree through ``tree.bfs()``, re-asks
the island analysis for membership, re-flattens ``instance.tuples_at``
from the root for every node (O(depth) per node), rebuilds the
``connections_from`` / ``connections_to`` lists for every inserted or
deleted tuple, and re-resolves attribute positions through per-name
dictionary lookups.

A :class:`CompiledProgram` hoists all of that to definition time:

* the projection tree is flattened into a BFS-ordered tuple of
  :class:`CompiledNode` records carrying the relation schema, key
  attribute names, projection ``(name, position)`` pairs, island
  membership, precomputed CASE reason strings, and child links;
* component tuples are flattened level-by-level in one O(tree) pass
  (:meth:`CompiledProgram._levels`) instead of per-node root walks;
* the global-integrity rules — cascade targets, incoming reference
  repairs (with the AUTO → NULLIFY/DELETE resolution precomputed from
  the schema), inverse ownership/subset parents, forward references,
  and key-change retarget/propagation — are pre-resolved into
  per-relation adjacency lists with attribute positions baked in;
* the ``null_completer`` + ``row_from_mapping`` tuple-building pair is
  fused into a single positional pass (domain validation is deferred to
  the engine boundary, where every backend re-validates through
  ``_coerce_values`` before mutating — same errors, same messages).

The compiled twins are **byte-identical** to the interpreted tree walk:
identical operations and reason strings in identical order, identical
tracer span structure, identical rejection messages. Policy questions
are still answered through ``policy.for_relation`` at the interpreted
call sites (the lazy insertion into ``policy.relations`` feeds the audit
log's policy answers and must not diverge).

The one thing deliberately *not* frozen is the policy object itself:
callers may flip relation switches after construction, and both paths
observe the change. What is frozen is the structure — tree, island,
schemas, connections — exactly the part the paper fixes at definition
time.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.errors import UnknownAttributeError, UpdateRejectedError
from repro.core.dependency_island import IslandAnalysis
from repro.core.instance import ComponentTuple, Instance
from repro.core.updates.context import TranslationContext
from repro.core.updates.local_validation import (
    validate_deletion,
    validate_insertion,
    validate_replacement,
)
from repro.core.updates.policy import ReferenceRepair, null_completer
from repro.core.updates.propagation import propagate_within_object
from repro.core.view_object import ViewObjectDefinition
from repro.relational.domains import DATE
from repro.relational.engine import _normalize_row_dates
from repro.relational.operations import Delete, Insert
from repro.structural.connections import ConnectionKind

__all__ = [
    "CompiledCache",
    "CompiledNode",
    "CompiledProgram",
    "CompiledTranslator",
]

# CASE R-3 merge reasons carry no node placeholder in the interpreted
# source; they are shared constants.
_R3_MERGE_DELETE = "CASE R-3 merge: old island tuple removed (VO-R)"
_R3_MERGE_REPLACE = "CASE R-3 merge: existing tuple overwritten (VO-R)"


class CompiledNode:
    """One projection-tree node, flattened for the translation hot path."""

    __slots__ = (
        "node_id",
        "relation",
        "schema",
        "key_names",
        "is_pivot",
        "in_island",
        "attr_plan",
        "known_names",
        "positions",
        "proj_pairs",
        "has_dates",
        "key_has_dates",
        "children",
        "reason_ci_insert",
        "reason_ci_replace",
        "reason_cd_delete",
        "reason_r2",
        "reason_r3_key",
        "reason_i1",
        "reason_i2",
        "reason_i4",
        "reason_removed",
    )

    def __init__(self, view_object: ViewObjectDefinition, node, in_island: bool) -> None:
        node_id = node.node_id
        schema = view_object.graph.relation(node.relation)
        self.node_id = node_id
        self.relation = node.relation
        self.schema = schema
        self.key_names = tuple(schema.key)
        self.is_pivot = node_id == view_object.pivot_node_id
        self.in_island = in_island
        self.attr_plan = tuple((a.name, a.nullable) for a in schema.attributes)
        self.known_names = frozenset(a.name for a in schema.attributes)
        self.positions = {a.name: i for i, a in enumerate(schema.attributes)}
        projection = view_object.projection(node_id)
        self.proj_pairs = tuple(
            (name, self.positions[name]) for name in projection.attributes
        )
        # DATE attributes need datetime->date narrowing before storage
        # (the engines do it inside _coerce_values); the fast mutation
        # paths are gated on these flags.
        self.has_dates = any(a.domain == DATE for a in schema.attributes)
        self.key_has_dates = any(
            schema.attribute(name).domain == DATE for name in schema.key
        )
        self.children: Tuple["CompiledNode", ...] = ()
        self.reason_ci_insert = f"CASE 2 insertion at node {node_id!r} (VO-CI)"
        self.reason_ci_replace = f"CASE 3 replacement at node {node_id!r} (VO-CI)"
        self.reason_cd_delete = f"island deletion at node {node_id!r} (VO-CD)"
        self.reason_r2 = f"CASE R-2 replacement at node {node_id!r} (VO-R)"
        self.reason_r3_key = (
            f"CASE R-3 key-changing replacement at {node_id!r} (VO-R)"
        )
        self.reason_i1 = f"CASE I-1 nonkey replacement at node {node_id!r} (VO-R)"
        self.reason_i2 = f"CASE I-2 insertion at node {node_id!r} (VO-R)"
        self.reason_i4 = f"CASE I-4 replacement at node {node_id!r} (VO-R)"
        self.reason_removed = (
            f"island component removed by replacement at node "
            f"{node_id!r} (VO-R)"
        )

    # -- fused per-component helpers ---------------------------------------

    def key_from(self, values: Dict[str, Any]) -> Tuple[Any, ...]:
        try:
            return tuple(values[k] for k in self.key_names)
        except KeyError as error:
            raise UpdateRejectedError(
                f"component tuple for {self.node_id!r} lacks key attribute "
                f"{error.args[0]!r}",
                relation=self.relation,
            ) from None

    def projected_match(
        self, values: Dict[str, Any], existing: Tuple[Any, ...]
    ) -> bool:
        get = values.get
        for name, position in self.proj_pairs:
            if existing[position] != get(name):
                return False
        return True

    def complete_row(
        self, ctx: TranslationContext, values: Dict[str, Any]
    ) -> Tuple[Any, ...]:
        """Fused ``ctx.complete``: completer fill + row build in one pass.

        Mirrors the interpreted error order exactly: a projected-out
        non-nullable attribute without a completer, then an unknown
        attribute name, then domain validation (``row_from_mapping``
        validates before the engine gets the row, so validating here
        keeps the raise point identical — and lets the fast insertion
        path skip the engine's redundant re-validation). Custom
        completers fall back to the generic path.
        """
        if ctx.policy.completer is not null_completer:
            return ctx.complete(self.node_id, values)
        row = []
        hits = 0
        for name, nullable in self.attr_plan:
            if name in values:
                row.append(values[name])
                hits += 1
            elif nullable:
                row.append(None)
            else:
                raise UpdateRejectedError(
                    f"cannot extend view-object tuple for {self.relation!r}: "
                    f"attribute {name!r} was projected out and is "
                    f"not nullable (supply a completer)",
                    relation=self.relation,
                )
        if hits != len(values):
            for given in values:
                if given not in self.known_names:
                    raise UnknownAttributeError(self.schema.name, given)
        return self.schema.validate_row(row)

    def merge_row(
        self, values: Dict[str, Any], existing: Tuple[Any, ...]
    ) -> Tuple[Any, ...]:
        """Fused ``ctx.merge_with_existing``: positional overlay."""
        row = list(existing)
        positions = self.positions
        for given, value in values.items():
            position = positions.get(given)
            if position is None:
                raise UnknownAttributeError(self.schema.name, given)
            row[position] = value
        return tuple(row)


class _Skeleton:
    """Precomputed skeleton-insertion plan for one relation."""

    __slots__ = ("relation", "schema", "attr_plan", "prohibit_msg")

    def __init__(self, relation: str, schema) -> None:
        self.relation = relation
        self.schema = schema
        self.attr_plan = tuple((a.name, a.nullable) for a in schema.attributes)
        self.prohibit_msg = (
            f"global integrity requires inserting into {relation!r} but the "
            f"translator does not allow insertions there"
        )


class _RelationRules:
    """Pre-resolved global-integrity adjacency of one relation."""

    __slots__ = (
        "cascade",
        "incoming_refs",
        "parents",
        "forward_refs",
        "ref_change_positions",
        "retarget",
        "propagate",
    )

    def __init__(self, graph, relation: str, skeletons: Dict[str, _Skeleton]) -> None:
        schema = graph.relation(relation)

        def skeleton(name: str) -> _Skeleton:
            record = skeletons.get(name)
            if record is None:
                record = skeletons[name] = _Skeleton(name, graph.relation(name))
            return record

        # Outgoing ownership/subset: delete cascades (kind order matters).
        cascade = []
        for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET):
            for connection in graph.connections_from(relation, kind):
                cascade.append(
                    (
                        connection.target,
                        connection.target_attributes,
                        schema.positions(connection.source_attributes),
                        graph.relation(connection.target).key_of,
                        f"cascade {kind.value} via {connection.name}",
                    )
                )
        self.cascade = tuple(cascade)

        # Incoming references: deletion repair per the policy, with the
        # AUTO resolution (nullable nonkey connecting attributes?)
        # precomputed from the referencing schema.
        incoming = []
        for connection in graph.connections_to(relation, ConnectionKind.REFERENCE):
            source_schema = graph.relation(connection.source)
            incoming.append(
                (
                    connection.source,
                    connection.source_attributes,
                    schema.positions(connection.target_attributes),
                    source_schema.key_of,
                    source_schema.positions(connection.source_attributes),
                    all(
                        source_schema.attribute(name).nullable
                        and not source_schema.is_key_attribute(name)
                        for name in connection.source_attributes
                    ),
                    f"referencing tuple repair via {connection.name}",
                    f"nullify foreign key via {connection.name}",
                    (
                        f"deletion of {relation!r} tuple is referenced by "
                        f"{connection.source!r} and the translator prohibits "
                        f"repairing that reference (connection "
                        f"{connection.name!r})"
                    ),
                )
            )
        self.incoming_refs = tuple(incoming)

        # Inverse ownership/subset: every inserted tuple needs its owner
        # or general tuple.
        # A probe whose attribute list IS the probed relation's primary
        # key (in key order) degenerates from find_by to an existence
        # get: same truth value, but memoized O(1) instead of an overlay
        # scan. Ownership parents always qualify; references usually do.
        def probes_by_key(name: str, attrs) -> bool:
            return tuple(attrs) == tuple(graph.relation(name).key)

        parents = []
        for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET):
            for connection in graph.connections_to(relation, kind):
                parents.append(
                    (
                        connection.source,
                        connection.source_attributes,
                        schema.positions(connection.target_attributes),
                        skeleton(connection.source),
                        f"missing {kind.value} parent via {connection.name}",
                        probes_by_key(
                            connection.source, connection.source_attributes
                        ),
                    )
                )
        self.parents = tuple(parents)

        # Forward references: the referenced tuple must exist.
        forward = []
        ref_change = []
        for connection in graph.connections_from(relation, ConnectionKind.REFERENCE):
            positions = schema.positions(connection.source_attributes)
            forward.append(
                (
                    connection.target,
                    connection.target_attributes,
                    positions,
                    skeleton(connection.target),
                    f"missing referenced tuple via {connection.name}",
                    probes_by_key(
                        connection.target, connection.target_attributes
                    ),
                )
            )
            ref_change.append(positions)
        self.forward_refs = tuple(forward)
        self.ref_change_positions = tuple(ref_change)

        # Key changes: retarget incoming references, propagate inherited
        # keys to owned/subset dependents. Entries are built straight
        # from the old/new key tuples via key-index positions.
        key_index = {name: i for i, name in enumerate(schema.key)}
        retarget = []
        for connection in graph.connections_to(relation, ConnectionKind.REFERENCE):
            source_schema = graph.relation(connection.source)
            retarget.append(
                (
                    connection.source,
                    connection.source_attributes,
                    tuple(key_index[a] for a in connection.target_attributes),
                    source_schema.key_of,
                    source_schema.positions(connection.source_attributes),
                    (
                        f"key replacement in {relation!r} requires modifying "
                        f"referencing relation {connection.source!r}, which "
                        f"the translator prohibits"
                    ),
                    (
                        f"retarget via {connection.name} collided with an "
                        f"existing tuple; old reference dropped"
                    ),
                    f"retarget foreign key via {connection.name}",
                )
            )
        self.retarget = tuple(retarget)

        propagate = []
        for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET):
            for connection in graph.connections_from(relation, kind):
                child_schema = graph.relation(connection.target)
                propagate.append(
                    (
                        connection.target,
                        connection.target_attributes,
                        tuple(key_index[a] for a in connection.source_attributes),
                        child_schema.key_of,
                        child_schema.positions(connection.target_attributes),
                        (
                            f"inherited-key propagation via "
                            f"{connection.name} collided; stale tuple dropped"
                        ),
                        f"propagate inherited key via {connection.name}",
                    )
                )
        self.propagate = tuple(propagate)


class CompiledProgram:
    """The fixed translator of one view object, specialized per node.

    Everything derivable from the view object, the island analysis, and
    the structural schema is computed once here; the ``run_*`` twins
    then execute the paper's algorithms over the precomputed records,
    producing plans byte-identical to the interpreted walk.
    """

    def __init__(
        self, view_object: ViewObjectDefinition, analysis: IslandAnalysis
    ) -> None:
        self.view_object = view_object
        self.analysis = analysis
        graph = view_object.graph
        order = list(view_object.tree.bfs())
        nodes: Dict[str, CompiledNode] = {}
        for node in order:
            nodes[node.node_id] = CompiledNode(
                view_object, node, analysis.is_island(node.node_id)
            )
        for node in order:
            nodes[node.node_id].children = tuple(
                nodes[child_id] for child_id in node.children
            )
        self.nodes = nodes
        self.nodes_bfs: Tuple[CompiledNode, ...] = tuple(
            nodes[node.node_id] for node in order
        )
        self.root = nodes[view_object.tree.root.node_id]
        # (node, parent_id) pairs driving the one-pass level flattening.
        self._level_steps = tuple(
            (nodes[node.node_id], node.parent_id)
            for node in order
            if node.parent_id is not None
        )
        self.island_bfs: Tuple[CompiledNode, ...] = tuple(
            nodes[node_id] for node_id in analysis.island_nodes
        )
        island_ids = {cn.node_id for cn in self.island_bfs}
        self._island_level_steps = tuple(
            (cn, parent_id)
            for cn, parent_id in self._level_steps
            if cn.node_id in island_ids
        )
        skeletons: Dict[str, _Skeleton] = {}
        self.rules: Dict[str, _RelationRules] = {
            name: _RelationRules(graph, name, skeletons)
            for name in graph.relation_names
        }

    # -- instance flattening -----------------------------------------------

    def _levels(self, instance: Instance) -> Dict[str, List[ComponentTuple]]:
        """Components per node, flattened top-down in one O(tree) pass.

        Produces exactly ``instance.tuples_at(node_id)`` for every node,
        without re-walking the root path per node.
        """
        levels: Dict[str, List[ComponentTuple]] = {
            self.root.node_id: [instance.root]
        }
        for cn, parent_id in self._level_steps:
            flat: List[ComponentTuple] = []
            node_id = cn.node_id
            for component in levels[parent_id]:
                children = component.children.get(node_id)
                if children:
                    flat.extend(children)
            levels[node_id] = flat
        return levels

    def _island_levels(self, instance: Instance) -> Dict[str, List[ComponentTuple]]:
        """Like :meth:`_levels`, restricted to the dependency island
        (island parents are always island nodes, so the prefix is closed)."""
        levels: Dict[str, List[ComponentTuple]] = {
            self.root.node_id: [instance.root]
        }
        for cn, parent_id in self._island_level_steps:
            flat: List[ComponentTuple] = []
            node_id = cn.node_id
            for component in levels[parent_id]:
                children = component.children.get(node_id)
                if children:
                    flat.extend(children)
            levels[node_id] = flat
        return levels

    # -- VO-CI --------------------------------------------------------------

    def run_insertion(self, ctx: TranslationContext, instance: Instance) -> None:
        """Compiled twin of ``translate_complete_insertion``."""
        with obs.tracer().span("validate", algorithm="VO-CI"):
            validate_insertion(ctx, instance)
        with obs.tracer().span("propagate", algorithm="VO-CI") as span:
            self._propagate_insertion(ctx, instance)
            span.set(ops=len(ctx.plan))

    def _propagate_insertion(
        self, ctx: TranslationContext, instance: Instance
    ) -> None:
        engine = ctx.engine
        policy = ctx.policy
        levels = self._levels(instance)
        # Fast CASE-2 inserts: the probe above the branch just proved the
        # key absent and complete_row validated the row, so the overlay
        # can be written directly. Only sound with the null completer (a
        # custom completer may rewrite key attributes) and with keys
        # needing no datetime narrowing.
        fast_insert = (
            getattr(engine, "insert_validated", None)
            if policy.completer is null_completer
            else None
        )
        plan = ctx.plan
        inserted = ctx.inserted
        for cn in self.nodes_bfs:
            relation = cn.relation
            in_island = cn.in_island
            relation_policy = policy.for_relation(relation)
            for component in levels[cn.node_id]:
                values = component.values
                key = cn.key_from(values)
                existing = engine.get(relation, key)
                if existing is None:
                    # CASE 2: the new tuple matches no existing key.
                    if not in_island and not (
                        relation_policy.can_modify and relation_policy.can_insert
                    ):
                        raise UpdateRejectedError(
                            f"insertion needs a new tuple in {relation!r} "
                            f"but the translator does not allow insertions "
                            f"there",
                            relation=relation,
                        )
                    row = cn.complete_row(ctx, values)
                    if fast_insert is not None and not cn.key_has_dates:
                        fast_insert(
                            relation,
                            _normalize_row_dates(cn.schema, row)
                            if cn.has_dates
                            else row,
                            key,
                        )
                        plan.add(Insert(relation, row), cn.reason_ci_insert)
                        inserted.append((relation, row))
                    else:
                        ctx.insert(relation, row, cn.reason_ci_insert)
                elif cn.projected_match(values, existing):
                    # CASE 1: an identical tuple already exists.
                    if in_island:
                        raise UpdateRejectedError(
                            f"complete insertion rejected: identical tuple "
                            f"{key!r} already exists in island relation "
                            f"{relation!r} (CASE 1)",
                            relation=relation,
                        )
                else:
                    # CASE 3: key matches, nonkey values conflict.
                    if in_island:
                        raise UpdateRejectedError(
                            f"complete insertion rejected: tuple {key!r} "
                            f"exists in island relation {relation!r} with "
                            f"different values (CASE 3)",
                            relation=relation,
                        )
                    if not (
                        relation_policy.can_modify
                        and relation_policy.can_replace_existing
                    ):
                        raise UpdateRejectedError(
                            f"insertion needs to modify an existing tuple of "
                            f"{relation!r} but the translator prohibits it",
                            relation=relation,
                        )
                    ctx.replace(
                        relation,
                        key,
                        cn.merge_row(values, existing),
                        cn.reason_ci_replace,
                    )
        self._maintain_after_insertions(ctx)

    # -- VO-CD --------------------------------------------------------------

    def run_deletion(self, ctx: TranslationContext, instance: Instance) -> None:
        """Compiled twin of ``translate_complete_deletion``."""
        with obs.tracer().span("validate", algorithm="VO-CD"):
            validate_deletion(ctx, instance)
        with obs.tracer().span("propagate", algorithm="VO-CD") as span:
            self._propagate_deletion(ctx, instance)
            span.set(ops=len(ctx.plan))

    def _propagate_deletion(
        self, ctx: TranslationContext, instance: Instance
    ) -> None:
        engine = ctx.engine
        levels = self._island_levels(instance)
        # Fast deletes: the existence probe just returned the row, so the
        # re-read inside ctx.delete is redundant; gated on keys that need
        # no datetime narrowing (the probe coerces, the overlay must see
        # the same key).
        fast_delete = getattr(engine, "delete_validated", None)
        plan = ctx.plan
        deleted = ctx.deleted
        for cn in self.island_bfs:
            relation = cn.relation
            use_fast = fast_delete is not None and not cn.key_has_dates
            for component in levels[cn.node_id]:
                key = cn.key_from(component.values)
                old = engine.get(relation, key)
                if old is None:
                    if cn.is_pivot:
                        raise UpdateRejectedError(
                            f"complete deletion: pivot tuple {key!r} of "
                            f"{relation!r} does not exist",
                            relation=relation,
                        )
                    # A non-pivot island tuple may already be gone (stale
                    # instance); the cascade would have removed it anyway.
                    continue
                if use_fast:
                    fast_delete(relation, key)
                    plan.add(Delete(relation, key), cn.reason_cd_delete)
                    deleted.append((relation, old))
                else:
                    ctx.delete(relation, key, cn.reason_cd_delete)
        self._maintain_after_deletions(ctx)

    # -- VO-R ---------------------------------------------------------------

    def run_replacement(
        self, ctx: TranslationContext, old: Instance, new: Instance
    ) -> None:
        """Compiled twin of ``translate_replacement``."""
        with obs.tracer().span("validate", algorithm="VO-R"):
            validate_replacement(ctx, old, new)
        with obs.tracer().span("propagate", algorithm="VO-R") as span:
            new = propagate_within_object(ctx.view_object, new)
            self._walk(ctx, self.root, [old.root], [new.root], True)
            self._maintain_all(ctx)
            span.set(ops=len(ctx.plan))

    def _walk(
        self,
        ctx: TranslationContext,
        cn: CompiledNode,
        old_components: List[ComponentTuple],
        new_components: List[ComponentTuple],
        in_island: bool,
    ) -> None:
        pairs = self._align(cn, old_components, new_components)
        for old_component, new_component in pairs:
            if old_component is not None and new_component is not None:
                if in_island:
                    self._replace_case(ctx, cn, old_component, new_component)
                else:
                    self._insert_case(ctx, cn, old_component, new_component)
            elif new_component is None:
                self._removed_component(ctx, cn, old_component, in_island)
            else:
                self._added_component(ctx, cn, new_component, in_island)
            for child in cn.children:
                old_children = (
                    old_component.children.get(child.node_id, [])
                    if old_component is not None
                    else []
                )
                new_children = (
                    new_component.children.get(child.node_id, [])
                    if new_component is not None
                    else []
                )
                self._walk(ctx, child, old_children, new_children, child.in_island)

    @staticmethod
    def _align(
        cn: CompiledNode,
        old_components: List[ComponentTuple],
        new_components: List[ComponentTuple],
    ) -> List[Tuple[Optional[ComponentTuple], Optional[ComponentTuple]]]:
        old_by_key: Dict[Tuple[Any, ...], ComponentTuple] = {}
        for component in old_components:
            old_by_key[cn.key_from(component.values)] = component
        pairs: List[Tuple[Optional[ComponentTuple], Optional[ComponentTuple]]] = []
        unmatched_new: List[ComponentTuple] = []
        for component in new_components:
            key = cn.key_from(component.values)
            match = old_by_key.pop(key, None)
            if match is not None:
                pairs.append((match, component))
            else:
                unmatched_new.append(component)
        leftovers_old = [
            c for c in old_components if cn.key_from(c.values) in old_by_key
        ]
        for index in range(max(len(leftovers_old), len(unmatched_new))):
            pairs.append(
                (
                    leftovers_old[index] if index < len(leftovers_old) else None,
                    unmatched_new[index] if index < len(unmatched_new) else None,
                )
            )
        return pairs

    def _replace_case(
        self,
        ctx: TranslationContext,
        cn: CompiledNode,
        old_component: ComponentTuple,
        new_component: ComponentTuple,
    ) -> None:
        if old_component.values == new_component.values:
            return  # CASE R-1: the projections match exactly.
        relation = cn.relation
        old_key = cn.key_from(old_component.values)
        new_key = cn.key_from(new_component.values)
        existing = ctx.engine.get(relation, old_key)
        if existing is None:
            raise UpdateRejectedError(
                f"replacement: island tuple {old_key!r} of {relation!r} "
                f"no longer exists",
                relation=relation,
            )
        if old_key == new_key:
            # CASE R-2: the projections differ but the keys match.
            ctx.replace(
                relation,
                old_key,
                cn.merge_row(new_component.values, existing),
                cn.reason_r2,
            )
            return
        # CASE R-3: the projections differ and the keys differ.
        relation_policy = ctx.policy.for_relation(relation)
        if not relation_policy.allow_db_key_replacement:
            raise UpdateRejectedError(
                f"replacement changes the database key of {relation!r} "
                f"({old_key!r} -> {new_key!r}) but the translator prohibits "
                f"replacing database keys",
                relation=relation,
            )
        conflicting = ctx.engine.get(relation, new_key)
        if conflicting is not None:
            if not relation_policy.allow_merge_on_key_conflict:
                raise UpdateRejectedError(
                    f"replacement would delete {relation!r} tuple "
                    f"{old_key!r} and overwrite existing tuple {new_key!r}; "
                    f"the translator prohibits this merge",
                    relation=relation,
                )
            ctx.delete(relation, old_key, _R3_MERGE_DELETE)
            ctx.replace(
                relation,
                new_key,
                cn.merge_row(new_component.values, conflicting),
                _R3_MERGE_REPLACE,
            )
            return
        ctx.replace(
            relation,
            old_key,
            cn.merge_row(new_component.values, existing),
            cn.reason_r3_key,
        )

    def _insert_case(
        self,
        ctx: TranslationContext,
        cn: CompiledNode,
        old_component: ComponentTuple,
        new_component: ComponentTuple,
    ) -> None:
        relation = cn.relation
        old_key = cn.key_from(old_component.values)
        new_key = cn.key_from(new_component.values)
        relation_policy = ctx.policy.for_relation(relation)
        if old_key == new_key:
            # CASE I-1: the keys match — treat with the R rules.
            if old_component.values == new_component.values:
                return
            existing = ctx.engine.get(relation, old_key)
            if existing is None:
                self._added_component(ctx, cn, new_component, in_island=False)
                return
            if cn.projected_match(new_component.values, existing):
                return
            self._require_modify_and_replace(cn, relation_policy)
            ctx.replace(
                relation,
                old_key,
                cn.merge_row(new_component.values, existing),
                cn.reason_i1,
            )
            return
        self._added_component(ctx, cn, new_component, in_island=False)

    def _removed_component(
        self,
        ctx: TranslationContext,
        cn: CompiledNode,
        old_component: ComponentTuple,
        in_island: bool,
    ) -> None:
        if not in_island:
            return  # outside tuples survive; only the linkage changed
        key = cn.key_from(old_component.values)
        if ctx.engine.get(cn.relation, key) is not None:
            ctx.delete(cn.relation, key, cn.reason_removed)

    def _added_component(
        self,
        ctx: TranslationContext,
        cn: CompiledNode,
        new_component: ComponentTuple,
        in_island: bool,
    ) -> None:
        relation = cn.relation
        key = cn.key_from(new_component.values)
        existing = ctx.engine.get(relation, key)
        relation_policy = ctx.policy.for_relation(relation)
        if existing is None:
            # CASE I-2 (or an island component addition): insert.
            if not in_island and not (
                relation_policy.can_modify and relation_policy.can_insert
            ):
                raise UpdateRejectedError(
                    f"replacement needs a new tuple in {relation!r} but "
                    f"the translator does not allow insertions there",
                    relation=relation,
                )
            ctx.insert(
                relation,
                cn.complete_row(ctx, new_component.values),
                cn.reason_i2,
            )
        elif cn.projected_match(new_component.values, existing):
            return  # CASE I-3: identical tuple already present.
        else:
            # CASE I-4: present with conflicting values — replacement.
            if not in_island:
                self._require_modify_and_replace(cn, relation_policy)
            ctx.replace(
                relation,
                key,
                cn.merge_row(new_component.values, existing),
                cn.reason_i4,
            )

    @staticmethod
    def _require_modify_and_replace(cn: CompiledNode, relation_policy) -> None:
        if not (relation_policy.can_modify and relation_policy.can_replace_existing):
            raise UpdateRejectedError(
                f"replacement needs to modify an existing tuple of "
                f"{cn.relation!r} but the translator prohibits it",
                relation=cn.relation,
            )

    # -- global integrity (pre-resolved rules) -------------------------------

    def _maintain_after_deletions(self, ctx: TranslationContext) -> None:
        engine = ctx.engine
        deleted = ctx.deleted
        while ctx.deletion_cursor < len(deleted):
            relation, old_values = deleted[ctx.deletion_cursor]
            ctx.deletion_cursor += 1
            rules = self.rules[relation]
            for target, names, positions, key_of, reason in rules.cascade:
                entry = tuple(old_values[p] for p in positions)
                for values in engine.find_by(target, names, entry):
                    ctx.delete(target, key_of(values), reason)
            for (
                source,
                names,
                positions,
                key_of,
                source_positions,
                auto_nullify,
                reason_delete,
                reason_nullify,
                prohibit_msg,
            ) in rules.incoming_refs:
                entry = tuple(old_values[p] for p in positions)
                if any(v is None for v in entry):
                    continue
                referencing = engine.find_by(source, names, entry)
                if not referencing:
                    continue
                action = ctx.policy.for_relation(source).on_reference_delete
                if action is ReferenceRepair.AUTO:
                    action = (
                        ReferenceRepair.NULLIFY
                        if auto_nullify
                        else ReferenceRepair.DELETE
                    )
                for values in referencing:
                    key = key_of(values)
                    if action is ReferenceRepair.DELETE:
                        ctx.delete(source, key, reason_delete)
                    elif action is ReferenceRepair.NULLIFY:
                        row = list(values)
                        for p in source_positions:
                            row[p] = None
                        ctx.replace(source, key, tuple(row), reason_nullify)
                    else:  # PROHIBIT
                        raise UpdateRejectedError(prohibit_msg, relation=source)

    def _maintain_after_insertions(self, ctx: TranslationContext) -> None:
        inserted = ctx.inserted
        while ctx.insertion_cursor < len(inserted):
            relation, values = inserted[ctx.insertion_cursor]
            ctx.insertion_cursor += 1
            self._ensure_dependencies(ctx, self.rules[relation], values)
        for relation, old_values, new_values in ctx.replaced:
            rules = self.rules[relation]
            for positions in rules.ref_change_positions:
                changed = False
                for p in positions:
                    if old_values[p] != new_values[p]:
                        changed = True
                        break
                if changed:
                    self._ensure_dependencies(ctx, rules, new_values)
                    break

    def _ensure_dependencies(
        self,
        ctx: TranslationContext,
        rules: _RelationRules,
        values: Tuple[Any, ...],
    ) -> None:
        engine = ctx.engine
        for source, names, positions, skel, reason, by_key in rules.parents:
            entry = tuple(values[p] for p in positions)
            if any(v is None for v in entry):
                continue
            if by_key:
                if engine.get(source, entry) is None:
                    self._insert_skeleton(ctx, skel, names, entry, reason)
            elif not engine.find_by(source, names, entry):
                self._insert_skeleton(ctx, skel, names, entry, reason)
        for target, names, positions, skel, reason, by_key in rules.forward_refs:
            entry = tuple(values[p] for p in positions)
            if any(v is None for v in entry):
                continue
            if by_key:
                if engine.get(target, entry) is None:
                    self._insert_skeleton(ctx, skel, names, entry, reason)
            elif not engine.find_by(target, names, entry):
                self._insert_skeleton(ctx, skel, names, entry, reason)

    @staticmethod
    def _insert_skeleton(
        ctx: TranslationContext,
        skel: _Skeleton,
        attribute_names,
        entry: Tuple[Any, ...],
        reason: str,
    ) -> None:
        relation = skel.relation
        relation_policy = ctx.policy.for_relation(relation)
        if not (relation_policy.can_modify and relation_policy.can_insert):
            raise UpdateRejectedError(skel.prohibit_msg, relation=relation)
        completer = ctx.policy.completer
        if completer is not null_completer:
            partial = dict(zip(attribute_names, entry))
            completed = completer(relation, skel.schema, partial)
            ctx.insert(relation, skel.schema.row_from_mapping(completed), reason)
            return
        given = dict(zip(attribute_names, entry))
        row = []
        for name, nullable in skel.attr_plan:
            if name in given:
                row.append(given[name])
            elif nullable:
                row.append(None)
            else:
                raise UpdateRejectedError(
                    f"cannot extend view-object tuple for {relation!r}: "
                    f"attribute {name!r} was projected out and is "
                    f"not nullable (supply a completer)",
                    relation=relation,
                )
        ctx.insert(relation, tuple(row), reason)

    def _maintain_after_key_changes(self, ctx: TranslationContext) -> None:
        engine = ctx.engine
        key_changes = ctx.key_changes
        while ctx.key_change_cursor < len(key_changes):
            relation, old_key, new_key = key_changes[ctx.key_change_cursor]
            ctx.key_change_cursor += 1
            rules = self.rules[relation]
            for (
                source,
                names,
                key_positions,
                key_of,
                source_positions,
                prohibit_msg,
                reason_collide,
                reason_replace,
            ) in rules.retarget:
                old_entry = tuple(old_key[i] for i in key_positions)
                new_entry = tuple(new_key[i] for i in key_positions)
                referencing = engine.find_by(source, names, old_entry)
                if not referencing:
                    continue
                if not ctx.policy.for_relation(source).can_modify:
                    raise UpdateRejectedError(prohibit_msg, relation=source)
                for values in referencing:
                    key = key_of(values)
                    row = list(values)
                    for p, v in zip(source_positions, new_entry):
                        row[p] = v
                    new_values = tuple(row)
                    target_key = key_of(new_values)
                    if target_key != key and engine.contains(source, target_key):
                        ctx.delete(source, key, reason_collide)
                    else:
                        ctx.replace(source, key, new_values, reason_replace)
            for (
                target,
                names,
                key_positions,
                key_of,
                target_positions,
                reason_collide,
                reason_replace,
            ) in rules.propagate:
                old_entry = tuple(old_key[i] for i in key_positions)
                new_entry = tuple(new_key[i] for i in key_positions)
                if old_entry == new_entry:
                    continue
                for values in engine.find_by(target, names, old_entry):
                    key = key_of(values)
                    row = list(values)
                    for p, v in zip(target_positions, new_entry):
                        row[p] = v
                    new_values = tuple(row)
                    target_key = key_of(new_values)
                    if target_key != key and engine.contains(target, target_key):
                        ctx.delete(target, key, reason_collide)
                    else:
                        ctx.replace(target, key, new_values, reason_replace)

    def _maintain_all(self, ctx: TranslationContext) -> None:
        while True:
            self._maintain_after_deletions(ctx)
            self._maintain_after_key_changes(ctx)
            self._maintain_after_insertions(ctx)
            if (
                ctx.deletion_cursor >= len(ctx.deleted)
                and ctx.key_change_cursor >= len(ctx.key_changes)
                and ctx.insertion_cursor >= len(ctx.inserted)
            ):
                break

    # -- introspection -------------------------------------------------------

    def describe(self) -> str:
        """A readable summary of what was precomputed."""
        rule_count = sum(
            len(rules.cascade)
            + len(rules.incoming_refs)
            + len(rules.parents)
            + len(rules.forward_refs)
            + len(rules.retarget)
            + len(rules.propagate)
            for rules in self.rules.values()
        )
        lines = [
            f"compiled translator for {self.view_object.name!r}:",
            f"  nodes: {len(self.nodes_bfs)} "
            f"(island: {len(self.island_bfs)})",
            f"  visit order: "
            + " -> ".join(cn.node_id for cn in self.nodes_bfs),
            f"  pre-resolved integrity rules: {rule_count} "
            f"across {len(self.rules)} relations",
        ]
        return "\n".join(lines)


class CompiledCache:
    """Lazily built, shared holder of one translator's compiled program.

    One cache instance is shared by reference across every
    ``Translator.for_user`` copy, so the program is compiled at most
    once per view object regardless of how many bound copies serve
    concurrent requests. Safe under concurrent readers: the build is
    guarded by a lock and published via a single attribute store.
    """

    __slots__ = ("enabled", "program", "_lock")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.program: Optional[CompiledProgram] = None
        self._lock = threading.Lock()

    def program_for(
        self, view_object: ViewObjectDefinition, analysis: IslandAnalysis
    ) -> Optional[CompiledProgram]:
        """The compiled program, or None when compilation is disabled."""
        if not self.enabled:
            return None
        return self.ensure(view_object, analysis)

    def ensure(
        self, view_object: ViewObjectDefinition, analysis: IslandAnalysis
    ) -> CompiledProgram:
        """Build (once) and return the program, even when dispatch is off."""
        program = self.program
        if program is None:
            with self._lock:
                program = self.program
                if program is None:
                    program = CompiledProgram(view_object, analysis)
                    self.program = program
        return program


class CompiledTranslator:
    """Front door onto a translator's compiled program.

    Obtained via :meth:`Translator.compiled`. Exposes the program for
    inspection and :meth:`prepare_engine`, which warms a *specific
    engine* for this view object: prepared statement templates on the
    sqlite backend and secondary hash indexes on the assembly-join
    attributes. Engine preparation is deliberately explicit — creating
    an index changes the row order ``find_by`` returns on the in-memory
    backend, so plans translated against a prepared engine are only
    comparable with plans translated against the same prepared engine.
    """

    def __init__(self, translator) -> None:
        self.translator = translator
        self.program = translator._compiled.ensure(
            translator.view_object, translator.analysis
        )

    def prepare_engine(self, engine) -> None:
        """Warm ``engine`` for this view object's update workload."""
        graph = self.translator.view_object.graph
        prepare_relation = getattr(engine, "prepare_relation", None)
        if prepare_relation is not None:
            for name in graph.relation_names:
                prepare_relation(name)
        # Hash indexes on the attributes the assembly joins and the
        # integrity rules probe through find_by.
        for connection in graph.connections:
            engine.create_index(connection.source, connection.source_attributes)
            engine.create_index(connection.target, connection.target_attributes)

    def describe(self) -> str:
        return self.program.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTranslator({self.translator.view_object.name!r})"
