"""Algorithm VO-CD: translation of complete-deletion requests (§5.1).

    o Isolate the dependency island
    o For each projection in the island, delete all matching tuples
      from the underlying relation
    o Identify the referencing peninsulas
    o For each peninsula, perform a replacement on the foreign key of
      each matching tuple

"In a case where replacements are not allowed on any of the referencing
peninsulas, the transaction cannot be completed and has to be rolled
back." The peninsula repair — and the two global-integrity obligations
(cascade along outgoing ownership/subset connections; foreign-key
repairs on any other referencing relation) — are carried out by
:func:`~repro.core.updates.global_integrity.maintain_after_deletions`,
driven by the same policy the dialog configured.
"""

from __future__ import annotations

import repro.obs as obs
from repro.errors import UpdateRejectedError
from repro.core.instance import Instance
from repro.core.updates import global_integrity
from repro.core.updates.context import TranslationContext
from repro.core.updates.local_validation import validate_deletion

__all__ = ["translate_complete_deletion"]


def translate_complete_deletion(
    ctx: TranslationContext, instance: Instance
) -> None:
    """Run VO-CD for ``instance``; mutations are recorded in ``ctx``."""
    with obs.tracer().span("validate", algorithm="VO-CD"):
        validate_deletion(ctx, instance)
    with obs.tracer().span("propagate", algorithm="VO-CD") as span:
        _propagate_deletion(ctx, instance)
        span.set(ops=len(ctx.plan))


def _propagate_deletion(ctx: TranslationContext, instance: Instance) -> None:
    # Delete all matching tuples of every island projection, pivot first.
    for node_id in ctx.analysis.island_nodes:
        node = ctx.view_object.node(node_id)
        for component in instance.tuples_at(node_id):
            key = ctx.key_from_values(node_id, component.values)
            if ctx.engine.get(node.relation, key) is None:
                if node_id == ctx.view_object.pivot_node_id:
                    raise UpdateRejectedError(
                        f"complete deletion: pivot tuple {key!r} of "
                        f"{node.relation!r} does not exist",
                        relation=node.relation,
                    )
                # A non-pivot island tuple may already be gone (stale
                # instance); the cascade would have removed it anyway.
                continue
            ctx.delete(
                node.relation,
                key,
                reason=f"island deletion at node {node_id!r} (VO-CD)",
            )
    # Peninsula foreign-key repair, outgoing cascades, and repairs on
    # outside referencing relations: all reference- and
    # ownership/subset-rule maintenance to fixpoint.
    global_integrity.maintain_after_deletions(ctx)
