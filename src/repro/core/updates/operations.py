"""Update-request types (Section 5).

"A complete insertion adds to the database a fully specified view-object
instance. A complete deletion removes from the database a fully
specified view-object instance. A replacement combines a complete
deletion and a complete insertion; it needs a view-object instance and
its fully specified replacing instance."
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.instance import Instance

__all__ = [
    "UpdateRequest",
    "CompleteInsertion",
    "CompleteDeletion",
    "Replacement",
    "PartialInsertion",
    "PartialDeletion",
    "PartialUpdate",
]


class UpdateRequest:
    """Base class of all view-object update requests."""

    kind = "abstract"


class CompleteInsertion(UpdateRequest):
    """Add a fully specified instance to the database."""

    kind = "complete-insertion"
    __slots__ = ("instance",)

    def __init__(self, instance: Instance) -> None:
        self.instance = instance

    def __repr__(self) -> str:
        return f"CompleteInsertion(key={self.instance.key!r})"


class CompleteDeletion(UpdateRequest):
    """Remove a fully specified instance from the database."""

    kind = "complete-deletion"
    __slots__ = ("instance",)

    def __init__(self, instance: Instance) -> None:
        self.instance = instance

    def __repr__(self) -> str:
        return f"CompleteDeletion(key={self.instance.key!r})"


class Replacement(UpdateRequest):
    """Replace an instance with its fully specified replacement."""

    kind = "replacement"
    __slots__ = ("old", "new")

    def __init__(self, old: Instance, new: Instance) -> None:
        self.old = old
        self.new = new

    def __repr__(self) -> str:
        return f"Replacement({self.old.key!r} -> {self.new.key!r})"


class PartialInsertion(UpdateRequest):
    """Add one component tuple at a node of an existing instance."""

    kind = "partial-insertion"
    __slots__ = ("instance", "node_id", "values")

    def __init__(self, instance: Instance, node_id: str, values: Dict[str, Any]) -> None:
        self.instance = instance
        self.node_id = node_id
        self.values = values

    def __repr__(self) -> str:
        return f"PartialInsertion({self.node_id!r} on {self.instance.key!r})"


class PartialDeletion(UpdateRequest):
    """Remove one component tuple at a node of an existing instance."""

    kind = "partial-deletion"
    __slots__ = ("instance", "node_id", "values")

    def __init__(self, instance: Instance, node_id: str, values: Dict[str, Any]) -> None:
        self.instance = instance
        self.node_id = node_id
        self.values = values

    def __repr__(self) -> str:
        return f"PartialDeletion({self.node_id!r} on {self.instance.key!r})"


class PartialUpdate(UpdateRequest):
    """Modify nonkey attributes of one component tuple."""

    kind = "partial-update"
    __slots__ = ("instance", "node_id", "old_values", "new_values")

    def __init__(
        self,
        instance: Instance,
        node_id: str,
        old_values: Dict[str, Any],
        new_values: Dict[str, Any],
    ) -> None:
        self.instance = instance
        self.node_id = node_id
        self.old_values = old_values
        self.new_values = new_values

    def __repr__(self) -> str:
        return f"PartialUpdate({self.node_id!r} on {self.instance.key!r})"
