"""The view-object update translator.

"Once the DBA has chosen the translator, users can specify updates
through the view object, which are then translated into database update
operations." A :class:`Translator` binds a view object to a
:class:`~repro.core.updates.policy.TranslatorPolicy` and exposes the
three complete operations plus the partial ones. Every call runs inside
an engine transaction: if any step rejects the update, the transaction
is rolled back and nothing is left behind — the paper's all-or-nothing
behaviour.

Each call returns the :class:`~repro.relational.operations.UpdatePlan`
that was applied (the "set of database operations"), with a reason
attached to every operation for auditability.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import repro.obs as obs
from repro.errors import GlobalValidationError, UpdateError
from repro.core.dependency_island import analyze_island
from repro.core.instance import Instance, build_instance
from repro.core.instantiation import Instantiator
from repro.core.updates.bulk import BufferedEngine
from repro.core.updates.compiled import CompiledCache, CompiledTranslator
from repro.core.updates.context import TranslationContext
from repro.core.updates.deletion import translate_complete_deletion
from repro.core.updates.insertion import translate_complete_insertion
from repro.core.updates.policy import TranslatorPolicy
from repro.core.updates.replacement import translate_replacement
from repro.core.view_object import ViewObjectDefinition
from repro.obs.audit import AuditLog
from repro.obs.audit import COMMITTED as AUDIT_COMMITTED
from repro.obs.audit import CRASHED as AUDIT_CRASHED
from repro.obs.audit import ROLLED_BACK as AUDIT_ROLLED_BACK
from repro.obs.explain import TranslationExplanation
from repro.relational.engine import Engine
from repro.relational.journal import (
    Images,
    PlanJournal,
    images_from_records,
    plan_images,
)
from repro.relational.operations import UpdatePlan, coalesce_plans
from repro.structural.integrity import IntegrityChecker

__all__ = ["Translator"]

InstanceLike = Union[Instance, Mapping[str, Any]]

# The process-wide default for Translator(compile_plans=None): True runs
# complete operations through the compiled plan builders, False forces
# the interpreted tree walk everywhere. An explicit argument always
# wins; the flag is the operational kill switch, and lets the test
# suite sweep every semantic test across both implementations.
COMPILE_PLANS_DEFAULT = True

# The process-wide default for Translator(strictness=None). "warn"
# runs the static strategy checker at construction and emits a
# StrategyWarning for CRITICAL configurations; "refuse" raises
# UnsafeTranslatorError instead (no CRITICAL config ever reaches a
# CompiledProgram); "off" skips the definition-time check entirely.
STRICTNESS_DEFAULT = "warn"

_STRICTNESS_VALUES = ("off", "warn", "refuse")


class Translator:
    """Translates updates on one view object into database operations.

    Parameters
    ----------
    view_object:
        The object this translator serves.
    policy:
        The semantics chosen at definition time (dialog output). The
        default is fully permissive.
    verify_integrity:
        When True, every successful translation is followed by a full
        structural-integrity check of the database; a violation raises
        :class:`GlobalValidationError` and rolls the transaction back.
        This is the belt-and-braces mode used by the test suite and the
        integrity ablation.
    journal:
        An optional :class:`~repro.relational.journal.PlanJournal`.
        When set, every top-level translated plan is journaled as a
        write-ahead intent (PENDING before application, COMMITTED
        after), so a crash mid-apply can be resolved by
        :func:`repro.relational.journal.recover`.
    audit:
        An optional :class:`~repro.obs.audit.AuditLog`. When set, every
        top-level view-level update is recorded with its coalesced plan,
        before/after images, dependency island, policy answers, and
        outcome (committed / rolled back / crashed) — the provenance
        trail behind :class:`~repro.obs.lineage.LineageIndex` and
        :func:`~repro.obs.history.replay`.
    compile_plans:
        When True, the complete operations run through a
        :class:`~repro.core.updates.compiled.CompiledProgram` built
        lazily once per view object — the translator is fixed at
        definition time (§6), so the tree walk, island membership, and
        integrity rules are precomputed instead of re-derived per call.
        The compiled path produces byte-identical plans; set False to
        force the interpreted tree walk (the equivalence oracle). The
        default ``None`` defers to the module-level
        :data:`COMPILE_PLANS_DEFAULT` (True).
    """

    def __init__(
        self,
        view_object: ViewObjectDefinition,
        policy: Optional[TranslatorPolicy] = None,
        verify_integrity: bool = False,
        user: Optional[str] = None,
        journal: Optional[PlanJournal] = None,
        audit: Optional[AuditLog] = None,
        compile_plans: Optional[bool] = None,
        strictness: Optional[str] = None,
    ) -> None:
        self.view_object = view_object
        self.policy = policy or TranslatorPolicy.permissive()
        self.analysis = analyze_island(view_object)
        self.verify_integrity = verify_integrity
        self.user = user
        self.journal = journal
        self.audit = audit
        self._policy_dict: Optional[Dict[str, Any]] = None
        self._instantiator = Instantiator(view_object)
        self._checker = IntegrityChecker(view_object.graph)
        if compile_plans is None:
            compile_plans = COMPILE_PLANS_DEFAULT
        self._compiled = CompiledCache(enabled=compile_plans)
        if strictness is None:
            strictness = STRICTNESS_DEFAULT
        if strictness not in _STRICTNESS_VALUES:
            raise ValueError(
                f"strictness must be one of {_STRICTNESS_VALUES}, "
                f"got {strictness!r}"
            )
        self.strictness = strictness
        self._risk_report = None
        if strictness != "off":
            self._enforce_strictness()

    def _enforce_strictness(self) -> None:
        """Definition-time strategy validation (§6 happens once; so does
        this): compute the risk report, then warn or refuse on CRITICAL
        before any plan — compiled or interpreted — can be built."""
        report = self.risk()
        if not report.is_critical:
            return
        worst = "; ".join(
            f.describe() for f in report.at_least(report.level)[:3]
        )
        if self.strictness == "refuse":
            from repro.errors import UnsafeTranslatorError

            raise UnsafeTranslatorError(
                f"translator for {self.view_object.name!r} refused at "
                f"definition time (strictness='refuse'): {worst}",
                report=report,
            )
        import warnings

        from repro.strategy.risk import StrategyWarning

        warnings.warn(
            f"translator for {self.view_object.name!r} is CRITICAL: {worst}",
            StrategyWarning,
            stacklevel=3,
        )

    def risk(self):
        """The static strategy checker's verdict on this configuration
        (:class:`~repro.strategy.risk.RiskReport`), computed once at
        definition time and cached."""
        if self._risk_report is None:
            from repro.strategy.checks import check_strategy

            self._risk_report = check_strategy(
                self.view_object, self.policy, self.analysis
            )
        return self._risk_report

    def for_user(self, user: Optional[str]) -> "Translator":
        """This translator bound to a specific user.

        Step 1 of the paper checks "structural restrictions and user
        authorizations": when the policy names authorized users, updates
        from anyone else are rejected before translation starts.
        """
        bound = Translator.__new__(Translator)
        bound.view_object = self.view_object
        bound.policy = self.policy
        bound.analysis = self.analysis
        bound.verify_integrity = self.verify_integrity
        bound.user = user
        bound.journal = self.journal
        bound.audit = self.audit
        bound._policy_dict = self._policy_dict
        bound._instantiator = self._instantiator
        bound._checker = self._checker
        bound.strictness = self.strictness
        bound._risk_report = self._risk_report
        # Shared *by reference*: every bound copy dispatches through the
        # same lazily built program instead of recompiling per user.
        bound._compiled = self._compiled
        return bound

    # -- compiled dispatch ---------------------------------------------------

    def compiled(self) -> CompiledTranslator:
        """The compiled front door: program introspection and explicit
        engine preparation (prepared sqlite statements, assembly-join
        hash indexes). Forces compilation even when dispatch is off."""
        return CompiledTranslator(self)

    def _translate_insertion(
        self, ctx: TranslationContext, instance: Instance
    ) -> None:
        program = self._compiled.program_for(self.view_object, self.analysis)
        if program is None:
            translate_complete_insertion(ctx, instance)
        else:
            program.run_insertion(ctx, instance)

    def _translate_deletion(
        self, ctx: TranslationContext, instance: Instance
    ) -> None:
        program = self._compiled.program_for(self.view_object, self.analysis)
        if program is None:
            translate_complete_deletion(ctx, instance)
        else:
            program.run_deletion(ctx, instance)

    def _translate_replacement(
        self, ctx: TranslationContext, old: Instance, new: Instance
    ) -> None:
        program = self._compiled.program_for(self.view_object, self.analysis)
        if program is None:
            translate_replacement(ctx, old, new)
        else:
            program.run_replacement(ctx, old, new)

    def translate(
        self, engine: Engine, request: "UpdateRequest"
    ) -> UpdatePlan:
        """Translate one request into its plan without applying it.

        The request runs over a :class:`BufferedEngine` overlay — the
        base engine is never touched, no transaction is opened, nothing
        is journaled or audited. This is the bare per-update translate
        path (and what :file:`benchmarks/bench_translate.py` measures);
        :meth:`apply_plan` is the matching flush half.
        """
        buffered = BufferedEngine(engine)
        ctx = TranslationContext(
            self.view_object, buffered, self.policy, self.analysis
        )
        self._translate_request(ctx, request)
        return ctx.plan

    # -- public operations ---------------------------------------------------

    def insert(self, engine: Engine, instance: InstanceLike) -> UpdatePlan:
        """Complete insertion of a fully specified instance."""
        instance = self._coerce_instance(instance)
        return self._run(
            engine,
            lambda ctx: self._translate_insertion(ctx, instance),
            op="insert",
        )

    def delete(
        self,
        engine: Engine,
        instance: Union[InstanceLike, Sequence[Any], None] = None,
        key: Optional[Sequence[Any]] = None,
    ) -> UpdatePlan:
        """Complete deletion, by instance or by object key."""
        if key is not None:
            instance = self.instantiate(engine, key)
        elif not isinstance(instance, (Instance, Mapping)):
            instance = self.instantiate(engine, instance)
        instance = self._coerce_instance(instance)
        return self._run(
            engine,
            lambda ctx: self._translate_deletion(ctx, instance),
            op="delete",
        )

    def replace(
        self,
        engine: Engine,
        old: Union[InstanceLike, Sequence[Any]],
        new: InstanceLike,
    ) -> UpdatePlan:
        """Replacement: old instance (or its key) and its replacement."""
        if not isinstance(old, (Instance, Mapping)):
            old = self.instantiate(engine, old)
        old = self._coerce_instance(old)
        new = self._coerce_instance(new)
        return self._run(
            engine,
            lambda ctx: self._translate_replacement(ctx, old, new),
            op="replace",
        )

    # -- batched operations --------------------------------------------------------

    def insert_many(
        self, engine: Engine, instances: Iterable[InstanceLike]
    ) -> UpdatePlan:
        """Complete insertion of a batch, as one coalesced plan.

        Each instance is translated by the standard VO-CI algorithm over
        a :class:`BufferedEngine` overlay, so instances later in the
        batch observe the effects of earlier ones exactly as a
        sequential loop would. The per-instance plans are then coalesced
        and flushed to ``engine`` through its batch primitives in one
        transaction: the batch is all-or-nothing, and any rejection
        leaves the database untouched.
        """
        items = [self._coerce_instance(instance) for instance in instances]
        return self._run_batch(
            engine,
            items,
            lambda ctx, instance: self._translate_insertion(ctx, instance),
            op="insert",
        )

    def delete_many(
        self,
        engine: Engine,
        instances: Optional[Iterable[Union[InstanceLike, Sequence[Any]]]] = None,
        keys: Optional[Iterable[Sequence[Any]]] = None,
    ) -> UpdatePlan:
        """Complete deletion of a batch (by instance or by object key)."""
        if keys is not None:
            items = [self.instantiate(engine, key) for key in keys]
        else:
            items = [
                self._resolve_instance(engine, instance)
                for instance in (instances or [])
            ]
        return self._run_batch(
            engine,
            items,
            lambda ctx, instance: self._translate_deletion(ctx, instance),
            op="delete",
        )

    def apply_plan_batch(
        self, engine: Engine, requests: Iterable["UpdateRequest"]
    ) -> UpdatePlan:
        """Translate a batch of :class:`UpdateRequest` objects into one
        coalesced plan and apply it atomically.

        Requests may mix kinds (insertions, deletions, replacements, and
        the partial operations); each is translated in order over the
        shared buffer, so later requests see earlier effects.
        """
        requests = list(requests)
        instances = [
            getattr(request, "instance", None) or getattr(request, "old", None)
            for request in requests
        ]
        return self._run_batch(
            engine,
            requests,
            self._translate_request,
            prewarm=[i for i in instances if isinstance(i, Instance)],
            op="batch",
        )

    def apply_plan(
        self,
        engine: Engine,
        plan: UpdatePlan,
        op: str = "update",
        items: int = 1,
    ) -> UpdatePlan:
        """Journal, apply, and audit an already-translated coalesced plan.

        The flush half of :meth:`_run_batch`, for callers that produced
        the plan elsewhere — :meth:`explain` / :meth:`explain_batch` run
        the full translation pipeline over a buffer, and a shard
        coordinator partitions the result before applying each piece on
        its owning engine through this method. The base engine must be
        in the same state translation observed (the plan's before-images
        are read here, ahead of the first operation).
        """
        journal = self._active_journal(engine, need_changelog=False)
        audit = self._active_audit(engine)
        registry = obs.metrics()
        with obs.tracer().span(
            "apply_plan", object=self.view_object.name, op=op, ops=len(plan)
        ):
            images = (
                plan_images(engine, plan)
                if journal is not None or audit is not None
                else None
            )
            entry_id = None
            if journal is not None:
                entry_id = journal.begin(
                    plan, images, label=self.view_object.name
                )
            try:
                engine.apply_batch(plan.operations)
            except Exception as exc:
                # apply_batch rolled its transaction back: nothing landed.
                if entry_id is not None:
                    journal.mark_aborted(entry_id)
                registry.counter("translation_failures_total", op=op).inc()
                if audit is not None:
                    self._audit(
                        audit, op, AUDIT_ROLLED_BACK, plan=plan, items=items,
                        error=exc, journal_entry=entry_id,
                    )
                raise
            except BaseException as exc:
                if audit is not None:
                    self._audit(
                        audit, op, AUDIT_CRASHED, plan=plan, images=images,
                        items=items, error=exc, journal_entry=entry_id,
                    )
                raise
            if entry_id is not None:
                journal.mark_committed(entry_id)
            if audit is not None:
                self._audit(
                    audit, op, AUDIT_COMMITTED, plan=plan, images=images,
                    items=items, journal_entry=entry_id,
                )
            registry.counter("translations_total", op=op).inc()
            registry.histogram("plan_ops", op=op).observe(len(plan))
        return plan

    def _translate_request(
        self, ctx: TranslationContext, request: "UpdateRequest"
    ) -> None:
        """Dispatch one request against an in-flight batch context."""
        from repro.core.updates.operations import (
            CompleteDeletion,
            CompleteInsertion,
            PartialDeletion,
            PartialInsertion,
            PartialUpdate,
            Replacement,
        )

        def resolve(instance):
            if isinstance(instance, (Instance, Mapping)):
                return self._coerce_instance(instance)
            # Resolve keys against the buffer so earlier requests in the
            # batch are visible.
            return self.instantiate(ctx.engine, instance)

        if isinstance(request, CompleteInsertion):
            self._translate_insertion(ctx, resolve(request.instance))
        elif isinstance(request, CompleteDeletion):
            self._translate_deletion(ctx, resolve(request.instance))
        elif isinstance(request, Replacement):
            self._translate_replacement(
                ctx, resolve(request.old), self._coerce_instance(request.new)
            )
        elif isinstance(request, PartialInsertion):
            from repro.core.updates.partial import translate_partial_insertion

            translate_partial_insertion(
                ctx, resolve(request.instance), request.node_id, request.values
            )
        elif isinstance(request, PartialDeletion):
            from repro.core.updates.partial import translate_partial_deletion

            translate_partial_deletion(
                ctx, resolve(request.instance), request.node_id, request.values
            )
        elif isinstance(request, PartialUpdate):
            from repro.core.updates.partial import translate_partial_update

            translate_partial_update(
                ctx,
                resolve(request.instance),
                request.node_id,
                request.old_values,
                request.new_values,
            )
        else:
            raise UpdateError(f"unknown update request: {request!r}")

    def _run_batch(
        self,
        engine: Engine,
        items: List[Any],
        translate_one: Callable[[TranslationContext, Any], None],
        prewarm: Optional[List[Instance]] = None,
        op: str = "batch",
    ) -> UpdatePlan:
        if not self.policy.authorizes(self.user):
            from repro.errors import LocalValidationError

            raise LocalValidationError(
                f"user {self.user!r} is not authorized to update through "
                f"view object {self.view_object.name!r}"
            )
        tracer = obs.tracer()
        registry = obs.metrics()
        with tracer.span(
            "translate.batch",
            object=self.view_object.name,
            op=op,
            items=len(items),
        ) as root:
            buffered = BufferedEngine(engine)
            warm = prewarm if prewarm is not None else [
                item for item in items if isinstance(item, Instance)
            ]
            self._prewarm(buffered, warm)
            plans = []
            try:
                for item in items:
                    ctx = TranslationContext(
                        self.view_object, buffered, self.policy, self.analysis
                    )
                    with tracer.span("translate", op=op):
                        translate_one(ctx, item)
                    plans.append(ctx.plan)
                if self.verify_integrity:
                    with tracer.span("verify"):
                        violations = self._checker.check(buffered)
                    if violations:
                        raise GlobalValidationError(
                            f"batch translation left {len(violations)} "
                            f"integrity violations: "
                            + "; ".join(v.message for v in violations[:5])
                        )
            except Exception as exc:
                registry.counter("translation_failures_total", op=op).inc()
                audit = self._active_audit(engine)
                if audit is not None:
                    self._audit(
                        audit, op, AUDIT_ROLLED_BACK, items=len(items),
                        error=exc,
                    )
                raise
            # Nothing touched the real engine yet: a failure above simply
            # discards the overlay. The flush below is one transaction.
            journal = self._active_journal(engine, need_changelog=False)
            audit = self._active_audit(engine)
            with tracer.span("coalesce") as fold:
                combined = coalesce_plans(plans, engine.schema)
                fold.set(
                    ops_before=sum(len(plan) for plan in plans),
                    ops_after=len(combined),
                )
            root.set(ops=len(combined), journaled=journal is not None)
            if journal is None and audit is None:
                with tracer.span("engine.apply", ops=len(combined)):
                    engine.apply_batch(combined.operations)
                registry.counter("translations_total", op=op).inc()
                registry.histogram("plan_ops", op=op).observe(len(combined))
                return combined
            # Journaled/audited flush: the base engine is still
            # unmutated, so the before-images can be read directly; the
            # intent is durable before the first operation lands.
            images = plan_images(engine, combined)
            entry_id = None
            if journal is not None:
                entry_id = journal.begin(
                    combined, images, label=self.view_object.name
                )
            try:
                with tracer.span("engine.apply", ops=len(combined)):
                    engine.apply_batch(combined.operations)
            except Exception as exc:
                # apply_batch rolled the transaction back: nothing landed.
                if entry_id is not None:
                    journal.mark_aborted(entry_id)
                registry.counter("translation_failures_total", op=op).inc()
                if audit is not None:
                    self._audit(
                        audit, op, AUDIT_ROLLED_BACK, plan=combined,
                        items=len(items), error=exc, journal_entry=entry_id,
                    )
                raise
            except BaseException as exc:
                # A crash mid-apply: the journal entry (if any) stays
                # PENDING for recovery; the audit record says ``crashed``
                # until reconciliation settles it.
                if audit is not None:
                    self._audit(
                        audit, op, AUDIT_CRASHED, plan=combined,
                        images=images, items=len(items), error=exc,
                        journal_entry=entry_id,
                    )
                raise
            if entry_id is not None:
                journal.mark_committed(entry_id)
            if audit is not None:
                self._audit(
                    audit, op, AUDIT_COMMITTED, plan=combined, images=images,
                    items=len(items), journal_entry=entry_id,
                )
            registry.counter("translations_total", op=op).inc()
            registry.histogram("plan_ops", op=op).observe(len(combined))
            return combined

    def _prewarm(self, buffered: BufferedEngine, instances: List[Instance]) -> None:
        """Batch-load every component key the translations will probe.

        Only worthwhile when the base engine actually batches lookups
        (sqlite's ``IN`` queries); against a plain dict-backed engine the
        pre-pass would just double the number of point reads.
        """
        if type(buffered.base).get_many is Engine.get_many:
            return
        keys_by_relation: Dict[str, List[Any]] = {}
        for instance in instances:
            for node_id, components in instance.iter_nodes():
                node = self.view_object.node(node_id)
                schema = self.view_object.graph.relation(node.relation)
                for component in components:
                    try:
                        key = tuple(component.values[k] for k in schema.key)
                    except KeyError:
                        continue
                    keys_by_relation.setdefault(node.relation, []).append(key)
        for relation, keys in keys_by_relation.items():
            buffered.prime(relation, keys)

    # -- partial operations --------------------------------------------------------

    def insert_component(
        self,
        engine: Engine,
        instance: Union[InstanceLike, Sequence[Any]],
        node_id: str,
        values: Dict[str, Any],
    ) -> UpdatePlan:
        """Partial insertion: add one component tuple at ``node_id``."""
        from repro.core.updates.partial import translate_partial_insertion

        instance = self._resolve_instance(engine, instance)
        return self._run(
            engine,
            lambda ctx: translate_partial_insertion(
                ctx, instance, node_id, values
            ),
            op="partial_insert",
        )

    def delete_component(
        self,
        engine: Engine,
        instance: Union[InstanceLike, Sequence[Any]],
        node_id: str,
        values: Dict[str, Any],
    ) -> UpdatePlan:
        """Partial deletion: remove one component tuple at ``node_id``."""
        from repro.core.updates.partial import translate_partial_deletion

        instance = self._resolve_instance(engine, instance)
        return self._run(
            engine,
            lambda ctx: translate_partial_deletion(
                ctx, instance, node_id, values
            ),
            op="partial_delete",
        )

    def update_component(
        self,
        engine: Engine,
        instance: Union[InstanceLike, Sequence[Any]],
        node_id: str,
        old_values: Dict[str, Any],
        new_values: Dict[str, Any],
    ) -> UpdatePlan:
        """Partial update: modify one component tuple's nonkey attributes."""
        from repro.core.updates.partial import translate_partial_update

        instance = self._resolve_instance(engine, instance)
        return self._run(
            engine,
            lambda ctx: translate_partial_update(
                ctx, instance, node_id, old_values, new_values
            ),
            op="partial_update",
        )

    # -- helpers -----------------------------------------------------------------

    def _resolve_instance(
        self, engine: Engine, instance: Union[InstanceLike, Sequence[Any]]
    ) -> Instance:
        if isinstance(instance, (Instance, Mapping)):
            return self._coerce_instance(instance)
        return self.instantiate(engine, instance)

    def instantiate(self, engine: Engine, key: Sequence[Any]) -> Instance:
        """Fetch the current instance with object key ``key``."""
        instance = self._instantiator.by_key(engine, key)
        if instance is None:
            raise UpdateError(
                f"view object {self.view_object.name!r}: no instance with "
                f"key {tuple(key)!r}"
            )
        return instance

    def _coerce_instance(self, instance: InstanceLike) -> Instance:
        if isinstance(instance, Instance):
            return instance
        return build_instance(self.view_object, instance)

    def _active_journal(
        self, engine: Engine, need_changelog: bool = True
    ) -> Optional[PlanJournal]:
        """The journal to write through, or None when journaling is off.

        Only *top-level* plans are journaled: inside an enclosing
        transaction the outer scope owns atomicity (and could roll an
        inner entry's effects back after it was marked COMMITTED). The
        eager path additionally needs the engine's changelog to
        reconstruct before-images.
        """
        if self.journal is None:
            return None
        if getattr(engine, "in_transaction", False):
            return None
        if need_changelog and engine.changelog is None:
            return None
        return self.journal

    def _active_audit(self, engine: Engine) -> Optional[AuditLog]:
        """The audit log to record into, or None when auditing is off.

        Mirrors :meth:`_active_journal`: only *top-level* updates are
        audited. Inside an enclosing transaction (``delete_where`` /
        ``update_where`` looping over :meth:`delete` / :meth:`replace`,
        or a user-opened :meth:`Penguin.transaction` block) the outer
        scope owns the view-level operation and audits it once.
        """
        if self.audit is None:
            return None
        if getattr(engine, "in_transaction", False):
            return None
        return self.audit

    def _policy_answers(self) -> Dict[str, Any]:
        """The policy's dialog answers as JSON-safe data, cached."""
        if self._policy_dict is None:
            from repro.core.serialization import policy_to_dict

            self._policy_dict = policy_to_dict(self.policy)
        return self._policy_dict

    def _audit(
        self,
        audit: AuditLog,
        op: str,
        outcome: str,
        plan: Optional[UpdatePlan] = None,
        images: Optional[Images] = None,
        items: int = 1,
        error: Optional[BaseException] = None,
        journal_entry: Optional[int] = None,
    ) -> int:
        asn = audit.append(
            op=op,
            object_name=self.view_object.name,
            outcome=outcome,
            plan=plan,
            images=images,
            island=self.analysis.island_relations,
            policy=self._policy_answers(),
            user=self.user,
            items=items,
            error=None if error is None else f"{type(error).__name__}: {error}",
            journal_entry=journal_entry,
        )
        # Trace -> audit cross-link: the record already carries the
        # ambient trace id; stamping the ASN on the enclosing span lets
        # an assembled trace surface its audit records too.
        span = obs.tracer().current
        if span is not None:
            span.set(asn=asn)
        return asn

    def _finalize(
        self,
        engine: Engine,
        journal: Optional[PlanJournal],
        audit: Optional[AuditLog],
        images: Optional[Images],
        plan: UpdatePlan,
        op: str,
        items: int = 1,
    ) -> None:
        """Write the PENDING intent, commit, then record the outcome.

        Called with the transaction still open and every effect already
        applied; ``images`` carry the before/after cells (reconstructed
        from the changelog since the live engine can no longer provide
        them). A failed commit (already rolled back by
        ``_finish_commit``) marks the journal entry ABORTED and audits
        the update as rolled back; a simulated crash — a
        ``BaseException`` — leaves the entry PENDING for recovery and
        audits the update as crashed, to be reconciled once recovery
        settles its fate.
        """
        entry_id = None
        if journal is not None:
            entry_id = journal.begin(plan, images, label=self.view_object.name)
        try:
            engine._finish_commit()
        except Exception as exc:
            if entry_id is not None:
                journal.mark_aborted(entry_id)
            if audit is not None:
                self._audit(
                    audit, op, AUDIT_ROLLED_BACK, plan=plan, items=items,
                    error=exc, journal_entry=entry_id,
                )
            raise
        except BaseException as exc:
            if audit is not None:
                self._audit(
                    audit, op, AUDIT_CRASHED, plan=plan, images=images,
                    items=items, error=exc, journal_entry=entry_id,
                )
            raise
        if entry_id is not None:
            journal.mark_committed(entry_id)
        if audit is not None:
            self._audit(
                audit, op, AUDIT_COMMITTED, plan=plan, images=images,
                items=items, journal_entry=entry_id,
            )

    def _run(
        self,
        engine: Engine,
        translation,
        preview: bool = False,
        op: str = "update",
    ) -> UpdatePlan:
        if not self.policy.authorizes(self.user):
            from repro.errors import LocalValidationError

            raise LocalValidationError(
                f"user {self.user!r} is not authorized to update through "
                f"view object {self.view_object.name!r}"
            )
        ctx = TranslationContext(
            self.view_object, engine, self.policy, self.analysis
        )
        journal = None if preview else self._active_journal(engine)
        audit = None if preview else self._active_audit(engine)
        # The eager path needs the changelog to reconstruct before/after
        # images; both the journal and the audit log consume them.
        use_changelog = journal is not None or (
            audit is not None and engine.changelog is not None
        )
        mark = engine.changelog.mark() if use_changelog else None
        tracer = obs.tracer()
        registry = obs.metrics()
        with tracer.span(
            "translate",
            object=self.view_object.name,
            op=op,
            preview=preview,
        ) as span:
            engine.begin()
            try:
                translation(ctx)
                if self.verify_integrity:
                    with tracer.span("verify"):
                        violations = self._checker.check(engine)
                    if violations:
                        raise GlobalValidationError(
                            f"translation left {len(violations)} integrity "
                            f"violations: "
                            + "; ".join(v.message for v in violations[:5])
                        )
            except Exception as exc:
                engine.rollback()
                registry.counter("translation_failures_total", op=op).inc()
                if audit is not None:
                    self._audit(
                        audit, op, AUDIT_ROLLED_BACK, plan=ctx.plan, error=exc
                    )
                raise
            except BaseException as exc:
                # A (simulated) crash mid-translation: no rollback — the
                # state is left torn for recovery, and the audit record
                # says so. No journal entry exists yet, so the record
                # stays ``crashed`` (recovery discards the transaction,
                # reverting the effects; replay rightly excludes it).
                if audit is not None:
                    self._audit(
                        audit, op, AUDIT_CRASHED, plan=ctx.plan, error=exc
                    )
                raise
            span.set(ops=len(ctx.plan), journaled=journal is not None)
            if preview:
                engine.rollback()
                registry.counter("translation_previews_total", op=op).inc()
            else:
                images = None
                if use_changelog:
                    images = images_from_records(
                        engine, engine.changelog.since(mark)
                    )
                with tracer.span("commit", ops=len(ctx.plan)):
                    self._finalize(engine, journal, audit, images, ctx.plan, op)
                registry.counter("translations_total", op=op).inc()
                registry.histogram("plan_ops", op=op).observe(len(ctx.plan))
        return ctx.plan

    # -- previews (translate, report the plan, change nothing) ----------------

    def preview_insert(self, engine: Engine, instance: InstanceLike) -> UpdatePlan:
        """The plan :meth:`insert` would apply, with the database untouched."""
        instance = self._coerce_instance(instance)
        return self._run(
            engine,
            lambda ctx: self._translate_insertion(ctx, instance),
            preview=True,
            op="insert",
        )

    def preview_delete(
        self,
        engine: Engine,
        instance: Union[InstanceLike, Sequence[Any], None] = None,
        key: Optional[Sequence[Any]] = None,
    ) -> UpdatePlan:
        """The plan :meth:`delete` would apply, with the database untouched."""
        if key is not None:
            instance = self.instantiate(engine, key)
        elif not isinstance(instance, (Instance, Mapping)):
            instance = self.instantiate(engine, instance)
        instance = self._coerce_instance(instance)
        return self._run(
            engine,
            lambda ctx: self._translate_deletion(ctx, instance),
            preview=True,
            op="delete",
        )

    def preview_replace(
        self,
        engine: Engine,
        old: Union[InstanceLike, Sequence[Any]],
        new: InstanceLike,
    ) -> UpdatePlan:
        """The plan :meth:`replace` would apply, with the database untouched."""
        if not isinstance(old, (Instance, Mapping)):
            old = self.instantiate(engine, old)
        old = self._coerce_instance(old)
        new = self._coerce_instance(new)
        return self._run(
            engine,
            lambda ctx: self._translate_replacement(ctx, old, new),
            preview=True,
            op="replace",
        )

    # -- EXPLAIN (translate over an overlay, execute nothing) ------------------

    def explain(
        self, engine: Engine, request: "UpdateRequest"
    ) -> TranslationExplanation:
        """The would-be plan of one update request, without executing it.

        The request runs through the real VO-CI / VO-CD / VO-R code over
        a :class:`BufferedEngine` overlay, so the reported operations,
        relations, and CASE reasons are exactly what :meth:`apply` would
        produce against the current database — but the base engine is
        never touched. The counterpart of
        :func:`repro.core.query.explain_query` for updates.
        """
        return self._explain(engine, [request])

    def explain_batch(
        self, engine: Engine, requests: Iterable["UpdateRequest"]
    ) -> TranslationExplanation:
        """The coalesced would-be plan of a batch, without executing it."""
        return self._explain(engine, list(requests))

    def _explain(
        self, engine: Engine, requests: List["UpdateRequest"]
    ) -> TranslationExplanation:
        operation = self._describe_requests(requests)
        with obs.tracer().span(
            "explain",
            object=self.view_object.name,
            op=operation,
            items=len(requests),
        ) as span:
            buffered = BufferedEngine(engine)
            plans: List[UpdatePlan] = []
            for request in requests:
                ctx = TranslationContext(
                    self.view_object, buffered, self.policy, self.analysis
                )
                self._translate_request(ctx, request)
                plans.append(ctx.plan)
            combined = UpdatePlan()
            for plan in plans:
                combined.extend(plan)
            coalesced = coalesce_plans(plans, engine.schema)
            span.set(ops=len(combined))
        obs.metrics().counter("explains_total", op=operation).inc()
        touched = set(combined.relations_touched())
        rules = []
        for connection in self.view_object.graph.connections:
            if connection.source in touched or connection.target in touched:
                rules.append(f"{connection.name}: {connection.describe()}")
        return TranslationExplanation(
            object_name=self.view_object.name,
            operation=operation,
            plan=combined,
            coalesced=coalesced,
            island_relations=tuple(self.analysis.island_relations),
            connections=tuple(rules),
            verify_integrity=self.verify_integrity,
            items=len(requests),
            risk=self.risk(),
        )

    @staticmethod
    def _describe_requests(requests: Sequence["UpdateRequest"]) -> str:
        """One op label for a request list: its kind, or "mixed"."""
        names = {
            "CompleteInsertion": "insert",
            "CompleteDeletion": "delete",
            "Replacement": "replace",
            "PartialInsertion": "partial_insert",
            "PartialDeletion": "partial_delete",
            "PartialUpdate": "partial_update",
        }
        kinds = {
            names.get(type(request).__name__, "update") for request in requests
        }
        if not kinds:
            return "empty"
        if len(kinds) == 1:
            return next(iter(kinds))
        return "mixed"

    # -- query-driven bulk operations ---------------------------------------------

    def delete_where(self, engine: Engine, query: str) -> UpdatePlan:
        """Complete deletion of every instance matching an object query.

        "The query representation can also be used to formulate update
        requests" — this is that formulation for deletions. The matched
        instances go through the same batch pipeline as
        :meth:`delete_many`: each is translated over a
        :class:`BufferedEngine` overlay, the per-instance plans are
        coalesced per relation, and the flush is a single journaled
        write-ahead intent with one audit record for the whole
        view-level request — all-or-nothing, with the base engine
        untouched until the plan is complete.
        """
        from repro.core.query import execute_query

        instances = execute_query(self.view_object, engine, query)
        return self._run_batch(
            engine,
            instances,
            lambda ctx, instance: self._translate_deletion(ctx, instance),
            op="delete_where",
        )

    def update_where(
        self,
        engine: Engine,
        query: str,
        transform: Callable[[Dict[str, Any]], Dict[str, Any]],
    ) -> UpdatePlan:
        """Replace every matching instance by ``transform(instance_dict)``.

        The transform receives each matched instance's nested-dictionary
        form and returns the replacement's. Like :meth:`delete_where`,
        the batch runs through :meth:`_run_batch`: coalesced plan, one
        journal intent, one audit record, atomic flush.
        """
        from repro.core.query import execute_query

        instances = execute_query(self.view_object, engine, query)

        def translate_one(ctx: TranslationContext, instance: Instance) -> None:
            new_data = transform(instance.to_dict())
            self._translate_replacement(
                ctx, instance, self._coerce_instance(new_data)
            )

        return self._run_batch(
            engine, instances, translate_one, op="update_where"
        )

    # -- request-object dispatch ------------------------------------------------

    def apply(self, engine: Engine, request: "UpdateRequest") -> UpdatePlan:
        """Apply a first-class :class:`UpdateRequest` (Section 5's
        operation taxonomy) through this translator."""
        from repro.core.updates.operations import (
            CompleteDeletion,
            CompleteInsertion,
            PartialDeletion,
            PartialInsertion,
            PartialUpdate,
            Replacement,
        )

        if isinstance(request, CompleteInsertion):
            return self.insert(engine, request.instance)
        if isinstance(request, CompleteDeletion):
            return self.delete(engine, request.instance)
        if isinstance(request, Replacement):
            return self.replace(engine, request.old, request.new)
        if isinstance(request, PartialInsertion):
            return self.insert_component(
                engine, request.instance, request.node_id, request.values
            )
        if isinstance(request, PartialDeletion):
            return self.delete_component(
                engine, request.instance, request.node_id, request.values
            )
        if isinstance(request, PartialUpdate):
            return self.update_component(
                engine,
                request.instance,
                request.node_id,
                request.old_values,
                request.new_values,
            )
        raise UpdateError(f"unknown update request: {request!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Translator({self.view_object.name!r})"
