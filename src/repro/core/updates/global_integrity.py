"""Step 4: global validation against the structural model.

After the translation proper, the database must be returned to global
consistency using the connection rules of Section 2:

* **Deletions** propagate along outgoing ownership and subset
  connections ("repeatedly, if necessary"), and every relation
  referencing a deleted tuple is repaired according to the policy —
  delete the referencing tuples, nullify their connecting attributes,
  or prohibit (roll back). "Note that no further propagation is needed
  outside of the referencing relations."
* **Insertions** must find their owning / general / referenced tuples
  along inverse ownership, inverse subset, and reference connections;
  "if no tuple satisfying the suitable dependency is found, one such
  tuple must be inserted, and the process must be applied recursively".
* **Key replacements** in the dependency island propagate to owned and
  subset tuples outside the object and retarget the foreign keys of all
  referencing tuples.

Everything works off the :class:`TranslationContext` work lists, so one
pass handles whatever mixture of mutations an algorithm produced.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.errors import UpdateRejectedError
from repro.core.updates.context import TranslationContext
from repro.core.updates.policy import ReferenceRepair
from repro.structural.connections import Connection, ConnectionKind

__all__ = [
    "maintain_after_deletions",
    "maintain_after_insertions",
    "maintain_after_key_changes",
    "maintain_all",
]


# ---------------------------------------------------------------------------
# Deletions
# ---------------------------------------------------------------------------


def maintain_after_deletions(ctx: TranslationContext) -> None:
    """Cascade deletions and repair references, to fixpoint.

    Resumable: re-running the pass only processes deletions recorded
    since the previous run (other passes may append more, e.g. a
    key-change collision dropping a stale tuple).
    """
    while ctx.deletion_cursor < len(ctx.deleted):
        relation, old_values = ctx.deleted[ctx.deletion_cursor]
        ctx.deletion_cursor += 1
        _cascade_children(ctx, relation, old_values)
        _repair_incoming_references(ctx, relation, old_values)


def _cascade_children(
    ctx: TranslationContext, relation: str, old_values: Tuple[Any, ...]
) -> None:
    """Delete owned and subset tuples of a deleted tuple."""
    for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET):
        for connection in ctx.graph.connections_from(relation, kind):
            schema = ctx.schema(relation)
            entry = schema.project(old_values, connection.source_attributes)
            dependents = ctx.engine.find_by(
                connection.target, connection.target_attributes, entry
            )
            child_schema = ctx.schema(connection.target)
            for values in dependents:
                ctx.delete(
                    connection.target,
                    child_schema.key_of(values),
                    reason=f"cascade {kind.value} via {connection.name}",
                )


def _repair_incoming_references(
    ctx: TranslationContext, relation: str, old_values: Tuple[Any, ...]
) -> None:
    """Fix tuples referencing a deleted tuple, per the policy."""
    for connection in ctx.graph.connections_to(
        relation, ConnectionKind.REFERENCE
    ):
        schema = ctx.schema(relation)
        entry = schema.project(old_values, connection.target_attributes)
        if any(v is None for v in entry):
            continue
        referencing = ctx.engine.find_by(
            connection.source, connection.source_attributes, entry
        )
        if not referencing:
            continue
        action = _resolve_repair(ctx, connection)
        source_schema = ctx.schema(connection.source)
        for values in referencing:
            key = source_schema.key_of(values)
            if action is ReferenceRepair.DELETE:
                ctx.delete(
                    connection.source,
                    key,
                    reason=f"referencing tuple repair via {connection.name}",
                )
            elif action is ReferenceRepair.NULLIFY:
                mapping = source_schema.as_mapping(values)
                for name in connection.source_attributes:
                    mapping[name] = None
                ctx.replace(
                    connection.source,
                    key,
                    source_schema.row_from_mapping(mapping),
                    reason=f"nullify foreign key via {connection.name}",
                )
            else:  # PROHIBIT
                raise UpdateRejectedError(
                    f"deletion of {relation!r} tuple is referenced by "
                    f"{connection.source!r} and the translator prohibits "
                    f"repairing that reference (connection "
                    f"{connection.name!r})",
                    relation=connection.source,
                )


def _resolve_repair(
    ctx: TranslationContext, connection: Connection
) -> ReferenceRepair:
    """Resolve AUTO to NULLIFY when legal, otherwise DELETE."""
    action = ctx.policy.for_relation(connection.source).on_reference_delete
    if action is not ReferenceRepair.AUTO:
        return action
    schema = ctx.schema(connection.source)
    nullable_nonkey = all(
        schema.attribute(name).nullable and not schema.is_key_attribute(name)
        for name in connection.source_attributes
    )
    return ReferenceRepair.NULLIFY if nullable_nonkey else ReferenceRepair.DELETE


# ---------------------------------------------------------------------------
# Insertions
# ---------------------------------------------------------------------------


def maintain_after_insertions(ctx: TranslationContext) -> None:
    """Insert missing owners / generals / referenced tuples, recursively.

    Also checks replaced tuples whose referencing attributes changed.
    Resumable like the deletion pass.
    """
    while ctx.insertion_cursor < len(ctx.inserted):
        relation, values = ctx.inserted[ctx.insertion_cursor]
        ctx.insertion_cursor += 1
        _ensure_dependencies(ctx, relation, values)
    for relation, old_values, new_values in ctx.replaced:
        if _reference_attributes_changed(ctx, relation, old_values, new_values):
            _ensure_dependencies(ctx, relation, new_values)


def _reference_attributes_changed(
    ctx: TranslationContext,
    relation: str,
    old_values: Tuple[Any, ...],
    new_values: Tuple[Any, ...],
) -> bool:
    schema = ctx.schema(relation)
    for connection in ctx.graph.connections_from(
        relation, ConnectionKind.REFERENCE
    ):
        old_entry = schema.project(old_values, connection.source_attributes)
        new_entry = schema.project(new_values, connection.source_attributes)
        if old_entry != new_entry:
            return True
    # Ownership/subset target attributes sit in the key, so a key change
    # is caught by maintain_after_key_changes; references are the only
    # dependency insertions may break.
    return False


def _ensure_dependencies(
    ctx: TranslationContext, relation: str, values: Tuple[Any, ...]
) -> None:
    """Every inserted tuple needs its owner, general, and referenced
    tuples; insert skeletons where permitted."""
    schema = ctx.schema(relation)
    # Inverse ownership and inverse subset: this tuple is owned /
    # specialized, so the source-side tuple must exist.
    for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET):
        for connection in ctx.graph.connections_to(relation, kind):
            entry = schema.project(values, connection.target_attributes)
            if any(v is None for v in entry):
                continue
            existing = ctx.engine.find_by(
                connection.source, connection.source_attributes, entry
            )
            if not existing:
                _insert_skeleton(
                    ctx,
                    connection.source,
                    connection.source_attributes,
                    entry,
                    reason=(
                        f"missing {kind.value} parent via {connection.name}"
                    ),
                )
    # Forward references: the referenced tuple must exist.
    for connection in ctx.graph.connections_from(
        relation, ConnectionKind.REFERENCE
    ):
        entry = schema.project(values, connection.source_attributes)
        if any(v is None for v in entry):
            continue
        existing = ctx.engine.find_by(
            connection.target, connection.target_attributes, entry
        )
        if not existing:
            _insert_skeleton(
                ctx,
                connection.target,
                connection.target_attributes,
                entry,
                reason=f"missing referenced tuple via {connection.name}",
            )


def _insert_skeleton(
    ctx: TranslationContext,
    relation: str,
    attribute_names: Sequence[str],
    entry: Tuple[Any, ...],
    reason: str,
) -> None:
    """Insert a minimal tuple carrying ``entry``; recursion happens via
    the work list."""
    relation_policy = ctx.policy.for_relation(relation)
    if not (relation_policy.can_modify and relation_policy.can_insert):
        raise UpdateRejectedError(
            f"global integrity requires inserting into {relation!r} but the "
            f"translator does not allow insertions there",
            relation=relation,
        )
    schema = ctx.schema(relation)
    partial: Dict[str, Any] = dict(zip(attribute_names, entry))
    completed = ctx.policy.completer(relation, schema, partial)
    ctx.insert(
        relation,
        schema.row_from_mapping(completed),
        reason=reason,
    )


# ---------------------------------------------------------------------------
# Key changes
# ---------------------------------------------------------------------------


def maintain_after_key_changes(ctx: TranslationContext) -> None:
    """Propagate island key replacements outside the object.

    For each key change (R, old_key, new_key): retarget the foreign keys
    of all tuples referencing old_key, and rewrite the inherited key
    attributes of owned / subset tuples still carrying old values —
    which may change *their* keys, so the work list is run to fixpoint.
    """
    while ctx.key_change_cursor < len(ctx.key_changes):
        relation, old_key, new_key = ctx.key_changes[ctx.key_change_cursor]
        ctx.key_change_cursor += 1
        _retarget_references(ctx, relation, old_key, new_key)
        _propagate_key_to_dependents(ctx, relation, old_key, new_key)


def _retarget_references(
    ctx: TranslationContext,
    relation: str,
    old_key: Tuple[Any, ...],
    new_key: Tuple[Any, ...],
) -> None:
    schema = ctx.schema(relation)
    key_map = dict(zip(schema.key, old_key))
    new_map = dict(zip(schema.key, new_key))
    for connection in ctx.graph.connections_to(
        relation, ConnectionKind.REFERENCE
    ):
        # X2 = K(relation): build old/new entries in X2 order.
        old_entry = tuple(key_map[a] for a in connection.target_attributes)
        new_entry = tuple(new_map[a] for a in connection.target_attributes)
        referencing = ctx.engine.find_by(
            connection.source, connection.source_attributes, old_entry
        )
        if not referencing:
            continue
        if not ctx.policy.for_relation(connection.source).can_modify:
            raise UpdateRejectedError(
                f"key replacement in {relation!r} requires modifying "
                f"referencing relation {connection.source!r}, which the "
                f"translator prohibits",
                relation=connection.source,
            )
        source_schema = ctx.schema(connection.source)
        for values in referencing:
            key = source_schema.key_of(values)
            mapping = source_schema.as_mapping(values)
            mapping.update(zip(connection.source_attributes, new_entry))
            new_values = source_schema.row_from_mapping(mapping)
            target_key = source_schema.key_of(new_values)
            if target_key != key and ctx.engine.contains(
                connection.source, target_key
            ):
                # The retargeted tuple already exists (e.g. state I
                # inserted it from the new instance): drop the stale one.
                ctx.delete(
                    connection.source,
                    key,
                    reason=(
                        f"retarget via {connection.name} collided with an "
                        f"existing tuple; old reference dropped"
                    ),
                )
            else:
                ctx.replace(
                    connection.source,
                    key,
                    new_values,
                    reason=f"retarget foreign key via {connection.name}",
                )


def _propagate_key_to_dependents(
    ctx: TranslationContext,
    relation: str,
    old_key: Tuple[Any, ...],
    new_key: Tuple[Any, ...],
) -> None:
    schema = ctx.schema(relation)
    key_map = dict(zip(schema.key, old_key))
    new_map = dict(zip(schema.key, new_key))
    for kind in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET):
        for connection in ctx.graph.connections_from(relation, kind):
            # X1 = K(relation): entries in X1 order.
            old_entry = tuple(
                key_map[a] for a in connection.source_attributes
            )
            new_entry = tuple(
                new_map[a] for a in connection.source_attributes
            )
            if old_entry == new_entry:
                continue
            dependents = ctx.engine.find_by(
                connection.target, connection.target_attributes, old_entry
            )
            child_schema = ctx.schema(connection.target)
            for values in dependents:
                key = child_schema.key_of(values)
                mapping = child_schema.as_mapping(values)
                mapping.update(
                    zip(connection.target_attributes, new_entry)
                )
                new_values = child_schema.row_from_mapping(mapping)
                target_key = child_schema.key_of(new_values)
                if target_key != key and ctx.engine.contains(
                    connection.target, target_key
                ):
                    ctx.delete(
                        connection.target,
                        key,
                        reason=(
                            f"inherited-key propagation via "
                            f"{connection.name} collided; stale tuple dropped"
                        ),
                    )
                else:
                    ctx.replace(
                        connection.target,
                        key,
                        new_values,
                        reason=(
                            f"propagate inherited key via {connection.name}"
                        ),
                    )


def maintain_all(ctx: TranslationContext) -> None:
    """Run the three maintenance passes to a joint fixpoint.

    Every pass runs at least once (the insertion pass also re-checks
    replaced tuples with changed references, even when the work lists
    are empty); then the loop continues while any pass produced work
    for another.
    """
    while True:
        maintain_after_deletions(ctx)
        maintain_after_key_changes(ctx)
        maintain_after_insertions(ctx)
        if (
            ctx.deletion_cursor >= len(ctx.deleted)
            and ctx.key_change_cursor >= len(ctx.key_changes)
            and ctx.insertion_cursor >= len(ctx.inserted)
        ):
            break
