"""Update translation: the paper's Section 5 algorithms.

The four logical steps of a view-object update — local validation,
propagation within the object, translation into database operations,
global validation against the structural model — live here, along with
the translator policies that the Section 6 dialog configures.
"""

from repro.core.updates.context import TranslationContext
from repro.core.updates.deletion import translate_complete_deletion
from repro.core.updates.insertion import translate_complete_insertion
from repro.core.updates.local_validation import (
    validate_deletion,
    validate_insertion,
    validate_replacement,
)
from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    PartialDeletion,
    PartialInsertion,
    PartialUpdate,
    Replacement,
    UpdateRequest,
)
from repro.core.updates.partial import (
    translate_partial_deletion,
    translate_partial_insertion,
    translate_partial_update,
)
from repro.core.updates.policy import (
    Completer,
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
    null_completer,
)
from repro.core.updates.propagation import propagate_within_object
from repro.core.updates.replacement import translate_replacement
from repro.core.updates.translator import Translator

__all__ = [
    "Translator",
    "TranslatorPolicy",
    "RelationPolicy",
    "ReferenceRepair",
    "Completer",
    "null_completer",
    "TranslationContext",
    "UpdateRequest",
    "CompleteInsertion",
    "CompleteDeletion",
    "Replacement",
    "PartialInsertion",
    "PartialDeletion",
    "PartialUpdate",
    "translate_complete_insertion",
    "translate_complete_deletion",
    "translate_replacement",
    "translate_partial_insertion",
    "translate_partial_deletion",
    "translate_partial_update",
    "propagate_within_object",
    "validate_insertion",
    "validate_deletion",
    "validate_replacement",
]
