"""Algorithm VO-R: translation of replacement requests (§5.3).

A depth-first walk over the view object's tree of relations, starting in
state **R** (replacing) at the pivot and switching to state **I**
(inserting) when moving down to a relation outside the dependency
island:

* R-1 — projections match exactly: nothing to do;
* R-2 — projections differ, keys match: database replacement;
* R-3 — keys differ (dependency island only): the old tuple is always
  removed; the new tuple is either a key-changing replacement or — when
  a tuple with the new key already exists — a deletion of the old tuple
  plus a replacement of the existing one, which the dialog may forbid
  ("The system might need to delete the old database tuple, and replace
  it with an existing tuple with matching key. Do you allow this?");
* I-1 — keys match: handled with the R rules for this pair;
* I-2 — keys differ, new tuple absent: insert it (the paper's
  "replacement on the key of a relation referenced by the dependency
  island leads to an insertion, rather than a replacement" — this is
  how replacing a course's department with a brand-new one *inserts*
  the new DEPARTMENT tuple);
* I-3 — keys differ, identical tuple present: nothing;
* I-4 — keys differ, tuple present with conflicting values: replacement.

Old/new component tuples at each node are aligned by key first and
positionally for the remainder, so key-changing pairs (R-3) stay
aligned. Steps 2 (in-object propagation) and 4 (validation against the
structural model) wrap the walk, per the paper: "all three steps ...
have to be executed sequentially".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.errors import UpdateRejectedError
from repro.core.instance import ComponentTuple, Instance
from repro.core.projection_tree import TreeNode
from repro.core.updates import global_integrity
from repro.core.updates.context import TranslationContext
from repro.core.updates.local_validation import validate_replacement
from repro.core.updates.propagation import propagate_within_object

__all__ = ["translate_replacement"]


def translate_replacement(
    ctx: TranslationContext, old: Instance, new: Instance
) -> None:
    """Run VO-R; mutations are recorded in ``ctx``."""
    # Step 1: local validation.
    with obs.tracer().span("validate", algorithm="VO-R"):
        validate_replacement(ctx, old, new)
    with obs.tracer().span("propagate", algorithm="VO-R") as span:
        # Step 2: propagation within the view object.
        new = propagate_within_object(ctx.view_object, new)
        # Step 3: translation into database operations (the state machine).
        _walk_node(
            ctx,
            ctx.view_object.tree.root,
            [old.root],
            [new.root],
            in_island=True,
        )
        # Step 4: validation against the structural model. The passes run
        # to a joint fixpoint: a key-change collision may drop stale tuples
        # whose own cascades the deletion pass must then pick up.
        global_integrity.maintain_all(ctx)
        span.set(ops=len(ctx.plan))


# ---------------------------------------------------------------------------
# Tree walk
# ---------------------------------------------------------------------------


def _walk_node(
    ctx: TranslationContext,
    node: TreeNode,
    old_components: List[ComponentTuple],
    new_components: List[ComponentTuple],
    in_island: bool,
) -> None:
    pairs = _align(ctx, node.node_id, old_components, new_components)
    for old_component, new_component in pairs:
        if old_component is not None and new_component is not None:
            if in_island:
                _replace_case(ctx, node, old_component, new_component)
            else:
                _insert_case(ctx, node, old_component, new_component)
        elif new_component is None:
            _removed_component(ctx, node, old_component, in_island)
        else:
            _added_component(ctx, node, new_component, in_island)
        # Depth-first: "move to the next relation down, then go to state
        # I if we are outside the dependency island, R otherwise".
        for child in ctx.view_object.tree.children(node.node_id):
            child_in_island = ctx.analysis.is_island(child.node_id)
            old_children = (
                old_component.child_tuples(child.node_id)
                if old_component is not None
                else []
            )
            new_children = (
                new_component.child_tuples(child.node_id)
                if new_component is not None
                else []
            )
            _walk_node(ctx, child, old_children, new_children, child_in_island)


def _align(
    ctx: TranslationContext,
    node_id: str,
    old_components: List[ComponentTuple],
    new_components: List[ComponentTuple],
) -> List[Tuple[Optional[ComponentTuple], Optional[ComponentTuple]]]:
    """Pair old and new tuples: by key first, leftovers positionally."""
    old_by_key: Dict[Tuple[Any, ...], ComponentTuple] = {}
    for component in old_components:
        old_by_key[ctx.key_from_values(node_id, component.values)] = component
    pairs: List[Tuple[Optional[ComponentTuple], Optional[ComponentTuple]]] = []
    unmatched_new: List[ComponentTuple] = []
    for component in new_components:
        key = ctx.key_from_values(node_id, component.values)
        match = old_by_key.pop(key, None)
        if match is not None:
            pairs.append((match, component))
        else:
            unmatched_new.append(component)
    leftovers_old = [
        c for c in old_components
        if ctx.key_from_values(node_id, c.values) in old_by_key
    ]
    for index in range(max(len(leftovers_old), len(unmatched_new))):
        pairs.append(
            (
                leftovers_old[index] if index < len(leftovers_old) else None,
                unmatched_new[index] if index < len(unmatched_new) else None,
            )
        )
    return pairs


# ---------------------------------------------------------------------------
# State R — replacing (dependency island)
# ---------------------------------------------------------------------------


def _replace_case(
    ctx: TranslationContext,
    node: TreeNode,
    old_component: ComponentTuple,
    new_component: ComponentTuple,
) -> None:
    node_id = node.node_id
    if old_component.values == new_component.values:
        return  # CASE R-1: the projections match exactly.
    old_key = ctx.key_from_values(node_id, old_component.values)
    new_key = ctx.key_from_values(node_id, new_component.values)
    existing = ctx.engine.get(node.relation, old_key)
    if existing is None:
        raise UpdateRejectedError(
            f"replacement: island tuple {old_key!r} of {node.relation!r} "
            f"no longer exists",
            relation=node.relation,
        )
    if old_key == new_key:
        # CASE R-2: the projections differ but the keys match.
        ctx.replace(
            node.relation,
            old_key,
            ctx.merge_with_existing(node_id, new_component.values, existing),
            reason=f"CASE R-2 replacement at node {node_id!r} (VO-R)",
        )
        return
    # CASE R-3: the projections differ and the keys differ — island only.
    relation_policy = ctx.policy.for_relation(node.relation)
    if not relation_policy.allow_db_key_replacement:
        raise UpdateRejectedError(
            f"replacement changes the database key of {node.relation!r} "
            f"({old_key!r} -> {new_key!r}) but the translator prohibits "
            f"replacing database keys",
            relation=node.relation,
        )
    conflicting = ctx.engine.get(node.relation, new_key)
    if conflicting is not None:
        # Delete the old tuple and replace the existing one with the new
        # view-object tuple — only if the dialog allowed the merge.
        if not relation_policy.allow_merge_on_key_conflict:
            raise UpdateRejectedError(
                f"replacement would delete {node.relation!r} tuple "
                f"{old_key!r} and overwrite existing tuple {new_key!r}; "
                f"the translator prohibits this merge",
                relation=node.relation,
            )
        ctx.delete(
            node.relation,
            old_key,
            reason=f"CASE R-3 merge: old island tuple removed (VO-R)",
        )
        ctx.replace(
            node.relation,
            new_key,
            ctx.merge_with_existing(
                node_id, new_component.values, conflicting
            ),
            reason=f"CASE R-3 merge: existing tuple overwritten (VO-R)",
        )
        return
    # Plain key-changing replacement ("if we have a deletion followed by
    # an insertion, we perform a replacement instead").
    ctx.replace(
        node.relation,
        old_key,
        ctx.merge_with_existing(node_id, new_component.values, existing),
        reason=f"CASE R-3 key-changing replacement at {node_id!r} (VO-R)",
    )


# ---------------------------------------------------------------------------
# State I — inserting (outside the island)
# ---------------------------------------------------------------------------


def _insert_case(
    ctx: TranslationContext,
    node: TreeNode,
    old_component: ComponentTuple,
    new_component: ComponentTuple,
) -> None:
    node_id = node.node_id
    old_key = ctx.key_from_values(node_id, old_component.values)
    new_key = ctx.key_from_values(node_id, new_component.values)
    relation_policy = ctx.policy.for_relation(node.relation)
    if old_key == new_key:
        # CASE I-1: the keys match — treat with the R rules.
        if old_component.values == new_component.values:
            return
        existing = ctx.engine.get(node.relation, old_key)
        if existing is None:
            _added_component(ctx, node, new_component, in_island=False)
            return
        if ctx.projected_values_match(
            node_id, new_component.values, existing
        ):
            return
        _require_modify_and_replace(ctx, node, relation_policy)
        ctx.replace(
            node.relation,
            old_key,
            ctx.merge_with_existing(node_id, new_component.values, existing),
            reason=f"CASE I-1 nonkey replacement at node {node_id!r} (VO-R)",
        )
        return
    # Keys differ: the old tuple is simply no longer referenced; the new
    # one is brought into existence or reconciled.
    _added_component(ctx, node, new_component, in_island=False)


def _removed_component(
    ctx: TranslationContext,
    node: TreeNode,
    old_component: ComponentTuple,
    in_island: bool,
) -> None:
    """An old component tuple with no counterpart in the new instance."""
    if not in_island:
        return  # outside tuples survive; only the linkage changed
    key = ctx.key_from_values(node.node_id, old_component.values)
    if ctx.engine.get(node.relation, key) is not None:
        ctx.delete(
            node.relation,
            key,
            reason=(
                f"island component removed by replacement at node "
                f"{node.node_id!r} (VO-R)"
            ),
        )


def _added_component(
    ctx: TranslationContext,
    node: TreeNode,
    new_component: ComponentTuple,
    in_island: bool,
) -> None:
    """A new component tuple with no old counterpart (also CASES I-2/3/4)."""
    node_id = node.node_id
    key = ctx.key_from_values(node_id, new_component.values)
    existing = ctx.engine.get(node.relation, key)
    relation_policy = ctx.policy.for_relation(node.relation)
    if existing is None:
        # CASE I-2 (or an island component addition): insert.
        if not in_island and not (
            relation_policy.can_modify and relation_policy.can_insert
        ):
            raise UpdateRejectedError(
                f"replacement needs a new tuple in {node.relation!r} but "
                f"the translator does not allow insertions there",
                relation=node.relation,
            )
        ctx.insert(
            node.relation,
            ctx.complete(node_id, new_component.values),
            reason=f"CASE I-2 insertion at node {node_id!r} (VO-R)",
        )
    elif ctx.projected_values_match(node_id, new_component.values, existing):
        return  # CASE I-3: identical tuple already present.
    else:
        # CASE I-4: present with conflicting values — replacement.
        if not in_island:
            _require_modify_and_replace(ctx, node, relation_policy)
        ctx.replace(
            node.relation,
            key,
            ctx.merge_with_existing(node_id, new_component.values, existing),
            reason=f"CASE I-4 replacement at node {node_id!r} (VO-R)",
        )


def _require_modify_and_replace(
    ctx: TranslationContext, node: TreeNode, relation_policy
) -> None:
    if not (relation_policy.can_modify and relation_policy.can_replace_existing):
        raise UpdateRejectedError(
            f"replacement needs to modify an existing tuple of "
            f"{node.relation!r} but the translator prohibits it",
            relation=node.relation,
        )
