"""Algorithm VO-CI: translation of complete-insertion requests (§5.2).

For each tuple in each projection of the view object, three cases:

* CASE 1 — an identical tuple exists in the database: reject if the
  relation belongs to the dependency island, otherwise do nothing;
* CASE 2 — the new tuple matches no existing key: insert it;
* CASE 3 — the key exists but nonkey values differ: reject inside the
  island, otherwise replace the existing tuple with the view-object
  tuple.

"Each view-object tuple inserted in the database needs to be extended
with some values for the attributes that have been projected out" — the
policy's completer supplies those values.

Afterwards, global integrity inserts any missing tuples along inverse
ownership, inverse subset, and reference connections, recursively
(:func:`~repro.core.updates.global_integrity.maintain_after_insertions`).
"""

from __future__ import annotations

import repro.obs as obs
from repro.errors import UpdateRejectedError
from repro.core.instance import Instance
from repro.core.updates import global_integrity
from repro.core.updates.context import TranslationContext
from repro.core.updates.local_validation import validate_insertion

__all__ = ["translate_complete_insertion"]


def translate_complete_insertion(
    ctx: TranslationContext, instance: Instance
) -> None:
    """Run VO-CI for ``instance``; mutations are recorded in ``ctx``."""
    with obs.tracer().span("validate", algorithm="VO-CI"):
        validate_insertion(ctx, instance)
    with obs.tracer().span("propagate", algorithm="VO-CI") as span:
        _propagate_insertion(ctx, instance)
        span.set(ops=len(ctx.plan))


def _propagate_insertion(ctx: TranslationContext, instance: Instance) -> None:
    for node in ctx.view_object.tree.bfs():
        node_id = node.node_id
        in_island = ctx.analysis.is_island(node_id)
        relation_policy = ctx.policy.for_relation(node.relation)
        for component in instance.tuples_at(node_id):
            key = ctx.key_from_values(node_id, component.values)
            existing = ctx.engine.get(node.relation, key)
            if existing is None:
                # CASE 2: the new tuple matches no existing key.
                if not in_island and not (
                    relation_policy.can_modify and relation_policy.can_insert
                ):
                    raise UpdateRejectedError(
                        f"insertion needs a new tuple in {node.relation!r} "
                        f"but the translator does not allow insertions there",
                        relation=node.relation,
                    )
                ctx.insert(
                    node.relation,
                    ctx.complete(node_id, component.values),
                    reason=f"CASE 2 insertion at node {node_id!r} (VO-CI)",
                )
            elif ctx.projected_values_match(node_id, component.values, existing):
                # CASE 1: an identical tuple already exists.
                if in_island:
                    raise UpdateRejectedError(
                        f"complete insertion rejected: identical tuple "
                        f"{key!r} already exists in island relation "
                        f"{node.relation!r} (CASE 1)",
                        relation=node.relation,
                    )
                # Outside the island: do nothing.
            else:
                # CASE 3: key matches, nonkey values conflict.
                if in_island:
                    raise UpdateRejectedError(
                        f"complete insertion rejected: tuple {key!r} exists "
                        f"in island relation {node.relation!r} with "
                        f"different values (CASE 3)",
                        relation=node.relation,
                    )
                if not (
                    relation_policy.can_modify
                    and relation_policy.can_replace_existing
                ):
                    raise UpdateRejectedError(
                        f"insertion needs to modify an existing tuple of "
                        f"{node.relation!r} but the translator prohibits it",
                        relation=node.relation,
                    )
                ctx.replace(
                    node.relation,
                    key,
                    ctx.merge_with_existing(
                        node_id, component.values, existing
                    ),
                    reason=f"CASE 3 replacement at node {node_id!r} (VO-CI)",
                )
    global_integrity.maintain_after_insertions(ctx)
