"""Partial update operations on a single component (node) of an object.

The paper defines complete operations and notes that "the description of
partial update operations for manipulating only a component of the view
object (that is, a node in the object's tree of relations) can be found
in [the thesis]". We implement the three node-local variants as special
cases of the complete machinery:

* **partial insertion** — add one component tuple under an existing
  instance (e.g. record a new GRADE for a course): island nodes insert
  with inherited key attributes propagated from the parent; outside
  nodes follow the VO-CI cases;
* **partial deletion** — remove one component tuple: island tuples are
  deleted (with cascades and reference repair); peninsula tuples are
  repaired per the deletion policy; other outside tuples only lose
  their linkage, which for a direct reference edge means nullifying or
  rejecting, since the base tuple itself must survive;
* **partial update** — modify nonkey attributes of one component tuple
  in place.

Each function records into a :class:`TranslationContext`; the
:class:`~repro.core.updates.translator.Translator` wrappers add the
transaction boundary.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import LocalValidationError, UpdateRejectedError
from repro.core.dependency_island import NodeRole
from repro.core.instance import Instance
from repro.core.updates import global_integrity
from repro.core.updates.context import TranslationContext

__all__ = [
    "translate_partial_insertion",
    "translate_partial_deletion",
    "translate_partial_update",
]


def _node_and_role(ctx: TranslationContext, node_id: str):
    node = ctx.view_object.node(node_id)
    if node.path is not None and len(node.path) > 1:
        raise LocalValidationError(
            f"partial updates are not defined on node {node_id!r}: its edge "
            f"collapses {len(node.path)} connections; update the "
            f"intermediate relations' object instead"
        )
    return node, ctx.analysis.role(node_id)


def _inherit_from_parent(
    ctx: TranslationContext, instance: Instance, node_id: str, values: Dict[str, Any]
) -> Dict[str, Any]:
    """Overlay the connecting attributes from the instance's pivot-side
    parent, so a partial insertion lands under the right owner."""
    node = ctx.view_object.node(node_id)
    if node.path is None:
        return dict(values)
    parent = ctx.view_object.tree.node(node.parent_id)
    if parent.node_id != ctx.view_object.pivot_node_id:
        # Inheritance beyond one level would need the caller to say which
        # parent component tuple the new tuple belongs to; require the
        # connecting attributes explicitly instead.
        return dict(values)
    traversal = node.path.traversals[0]
    pivot_values = instance.root.values
    merged = dict(values)
    merged.update(
        zip(
            traversal.end_attributes,
            (pivot_values.get(a) for a in traversal.start_attributes),
        )
    )
    return merged


def translate_partial_insertion(
    ctx: TranslationContext,
    instance: Instance,
    node_id: str,
    values: Dict[str, Any],
) -> None:
    if not ctx.policy.allow_insertion:
        raise LocalValidationError(
            f"translator for {ctx.view_object.name!r} does not allow "
            f"insertions"
        )
    node, role = _node_and_role(ctx, node_id)
    if node.path is None:
        raise LocalValidationError(
            "partial insertion at the pivot is a complete insertion; use "
            "Translator.insert"
        )
    values = _inherit_from_parent(ctx, instance, node_id, values)
    key = ctx.key_from_values(node_id, values)
    existing = ctx.engine.get(node.relation, key)
    relation_policy = ctx.policy.for_relation(node.relation)
    if existing is None:
        if role is not NodeRole.ISLAND and not (
            relation_policy.can_modify and relation_policy.can_insert
        ):
            raise UpdateRejectedError(
                f"partial insertion needs a new {node.relation!r} tuple but "
                f"the translator does not allow insertions there",
                relation=node.relation,
            )
        ctx.insert(
            node.relation,
            ctx.complete(node_id, values),
            reason=f"partial insertion at node {node_id!r}",
        )
    elif ctx.projected_values_match(node_id, values, existing):
        if role is NodeRole.ISLAND:
            raise UpdateRejectedError(
                f"partial insertion: identical tuple {key!r} already part "
                f"of the entity at {node_id!r}",
                relation=node.relation,
            )
    else:
        if role is NodeRole.ISLAND:
            raise UpdateRejectedError(
                f"partial insertion: tuple {key!r} exists at {node_id!r} "
                f"with different values",
                relation=node.relation,
            )
        if not (
            relation_policy.can_modify and relation_policy.can_replace_existing
        ):
            raise UpdateRejectedError(
                f"partial insertion needs to modify {node.relation!r} but "
                f"the translator prohibits it",
                relation=node.relation,
            )
        ctx.replace(
            node.relation,
            key,
            ctx.merge_with_existing(node_id, values, existing),
            reason=f"partial insertion reconciliation at node {node_id!r}",
        )
    global_integrity.maintain_after_insertions(ctx)


def translate_partial_deletion(
    ctx: TranslationContext,
    instance: Instance,
    node_id: str,
    values: Dict[str, Any],
) -> None:
    if not ctx.policy.allow_deletion:
        raise LocalValidationError(
            f"translator for {ctx.view_object.name!r} does not allow "
            f"deletions"
        )
    node, role = _node_and_role(ctx, node_id)
    if node.path is None:
        raise LocalValidationError(
            "partial deletion of the pivot is a complete deletion; use "
            "Translator.delete"
        )
    key = ctx.key_from_values(node_id, values)
    if role is NodeRole.ISLAND:
        ctx.delete(
            node.relation, key, reason=f"partial deletion at node {node_id!r}"
        )
        global_integrity.maintain_after_deletions(ctx)
        return
    # Outside the island, the base tuple survives; removing the component
    # means severing the linkage. For a forward-reference edge we nullify
    # the parent's connecting attributes; anything else is ambiguous.
    traversal = node.path.traversals[0]
    if traversal.forward and traversal.kind.value == "reference":
        parent = ctx.view_object.tree.node(node.parent_id)
        parent_schema = ctx.schema(parent.relation)
        pivot_key = instance.key
        existing = ctx.engine.get(parent.relation, pivot_key)
        if existing is None:
            raise UpdateRejectedError(
                f"partial deletion: parent tuple {pivot_key!r} missing",
                relation=parent.relation,
            )
        mapping = parent_schema.as_mapping(existing)
        for name in traversal.start_attributes:
            if not parent_schema.attribute(name).nullable:
                raise UpdateRejectedError(
                    f"partial deletion of {node_id!r} would nullify "
                    f"non-nullable attribute {parent.relation}.{name}",
                    relation=parent.relation,
                )
            mapping[name] = None
        ctx.replace(
            parent.relation,
            pivot_key,
            parent_schema.row_from_mapping(mapping),
            reason=f"sever reference to {node_id!r} (partial deletion)",
        )
        return
    raise UpdateRejectedError(
        f"partial deletion at node {node_id!r} is ambiguous: the component "
        f"is outside the dependency island and not a severable reference",
        relation=node.relation,
    )


def translate_partial_update(
    ctx: TranslationContext,
    instance: Instance,
    node_id: str,
    old_values: Dict[str, Any],
    new_values: Dict[str, Any],
) -> None:
    if not ctx.policy.allow_replacement:
        raise LocalValidationError(
            f"translator for {ctx.view_object.name!r} does not allow "
            f"replacements"
        )
    node, role = _node_and_role(ctx, node_id)
    old_key = ctx.key_from_values(node_id, old_values)
    new_key = ctx.key_from_values(node_id, new_values)
    if old_key != new_key:
        raise LocalValidationError(
            f"partial update may not change keys ({old_key!r} -> "
            f"{new_key!r}); use a replacement request"
        )
    existing = ctx.engine.get(node.relation, old_key)
    if existing is None:
        raise UpdateRejectedError(
            f"partial update: {node.relation!r} tuple {old_key!r} not found",
            relation=node.relation,
        )
    relation_policy = ctx.policy.for_relation(node.relation)
    if role is not NodeRole.ISLAND and not (
        relation_policy.can_modify and relation_policy.can_replace_existing
    ):
        raise UpdateRejectedError(
            f"partial update needs to modify {node.relation!r} but the "
            f"translator prohibits it",
            relation=node.relation,
        )
    ctx.replace(
        node.relation,
        old_key,
        ctx.merge_with_existing(node_id, new_values, existing),
        reason=f"partial update at node {node_id!r}",
    )
    global_integrity.maintain_after_insertions(ctx)
