"""Write-buffering engine overlay powering batched update translation.

The translation algorithms (VO-CI, VO-CD, replacement, the partial
operations) apply their mutations eagerly through the engine so that
later steps — dependency checks, global-integrity maintenance — observe
the effects of earlier ones. Running them once per instance therefore
costs one engine round-trip per read *and* per write.

:class:`BufferedEngine` lets the very same algorithms run unchanged over
a whole batch while touching the real engine almost never:

* writes land in an in-memory overlay (per-relation ``key -> row`` maps
  plus tombstone sets for deleted base rows);
* reads consult the overlay first and fall back to the base engine,
  memoizing every base read — safe because the base is never mutated
  while a batch is being translated;
* :meth:`prime` pre-warms the read cache for a set of keys with one
  batched :meth:`~repro.relational.engine.Engine.get_many` call.

After translation, the recorded per-instance plans are coalesced
(:func:`repro.relational.operations.coalesce_plans`) and flushed to the
real engine through its batch primitives. Any failure during translation
simply discards the overlay: the base engine was never touched, so there
is nothing to roll back.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import DuplicateKeyError, NoSuchRowError, TransactionError
from repro.relational.engine import Engine, ValuesLike
from repro.relational.schema import RelationSchema

__all__ = ["BufferedEngine"]


class BufferedEngine(Engine):
    """An engine view that buffers writes and memoizes base reads.

    The base engine MUST NOT be mutated for the lifetime of this
    overlay; the memoized reads would go stale. The intended use is
    short-lived: translate one batch, flush, discard.
    """

    def __init__(self, base: Engine) -> None:
        self.base = base
        self._overlay: Dict[str, Dict[Tuple[Any, ...], Tuple[Any, ...]]] = {}
        self._tombstones: Dict[str, Set[Tuple[Any, ...]]] = {}
        self._get_cache: Dict[Tuple[str, Tuple[Any, ...]], Optional[Tuple[Any, ...]]] = {}
        self._find_cache: Dict[
            Tuple[str, Tuple[str, ...], Tuple[Any, ...]], List[Tuple[Any, ...]]
        ] = {}
        self._depth = 0

    # -- catalog (delegated) -----------------------------------------------

    def create_relation(self, schema: RelationSchema) -> None:
        raise TransactionError(
            "BufferedEngine is a read/write overlay; create relations on "
            "the base engine"
        )

    def drop_relation(self, name: str) -> None:
        raise TransactionError(
            "BufferedEngine is a read/write overlay; drop relations on "
            "the base engine"
        )

    def relation_names(self) -> Tuple[str, ...]:
        return self.base.relation_names()

    def schema(self, name: str) -> RelationSchema:
        return self.base.schema(name)

    def has_relation(self, name: str) -> bool:
        return self.base.has_relation(name)

    # -- cache pre-warming -------------------------------------------------

    def prime(self, name: str, keys: Iterable[Sequence[Any]]) -> None:
        """Warm the read cache for ``keys`` with one batched lookup."""
        missing = []
        for key in keys:
            key = self._coerce_key(name, key)
            if (name, key) not in self._get_cache:
                missing.append(key)
        if not missing:
            return
        found = self.base.get_many(name, missing)
        for key in missing:
            self._get_cache[(name, key)] = found.get(key)

    # -- mutation (overlay only) -------------------------------------------

    def insert(self, name: str, values: ValuesLike) -> Tuple[Any, ...]:
        row = self._coerce_values(name, values)
        key = self.schema(name).key_of(row)
        if self.get(name, key) is not None:
            raise DuplicateKeyError(name, key)
        self._overlay.setdefault(name, {})[key] = row
        self._tombstones.get(name, set()).discard(key)
        return key

    def delete(self, name: str, key: Sequence[Any]) -> None:
        key = self._coerce_key(name, key)
        overlay = self._overlay.setdefault(name, {})
        if key in overlay:
            del overlay[key]
            if self._base_get(name, key) is not None:
                self._tombstones.setdefault(name, set()).add(key)
            return
        if key in self._tombstones.get(name, ()) or self._base_get(name, key) is None:
            raise NoSuchRowError(name, key)
        self._tombstones.setdefault(name, set()).add(key)

    def replace(self, name: str, key: Sequence[Any], values: ValuesLike) -> None:
        key = self._coerce_key(name, key)
        row = self._coerce_values(name, values)
        if self.get(name, key) is None:
            raise NoSuchRowError(name, key)
        new_key = self.schema(name).key_of(row)
        if new_key != key and self.get(name, new_key) is not None:
            raise DuplicateKeyError(name, new_key)
        overlay = self._overlay.setdefault(name, {})
        was_buffered = overlay.pop(key, None) is not None
        if new_key != key and (
            not was_buffered or self._base_get(name, key) is not None
        ):
            # The base row under the old key must stay hidden.
            self._tombstones.setdefault(name, set()).add(key)
        overlay[new_key] = row
        self._tombstones.get(name, set()).discard(new_key)

    def clear(self, name: str) -> None:
        for row in list(self.scan(name)):
            self.delete(name, self.schema(name).key_of(row))

    # -- reads (overlay, then memoized base) -------------------------------

    def _base_get(self, name: str, key: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        cache_key = (name, key)
        if cache_key in self._get_cache:
            return self._get_cache[cache_key]
        row = self.base.get(name, key)
        self._get_cache[cache_key] = row
        return row

    def get(self, name: str, key: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        key = self._coerce_key(name, key)
        overlay = self._overlay.get(name)
        if overlay is not None and key in overlay:
            return overlay[key]
        if key in self._tombstones.get(name, ()):
            return None
        return self._base_get(name, key)

    def scan(self, name: str) -> Iterator[Tuple[Any, ...]]:
        schema = self.schema(name)
        overlay = self._overlay.get(name, {})
        tombstones = self._tombstones.get(name, ())
        for row in self.base.scan(name):
            key = schema.key_of(row)
            if key in tombstones or key in overlay:
                continue
            yield row
        for row in overlay.values():
            yield row

    def find_by(
        self, name: str, attribute_names: Sequence[str], entry: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        names = tuple(attribute_names)
        entry = self._coerce_entry(name, names, entry)
        cache_key = (name, names, entry)
        base_rows = self._find_cache.get(cache_key)
        if base_rows is None:
            base_rows = self.base.find_by(name, names, entry)
            self._find_cache[cache_key] = base_rows
        schema = self.schema(name)
        overlay = self._overlay.get(name, {})
        tombstones = self._tombstones.get(name, ())
        result = []
        for row in base_rows:
            key = schema.key_of(row)
            if key in tombstones or key in overlay:
                continue
            result.append(row)
        if overlay:
            positions = schema.positions(names)
            for row in overlay.values():
                if tuple(row[i] for i in positions) == entry:
                    result.append(row)
        return result

    # -- compiled fast paths -----------------------------------------------
    #
    # The compiled translator proves preconditions in its own loop (the
    # key was just probed absent / the row just read present, the row is
    # already validated and date-normalized, the key contains no DATE
    # attribute needing narrowing) and then skips the re-checks the
    # generic mutators would repeat. Overlay and tombstone bookkeeping
    # are bit-for-bit the same as insert()/delete().

    def insert_validated(
        self, name: str, row: Tuple[Any, ...], key: Tuple[Any, ...]
    ) -> None:
        self._overlay.setdefault(name, {})[key] = row
        tombstones = self._tombstones.get(name)
        if tombstones is not None:
            tombstones.discard(key)

    def delete_validated(self, name: str, key: Tuple[Any, ...]) -> None:
        overlay = self._overlay.setdefault(name, {})
        if key in overlay:
            del overlay[key]
            if self._base_get(name, key) is not None:
                self._tombstones.setdefault(name, set()).add(key)
            return
        self._tombstones.setdefault(name, set()).add(key)

    # -- indexes -----------------------------------------------------------

    def create_index(self, name: str, attribute_names: Sequence[str]) -> None:
        pass  # the base engine's indexes serve the memoized reads

    # -- transactions ------------------------------------------------------

    def begin(self) -> None:
        self._depth += 1

    def commit(self) -> None:
        if self._depth == 0:
            raise TransactionError("commit without matching begin")
        self._depth -= 1

    def rollback(self) -> None:
        raise TransactionError(
            "BufferedEngine cannot roll back: discard the overlay and "
            "re-translate the batch instead"
        )

    @property
    def in_transaction(self) -> bool:
        return self._depth > 0

    # -- introspection -----------------------------------------------------

    def buffered_counts(self) -> Dict[str, Tuple[int, int]]:
        """Per-relation (overlaid rows, tombstoned keys) — debugging aid."""
        names = set(self._overlay) | set(self._tombstones)
        return {
            name: (
                len(self._overlay.get(name, ())),
                len(self._tombstones.get(name, ())),
            )
            for name in sorted(names)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BufferedEngine(base={self.base!r})"
