"""Translator policies: the semantics chosen at object-definition time.

Keller's insight, carried over to view objects, is that the *ambiguity*
of update translation is resolved once, when the object is defined, by
recording the DBA's answers as a policy. A :class:`TranslatorPolicy`
holds, per relation, exactly the switches the Section 6 dialog asks
about, plus deletion-repair choices and the attribute completer used
when a view-object tuple must be extended with values for projected-out
attributes ("how this operation is handled is dependent on the
application").
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from repro.errors import UpdateRejectedError
from repro.relational.schema import RelationSchema

__all__ = [
    "ReferenceRepair",
    "RelationPolicy",
    "TranslatorPolicy",
    "null_completer",
    "Completer",
]


class ReferenceRepair(enum.Enum):
    """What to do with tuples referencing a deleted (or re-keyed) tuple.

    Definition 2.3, criterion 2, offers exactly these options: delete
    the referencing tuples, or assign valid or null values to their
    connecting attributes. ``PROHIBIT`` rejects the whole transaction;
    ``AUTO`` picks ``NULLIFY`` when the connecting attributes are
    nullable nonkey attributes and ``DELETE`` otherwise.
    """

    AUTO = "auto"
    NULLIFY = "nullify"
    DELETE = "delete"
    PROHIBIT = "prohibit"


class RelationPolicy:
    """Per-relation answers of the definition-time dialog."""

    __slots__ = (
        "can_modify",
        "can_insert",
        "can_replace_existing",
        "allow_key_replacement",
        "allow_db_key_replacement",
        "allow_merge_on_key_conflict",
        "on_reference_delete",
    )

    def __init__(
        self,
        can_modify: bool = True,
        can_insert: bool = True,
        can_replace_existing: bool = True,
        allow_key_replacement: bool = True,
        allow_db_key_replacement: bool = True,
        allow_merge_on_key_conflict: bool = False,
        on_reference_delete: ReferenceRepair = ReferenceRepair.AUTO,
    ) -> None:
        # Outside-island switches ("Can the relation X be modified
        # during insertions (or replacements)?" and its two follow-ups).
        self.can_modify = can_modify
        self.can_insert = can_insert
        self.can_replace_existing = can_replace_existing
        # Island switches ("The key of a tuple of relation X could be
        # modified during replacements..." and its two follow-ups).
        self.allow_key_replacement = allow_key_replacement
        self.allow_db_key_replacement = allow_db_key_replacement
        self.allow_merge_on_key_conflict = allow_merge_on_key_conflict
        # Deletion repair for tuples referencing this relation's deleted
        # tuples — chosen in the deletion portion of the dialog.
        self.on_reference_delete = on_reference_delete

    def copy(self) -> "RelationPolicy":
        return RelationPolicy(
            can_modify=self.can_modify,
            can_insert=self.can_insert,
            can_replace_existing=self.can_replace_existing,
            allow_key_replacement=self.allow_key_replacement,
            allow_db_key_replacement=self.allow_db_key_replacement,
            allow_merge_on_key_conflict=self.allow_merge_on_key_conflict,
            on_reference_delete=self.on_reference_delete,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if not self.can_modify:
            flags.append("no-modify")
        if not self.can_insert:
            flags.append("no-insert")
        if not self.can_replace_existing:
            flags.append("no-replace")
        return f"RelationPolicy({', '.join(flags) or 'permissive'})"


Completer = Callable[[str, RelationSchema, Dict[str, Any]], Dict[str, Any]]


def null_completer(
    relation: str, schema: RelationSchema, partial: Dict[str, Any]
) -> Dict[str, Any]:
    """Default completer: fill projected-out attributes with nulls.

    Raises :class:`UpdateRejectedError` when a missing attribute is not
    nullable — the application must then supply its own completer.
    """
    completed = dict(partial)
    for attribute in schema.attributes:
        if attribute.name in completed:
            continue
        if not attribute.nullable:
            raise UpdateRejectedError(
                f"cannot extend view-object tuple for {relation!r}: "
                f"attribute {attribute.name!r} was projected out and is "
                f"not nullable (supply a completer)",
                relation=relation,
            )
        completed[attribute.name] = None
    return completed


class TranslatorPolicy:
    """The full semantics of one translator.

    ``relations`` maps relation names to :class:`RelationPolicy`;
    relations not listed use a permissive default. ``allow_insertion``,
    ``allow_deletion``, and ``allow_replacement`` gate whole operation
    classes (the dialog's opening question per class).
    """

    def __init__(
        self,
        allow_insertion: bool = True,
        allow_deletion: bool = True,
        allow_replacement: bool = True,
        relations: Optional[Mapping[str, RelationPolicy]] = None,
        completer: Completer = null_completer,
        authorized_users: Optional[Iterable[str]] = None,
    ) -> None:
        self.allow_insertion = allow_insertion
        self.allow_deletion = allow_deletion
        self.allow_replacement = allow_replacement
        self.relations: Dict[str, RelationPolicy] = dict(relations or {})
        self.completer = completer
        # Step 1 of the paper checks "structural restrictions and user
        # authorizations": None means every user may update through the
        # object; otherwise only the listed users may.
        self.authorized_users = (
            None if authorized_users is None else set(authorized_users)
        )

    def authorizes(self, user: Optional[str]) -> bool:
        """Is ``user`` allowed to update through this translator?"""
        if self.authorized_users is None:
            return True
        return user is not None and user in self.authorized_users

    def for_relation(self, relation: str) -> RelationPolicy:
        policy = self.relations.get(relation)
        if policy is None:
            policy = RelationPolicy()
            self.relations[relation] = policy
        return policy

    def set_relation(self, relation: str, policy: RelationPolicy) -> None:
        self.relations[relation] = policy

    @classmethod
    def permissive(cls) -> "TranslatorPolicy":
        """Everything allowed (merge-on-key-conflict included)."""
        policy = cls()
        return policy

    @classmethod
    def read_only(cls) -> "TranslatorPolicy":
        return cls(
            allow_insertion=False,
            allow_deletion=False,
            allow_replacement=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gates = []
        if not self.allow_insertion:
            gates.append("no-insert")
        if not self.allow_deletion:
            gates.append("no-delete")
        if not self.allow_replacement:
            gates.append("no-replace")
        return f"TranslatorPolicy({', '.join(gates) or 'permissive'})"
