"""Step 1: local validation against the view-object definition.

The paper treats this step as "straightforward" and assumes it succeeds
before translation; we implement it fully: the request's instances must
belong to the right view object, the object must be updatable, the
operation class must be allowed by the policy, and — for replacements —
the structural restrictions of Section 5.3 hold:

* keys may change only inside the dependency island (when the policy's
  island answers allow it);
* key replacements on referencing peninsulas are prohibited
  ("inherently ambiguous"), modulo the connecting attributes that the
  system itself rewrites when the referenced island key changes.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.errors import LocalValidationError
from repro.core.dependency_island import NodeRole
from repro.core.instance import ComponentTuple, Instance
from repro.core.updates.context import TranslationContext

__all__ = [
    "validate_instance_shape",
    "validate_insertion",
    "validate_deletion",
    "validate_replacement",
]


def validate_instance_shape(ctx: TranslationContext, instance: Instance) -> None:
    """The instance must belong to this translator's view object."""
    if instance.view_object is not ctx.view_object:
        if instance.view_object.name != ctx.view_object.name:
            raise LocalValidationError(
                f"instance belongs to view object "
                f"{instance.view_object.name!r}, translator handles "
                f"{ctx.view_object.name!r}"
            )
    if not ctx.view_object.updatable:
        raise LocalValidationError(
            f"view object {ctx.view_object.name!r} was defined query-only "
            f"(updatable=False)"
        )


def validate_insertion(ctx: TranslationContext, instance: Instance) -> None:
    validate_instance_shape(ctx, instance)
    if not ctx.policy.allow_insertion:
        raise LocalValidationError(
            f"translator for {ctx.view_object.name!r} does not allow "
            f"complete insertions"
        )


def validate_deletion(ctx: TranslationContext, instance: Instance) -> None:
    validate_instance_shape(ctx, instance)
    if not ctx.policy.allow_deletion:
        raise LocalValidationError(
            f"translator for {ctx.view_object.name!r} does not allow "
            f"complete deletions"
        )


def validate_replacement(
    ctx: TranslationContext, old: Instance, new: Instance
) -> None:
    validate_instance_shape(ctx, old)
    validate_instance_shape(ctx, new)
    if not ctx.policy.allow_replacement:
        raise LocalValidationError(
            f"translator for {ctx.view_object.name!r} does not allow "
            f"replacements (the dialog's first answer was no)"
        )
    _validate_key_disciplines(ctx, old.root, new.root)


def _validate_key_disciplines(
    ctx: TranslationContext,
    old_component: ComponentTuple,
    new_component: ComponentTuple,
) -> None:
    """Recursive check of Section 5.3's key-replacement rules."""
    node_id = old_component.node_id
    role = ctx.analysis.role(node_id)
    node = ctx.view_object.node(node_id)
    schema = ctx.schema(node.relation)
    old_key = _key_or_none(ctx, node_id, old_component)
    new_key = _key_or_none(ctx, node_id, new_component)
    keys_differ = (
        old_key is not None and new_key is not None and old_key != new_key
    )
    if keys_differ and role is NodeRole.ISLAND:
        relation_policy = ctx.policy.for_relation(node.relation)
        if not relation_policy.allow_key_replacement:
            raise LocalValidationError(
                f"replacement changes the key of island relation "
                f"{node.relation!r} ({old_key!r} -> {new_key!r}) but the "
                f"translator prohibits key modification there"
            )
    if keys_differ and role is NodeRole.PENINSULA:
        # The connecting (foreign-key) attributes are rewritten by the
        # system when the referenced island key changes; a *user* key
        # change is any difference beyond those attributes.
        connecting = set(node.path.traversals[0].start_attributes)
        changed_outside_fk = any(
            old_component.values.get(a) != new_component.values.get(a)
            for a in schema.key
            if a not in connecting
        )
        if changed_outside_fk:
            raise LocalValidationError(
                f"replacement changes the key of referencing peninsula "
                f"{node.relation!r}; such replacements are inherently "
                f"ambiguous and prohibited"
            )
    for child in ctx.view_object.tree.children(node_id):
        old_children = old_component.child_tuples(child.node_id)
        new_children = new_component.child_tuples(child.node_id)
        for old_child, new_child in zip(old_children, new_children):
            _validate_key_disciplines(ctx, old_child, new_child)


def _key_or_none(
    ctx: TranslationContext, node_id: str, component: ComponentTuple
) -> Optional[Tuple[Any, ...]]:
    node = ctx.view_object.node(node_id)
    schema = ctx.schema(node.relation)
    try:
        return tuple(component.values[k] for k in schema.key)
    except KeyError:
        return None
