"""Step 2: propagation within the view object.

Section 5.3 decomposes each island relation's key into the part
inherited from its parent and the complement ``A_j``; only the
complement is accessible at the child's level, and "a change to A_j has
to be propagated down to R_j's children in the dependency island".

We implement propagation uniformly for every single-connection tree
edge: in a replacement's *new* instance, each child tuple's connecting
attributes are rewritten to match its parent tuple's (new) connecting
values. For island children that is exactly the inherited-key
propagation; for peninsulas it rewrites the system-maintained foreign
key; for referenced relations it keeps the child aligned with the
parent's (possibly updated) reference attributes. Composite
multi-connection edges (Figure 3) cannot be propagated at the instance
level — the intermediate relations are not part of the object — and are
reconciled during global validation instead.

The pass returns a rewritten instance; the caller's original is left
untouched.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.instance import ComponentTuple, Instance
from repro.core.view_object import ViewObjectDefinition

__all__ = ["propagate_within_object"]


def propagate_within_object(
    view_object: ViewObjectDefinition, new_instance: Instance
) -> Instance:
    """Rewrite connecting attributes downward; return a new Instance."""

    def rewrite(component: ComponentTuple) -> ComponentTuple:
        node = view_object.node(component.node_id)
        children: Dict[str, List[ComponentTuple]] = {}
        for child_node in view_object.tree.children(component.node_id):
            rebuilt: List[ComponentTuple] = []
            single_hop = len(child_node.path) == 1
            traversal = child_node.path.traversals[0]
            for child in component.child_tuples(child_node.node_id):
                if single_hop:
                    parent_entry = [
                        component.values.get(a)
                        for a in traversal.start_attributes
                    ]
                    values = dict(child.values)
                    values.update(
                        zip(traversal.end_attributes, parent_entry)
                    )
                    child = ComponentTuple(
                        child.node_id, values, child.children
                    )
                rebuilt.append(rewrite(child))
            children[child_node.node_id] = rebuilt
        return ComponentTuple(component.node_id, dict(component.values), children)

    return Instance(view_object, rewrite(new_instance.root))
