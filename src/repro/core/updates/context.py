"""Shared machinery of the translation algorithms.

A :class:`TranslationContext` carries everything one update translation
needs: the view object and its island analysis, the engine, the policy,
the growing :class:`~repro.relational.operations.UpdatePlan`, and the
work lists (deleted / inserted / replaced tuples, key changes) that the
global-integrity pass consumes.

All database mutations go through the context's ``insert`` / ``delete``
/ ``replace`` so that the plan faithfully records what the translation
did — the paper's "output is the set of database operations".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import UpdateRejectedError
from repro.core.dependency_island import IslandAnalysis, analyze_island
from repro.core.view_object import ViewObjectDefinition
from repro.core.updates.policy import TranslatorPolicy
from repro.relational.engine import Engine
from repro.relational.operations import Delete, Insert, Replace, UpdatePlan
from repro.relational.schema import RelationSchema

__all__ = ["TranslationContext"]


class TranslationContext:
    """State of one in-flight update translation."""

    def __init__(
        self,
        view_object: ViewObjectDefinition,
        engine: Engine,
        policy: TranslatorPolicy,
        analysis: Optional[IslandAnalysis] = None,
    ) -> None:
        self.view_object = view_object
        self.engine = engine
        self.policy = policy
        self.analysis = analysis or analyze_island(view_object)
        self.graph = view_object.graph
        self.plan = UpdatePlan()
        # Work lists consumed by global-integrity maintenance. Tuples are
        # full value tuples in schema order.
        self.deleted: List[Tuple[str, Tuple[Any, ...]]] = []
        self.inserted: List[Tuple[str, Tuple[Any, ...]]] = []
        self.replaced: List[
            Tuple[str, Tuple[Any, ...], Tuple[Any, ...]]
        ] = []
        self.key_changes: List[
            Tuple[str, Tuple[Any, ...], Tuple[Any, ...]]
        ] = []
        # Progress cursors of the global-integrity passes: each pass
        # resumes where it left off, so the passes can be interleaved
        # and re-run (a key-change collision may append new deletions
        # after the deletion pass already ran).
        self.deletion_cursor = 0
        self.insertion_cursor = 0
        self.key_change_cursor = 0

    # -- recorded mutations ------------------------------------------------------

    def insert(self, relation: str, values: Tuple[Any, ...], reason: str) -> None:
        self.engine.insert(relation, values)
        self.plan.add(Insert(relation, values), reason)
        self.inserted.append((relation, values))

    def delete(self, relation: str, key: Tuple[Any, ...], reason: str) -> Tuple[Any, ...]:
        old = self.engine.get(relation, key)
        if old is None:
            raise UpdateRejectedError(
                f"cannot delete {relation!r} tuple {key!r}: not found",
                relation=relation,
            )
        self.engine.delete(relation, key)
        self.plan.add(Delete(relation, key), reason)
        self.deleted.append((relation, old))
        return old

    def replace(
        self,
        relation: str,
        key: Tuple[Any, ...],
        new_values: Tuple[Any, ...],
        reason: str,
    ) -> Tuple[Any, ...]:
        old = self.engine.get(relation, key)
        if old is None:
            raise UpdateRejectedError(
                f"cannot replace {relation!r} tuple {key!r}: not found",
                relation=relation,
            )
        self.engine.replace(relation, key, new_values)
        self.plan.add(Replace(relation, key, new_values), reason)
        self.replaced.append((relation, old, new_values))
        new_key = self.schema(relation).key_of(new_values)
        if new_key != tuple(key):
            self.key_changes.append((relation, tuple(key), new_key))
        return old

    # -- helpers ------------------------------------------------------------------

    def schema(self, relation: str) -> RelationSchema:
        return self.graph.relation(relation)

    def complete(
        self, node_id: str, values: Dict[str, Any]
    ) -> Tuple[Any, ...]:
        """Extend a projected view-object tuple to a full value tuple."""
        node = self.view_object.node(node_id)
        schema = self.schema(node.relation)
        completed = self.policy.completer(node.relation, schema, dict(values))
        return schema.row_from_mapping(completed)

    def merge_with_existing(
        self,
        node_id: str,
        values: Dict[str, Any],
        existing: Tuple[Any, ...],
    ) -> Tuple[Any, ...]:
        """Overlay projected attributes onto an existing full tuple."""
        node = self.view_object.node(node_id)
        schema = self.schema(node.relation)
        mapping = schema.as_mapping(existing)
        mapping.update(values)
        return schema.row_from_mapping(mapping)

    def key_from_values(
        self, node_id: str, values: Dict[str, Any]
    ) -> Tuple[Any, ...]:
        """Primary key from a projected tuple (projections retain keys)."""
        node = self.view_object.node(node_id)
        schema = self.schema(node.relation)
        try:
            return tuple(values[k] for k in schema.key)
        except KeyError as error:
            raise UpdateRejectedError(
                f"component tuple for {node_id!r} lacks key attribute "
                f"{error.args[0]!r}",
                relation=node.relation,
            ) from None

    def projected_values_match(
        self, node_id: str, values: Dict[str, Any], existing: Tuple[Any, ...]
    ) -> bool:
        """Does the database tuple agree on every projected attribute?"""
        node = self.view_object.node(node_id)
        schema = self.schema(node.relation)
        projection = self.view_object.projection(node_id)
        existing_map = schema.as_mapping(existing)
        return all(
            existing_map[name] == values.get(name)
            for name in projection.attributes
        )
