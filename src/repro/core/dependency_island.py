"""Dependency islands and referencing peninsulas (Definitions 5.1, 5.2).

The **dependency island** D_ω is "the maximal subtree of the tree of
projections such that (1) the root of the subtree is the pivot relation,
and (2) all directed paths starting at the pivot relation must contain
exclusively ownership and subset connections". Here "directed" means the
connections are traversed *forward* — an owned or subset tuple is part
of the pivot entity; an owner reached backwards is not.

A **referencing peninsula** is a node of ω directly connected to an
island node by a reference connection pointing into the island, i.e. its
edge is a single inverse-reference traversal from its (island) parent.

For the paper's ω (Figure 2c) this module computes
D_ω = {COURSES, GRADES} and peninsulas = {CURRICULUM}, the Section 5
example.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set

from repro.core.view_object import ViewObjectDefinition
from repro.structural.connections import ConnectionKind

__all__ = ["NodeRole", "IslandAnalysis", "analyze_island"]


class NodeRole(enum.Enum):
    """How a node participates in update translation."""

    ISLAND = "island"
    PENINSULA = "peninsula"
    OUTSIDE = "outside"


class IslandAnalysis:
    """Roles of every node of a view object."""

    __slots__ = ("view_object", "roles")

    def __init__(
        self, view_object: ViewObjectDefinition, roles: Dict[str, NodeRole]
    ) -> None:
        self.view_object = view_object
        self.roles = roles

    @property
    def island_nodes(self) -> List[str]:
        """Island node ids in BFS (pivot-first) order."""
        return [
            node.node_id
            for node in self.view_object.tree.bfs()
            if self.roles[node.node_id] is NodeRole.ISLAND
        ]

    @property
    def peninsula_nodes(self) -> List[str]:
        return [
            node.node_id
            for node in self.view_object.tree.bfs()
            if self.roles[node.node_id] is NodeRole.PENINSULA
        ]

    @property
    def outside_nodes(self) -> List[str]:
        return [
            node.node_id
            for node in self.view_object.tree.bfs()
            if self.roles[node.node_id] is NodeRole.OUTSIDE
        ]

    @property
    def island_relations(self) -> List[str]:
        """Distinct relation names inside the island, pivot first."""
        seen: List[str] = []
        for node_id in self.island_nodes:
            relation = self.view_object.node(node_id).relation
            if relation not in seen:
                seen.append(relation)
        return seen

    def role(self, node_id: str) -> NodeRole:
        return self.roles[node_id]

    def is_island(self, node_id: str) -> bool:
        return self.roles[node_id] is NodeRole.ISLAND

    def describe(self) -> str:
        lines = [f"island analysis of {self.view_object.name!r}:"]
        for node in self.view_object.tree.bfs():
            lines.append(
                f"  {node.node_id}: {self.roles[node.node_id].value}"
            )
        return "\n".join(lines)


def analyze_island(view_object: ViewObjectDefinition) -> IslandAnalysis:
    """Compute node roles per Definitions 5.1 and 5.2."""
    tree = view_object.tree
    roles: Dict[str, NodeRole] = {}
    island: Set[str] = set()

    for node in tree.bfs():
        if node.path is None:
            roles[node.node_id] = NodeRole.ISLAND
            island.add(node.node_id)
            continue
        parent_in_island = node.parent_id in island
        all_dependency = all(
            traversal.forward
            and traversal.kind
            in (ConnectionKind.OWNERSHIP, ConnectionKind.SUBSET)
            for traversal in node.path
        )
        if parent_in_island and all_dependency:
            roles[node.node_id] = NodeRole.ISLAND
            island.add(node.node_id)
            continue
        is_peninsula = (
            parent_in_island
            and len(node.path) == 1
            and node.path.traversals[0].kind is ConnectionKind.REFERENCE
            and not node.path.traversals[0].forward
        )
        roles[node.node_id] = (
            NodeRole.PENINSULA if is_peninsula else NodeRole.OUTSIDE
        )
    return IslandAnalysis(view_object, roles)
