"""Converting the relevant subgraph G into the maximal tree T (Figure 2b).

"G is then converted into a tree T. That translation demands that the
circuits in G be broken. For that purpose, we expand all the paths in G
emanating from the pivot relation until either we can go no further
without creating a cycle or we reach a relation that is no longer
relevant."

We realize this as a **best-first unfolding**: starting from the pivot,
tree nodes are expanded in decreasing order of path relevance (the
product of traversal weights along their tree path), and every edge of G
is used exactly once across the whole tree. When G contains a circuit,
the circuit's edges are claimed one by one until the last edge attaches
a *second copy* of an already-present relation — exactly how Figure 2(b)
shows two copies of PEOPLE, one under DEPARTMENT and one under STUDENT.
Because stronger-information paths claim shared edges first, the
unfolding is deterministic and places duplicates at the
least-relevant ends of the circuit.

Pruning the maximal tree down to an actual view object (Figure 2c) is
:func:`prune_tree`; nodes pruned from the *middle* of a branch collapse
their edges into a multi-connection path (Figure 3's
``COURSES --* GRADES *-- STUDENT``).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ViewObjectError
from repro.core.information_metric import MetricWeights, RelevantSubgraph
from repro.core.projection_tree import ProjectionTree
from repro.structural.connections import Traversal
from repro.structural.paths import ConnectionPath
from repro.structural.schema_graph import StructuralSchema

__all__ = ["build_maximal_tree", "prune_tree"]


def build_maximal_tree(
    graph: StructuralSchema,
    subgraph: RelevantSubgraph,
    weights: Optional[MetricWeights] = None,
) -> ProjectionTree:
    """Unfold the relevant subgraph G into the maximal tree T."""
    weights = weights or MetricWeights()
    pivot = subgraph.pivot
    tree = ProjectionTree(pivot)
    used_edges: Set[str] = set()
    # Priority queue of tree nodes awaiting expansion:
    # (-path_relevance, tiebreak counter, node_id).
    heap: List[Tuple[float, int, str]] = [(-1.0, 0, tree.root_id)]
    relevance_of_node: Dict[str, float] = {tree.root_id: 1.0}
    counter = 0

    while heap:
        negative, __, node_id = heapq.heappop(heap)
        node = tree.node(node_id)
        # Candidate expansions: unused G-edges incident to this relation,
        # ordered deterministically by reached relation then edge name.
        candidates = []
        for connection in subgraph.incident(node.relation):
            if connection.name in used_edges:
                continue
            forward = connection.source == node.relation
            if not forward and connection.target != node.relation:
                continue
            traversal = Traversal(connection, forward=forward)
            candidates.append(traversal)
        candidates.sort(key=lambda t: (t.end, t.connection.name))
        for traversal in candidates:
            if traversal.connection.name in used_edges:
                continue
            used_edges.add(traversal.connection.name)
            child = tree.add_child(
                node_id, traversal.end, ConnectionPath([traversal])
            )
            child_relevance = (-negative) * weights.weight(graph, traversal)
            relevance_of_node[child.node_id] = child_relevance
            counter += 1
            heapq.heappush(heap, (-child_relevance, counter, child.node_id))
    return tree


def prune_tree(
    tree: ProjectionTree,
    keep: Iterable[str],
) -> ProjectionTree:
    """Restrict a maximal tree to the node ids in ``keep`` (Figure 2c).

    The root must be kept. A kept node whose ancestors were pruned is
    re-attached to its nearest kept ancestor; the traversals of the
    pruned intermediates concatenate into one composite
    :class:`ConnectionPath` — Figure 3's two-connection edge.
    """
    keep_set = set(keep)
    for node_id in keep_set:
        tree.node(node_id)  # validates existence
    if tree.root_id not in keep_set:
        raise ViewObjectError(
            f"pruning must keep the pivot node {tree.root_id!r}"
        )
    pruned = ProjectionTree(tree.root.relation, root_id=tree.root_id)

    def walk(
        original_id: str,
        kept_parent_id: str,
        pending: List[Traversal],
    ) -> None:
        for child in tree.children(original_id):
            trail = pending + list(child.path.traversals)
            if child.node_id in keep_set:
                pruned_node = pruned.add_child(
                    kept_parent_id,
                    child.relation,
                    ConnectionPath(trail),
                    node_id=child.node_id,
                )
                walk(child.node_id, pruned_node.node_id, [])
            else:
                walk(child.node_id, kept_parent_id, trail)

    walk(tree.root_id, tree.root_id, [])
    return pruned
