"""A writer-preferring readers-writer lock.

The serving workload this protects is read-mostly: many threads running
object queries against (possibly materialized) view objects, with
occasional translated updates. Readers proceed concurrently; a writer
waits for running readers to drain, and new readers queue behind a
waiting writer so updates cannot starve.

The write side is reentrant for its owning thread, and the owner may
also take read locks while writing — the facade's update path reads
through the same public methods it protects.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Readers share, writers exclude, waiting writers have priority."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._readers_waiting = 0
        self._writers_waiting = 0
        self._writer_owner: Optional[int] = None
        self._write_depth = 0
        self._owner_reads = 0

    # -- read side ---------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            if self._writer_owner == threading.get_ident():
                # The writer re-entering as a reader must not deadlock
                # against itself.
                self._owner_reads += 1
                return
            self._readers_waiting += 1
            try:
                while self._writer_owner is not None or self._writers_waiting:
                    self._cond.wait()
            finally:
                self._readers_waiting -= 1
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._writer_owner == threading.get_ident():
                if self._owner_reads <= 0:
                    raise RuntimeError("release_read without acquire_read")
                self._owner_reads -= 1
                return
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side --------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            me = threading.get_ident()
            if self._writer_owner == me:
                self._write_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer_owner is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_owner = me
            self._write_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer_owner != threading.get_ident():
                raise RuntimeError("write lock released by a non-owner thread")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer_owner = None
                self._owner_reads = 0
                self._cond.notify_all()

    # -- context managers --------------------------------------------------

    @contextlib.contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (for tests) -----------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def write_held(self) -> bool:
        with self._cond:
            return self._writer_owner is not None

    @property
    def waiting_readers(self) -> int:
        """Threads parked in ``acquire_read`` (tests poll this instead
        of sleeping a fixed interval)."""
        with self._cond:
            return self._readers_waiting

    @property
    def waiting_writers(self) -> int:
        """Threads parked in ``acquire_write``."""
        with self._cond:
            return self._writers_waiting

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadWriteLock(readers={self._readers}, "
            f"writer={self._writer_owner is not None}, "
            f"waiting={self._writers_waiting})"
        )
