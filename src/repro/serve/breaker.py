"""Health tracking for the serving layer: a small circuit breaker.

When the storage engine starts failing (injected faults, sqlite
busy/locked storms, a sick disk), retrying every request against it
makes things worse and makes every caller wait for the full retry
budget. The breaker turns repeated failures into an explicit state:

* ``HEALTHY`` — every request goes to the engine;
* ``DEGRADED`` — entered after ``failure_threshold`` consecutive engine
  faults. Writes fail fast with
  :class:`~repro.errors.DegradedServiceError`; reads are served stale
  from materialized caches. Every ``probe_interval``-th request is let
  through as a *probe* — one success closes the breaker again.

Probing is count-based rather than clock-based on purpose: the chaos
campaign and the tests need deterministic behaviour, and a served
request is as good a signal source as a timer.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

import repro.obs as obs

__all__ = ["CircuitBreaker", "HEALTHY", "DEGRADED"]

HEALTHY = "healthy"
DEGRADED = "degraded"


class CircuitBreaker:
    """Consecutive-failure breaker with count-based probing.

    Parameters
    ----------
    failure_threshold:
        Consecutive engine faults before the breaker opens (DEGRADED).
    probe_interval:
        While degraded, every Nth :meth:`allow` call is admitted as a
        probe; the others are refused (and served stale / failed fast
        by the caller).
    """

    def __init__(self, failure_threshold: int = 3, probe_interval: int = 4) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self._lock = threading.Lock()
        self._state = HEALTHY
        self._consecutive_failures = 0
        self._refused_since_probe = 0
        # lifetime counters
        self.opened = 0
        self.closed = 0
        self.probes = 0
        self.refusals = 0
        self.failures = 0
        self.successes = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def healthy(self) -> bool:
        return self.state == HEALTHY

    @property
    def degraded(self) -> bool:
        return self.state == DEGRADED

    # -- the protocol --------------------------------------------------------

    def allow(self) -> bool:
        """May the next request touch the engine?

        Healthy: always. Degraded: every ``probe_interval``-th call
        (a probe); the caller must report the probe's outcome through
        :meth:`record_success` / :meth:`record_failure` like any other
        engine call.
        """
        with self._lock:
            if self._state == HEALTHY:
                return True
            self._refused_since_probe += 1
            if self._refused_since_probe >= self.probe_interval:
                self._refused_since_probe = 0
                self.probes += 1
                obs.metrics().counter("breaker_probes_total").inc()
                return True
            self.refusals += 1
            obs.metrics().counter("breaker_refusals_total").inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state == DEGRADED:
                self._state = HEALTHY
                self.closed += 1
                obs.metrics().counter("breaker_closed_total").inc()
                obs.metrics().gauge("breaker_state").set(0)

    def record_failure(self) -> None:
        opened = False
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if (
                self._state == HEALTHY
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = DEGRADED
                self.opened += 1
                self._refused_since_probe = 0
                opened = True
                obs.metrics().counter("breaker_opened_total").inc()
                obs.metrics().gauge("breaker_state").set(1)
        if opened:
            # Outside the lock: the flight-recorder dump this may
            # trigger reads registries and span buffers, and nothing
            # about it needs the breaker's state to hold still.
            obs.anomaly(
                "breaker_open", consecutive_failures=self.failure_threshold
            )

    def reset(self) -> None:
        """Force-close the breaker (e.g. after out-of-band recovery)."""
        with self._lock:
            self._state = HEALTHY
            self._consecutive_failures = 0
            self._refused_since_probe = 0
        obs.metrics().gauge("breaker_state").set(0)

    # -- introspection -------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opened": self.opened,
                "closed": self.closed,
                "probes": self.probes,
                "refusals": self.refusals,
                "failures": self.failures,
                "successes": self.successes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.state}, failures={self.failures})"
