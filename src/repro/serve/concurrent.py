"""A thread-safe facade over one :class:`~repro.penguin.Penguin` session.

:class:`ConcurrentPenguin` partitions the facade's surface by effect:

* **shared** — ``query``, ``get``, integrity checks, cache statistics.
  These may run from any number of threads at once. (Queries over a
  materialized object still mutate its cache — sync, memoized assembly —
  which the view's own internal lock serializes; the readers-writer lock
  here guarantees no *translated update* is in flight meanwhile, so
  readers can never observe a half-applied translation.)
* **exclusive** — translated updates (single, query-driven, and
  batched), materialization changes, cache syncs, and definition-time
  operations. These take the write side and therefore see no concurrent
  readers.

The wrapper owns its lock but not the session: the underlying
``Penguin`` stays fully usable single-threaded, and is reachable via
``.penguin`` for configuration done before threads start.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import repro.obs as obs
from repro.core.instance import Instance
from repro.errors import DegradedServiceError, TransactionError
from repro.penguin import Penguin
from repro.relational.operations import UpdatePlan
from repro.relational.retry import is_transient_error
from repro.serve.breaker import CircuitBreaker
from repro.serve.locks import ReadWriteLock
from repro.structural.integrity import Violation
from repro.structural.schema_graph import StructuralSchema

__all__ = ["ConcurrentPenguin", "ServedRead"]


class ServedRead:
    """A read result plus the serving metadata the caller can't infer.

    Before this type existed, a DEGRADED-mode stale read was
    indistinguishable from a fresh one at the API surface; ``stale``
    makes the difference explicit, ``staleness`` counts how many
    changelog records the answering cache is behind, and ``shard``
    identifies the answering shard when served by a
    :class:`~repro.shard.sharded.ShardedPenguin` (None otherwise).
    ``source`` names a non-default answering stack — a replication
    layer sets ``"replica:<name>"`` when the primary could not serve —
    and is omitted from :meth:`meta` when unset, keeping the wire
    format unchanged for primary-served reads.
    """

    __slots__ = ("value", "stale", "shard", "staleness", "object_name", "source")

    def __init__(
        self,
        value: Any,
        stale: bool,
        shard: Optional[int] = None,
        staleness: Optional[int] = None,
        object_name: str = "",
        source: Optional[str] = None,
    ) -> None:
        self.value = value
        self.stale = stale
        self.shard = shard
        self.staleness = staleness
        self.object_name = object_name
        self.source = source

    def meta(self) -> Dict[str, Any]:
        """The metadata alone, JSON-safe (threaded into HTTP responses)."""
        out = {
            "object": self.object_name,
            "stale": self.stale,
            "shard": self.shard,
            "staleness": self.staleness,
        }
        if self.source is not None:
            out["source"] = self.source
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServedRead({self.object_name!r}, stale={self.stale}, "
            f"shard={self.shard})"
        )


def _is_engine_fault(exc: BaseException) -> bool:
    """Failures that indicate a sick engine rather than a bad request.

    Validation and translation rejections are the caller's problem and
    must not trip the breaker; transient storage faults and failed
    commits are the engine's.
    """
    return is_transient_error(exc) or isinstance(exc, TransactionError)


class ConcurrentPenguin:
    """Readers-writer concurrency control around a ``Penguin`` session.

    Accepts an existing session, or a :class:`StructuralSchema` plus
    ``Penguin`` keyword arguments to build one::

        serving = ConcurrentPenguin(penguin)
        serving = ConcurrentPenguin(university_schema(), backend="sqlite")

    A :class:`~repro.serve.breaker.CircuitBreaker` tracks engine health.
    After ``breaker.failure_threshold`` consecutive engine faults the
    facade enters the DEGRADED state: writes fail fast with
    :class:`~repro.errors.DegradedServiceError`, and reads are served
    *stale* from materialized caches (counted in each view's
    ``stats.stale_reads``). Every few refused requests one probe is let
    through to the engine; the first success closes the breaker.
    """

    def __init__(
        self,
        session: Union[Penguin, StructuralSchema],
        breaker: Optional[CircuitBreaker] = None,
        **penguin_kwargs: Any,
    ) -> None:
        if isinstance(session, Penguin):
            if penguin_kwargs:
                raise TypeError(
                    "keyword arguments are only accepted when building a "
                    "new session from a StructuralSchema"
                )
            self.penguin = session
        else:
            self.penguin = Penguin(session, **penguin_kwargs)
        self.lock = ReadWriteLock()
        self.breaker = breaker or CircuitBreaker()
        #: Extra labels stamped on every serving metric this facade
        #: emits; a ShardedPenguin sets ``{"shard": "<id>"}`` here so
        #: per-shard series stay distinguishable (and bounded by the
        #: shard count).
        self.metric_labels: Dict[str, str] = {}
        #: The cluster component this facade's serving metrics belong
        #: to (``"shard0"``, ``"shard0/r1"``, ...). Empty means the
        #: global registry — a standalone facade behaves exactly as
        #: before. :class:`~repro.obs.cluster.ClusterMetrics` merges
        #: component registries back into one labeled render.
        self.component: str = ""

    def _registry(self):
        return obs.component_metrics(self.component)

    # -- health-routed execution --------------------------------------------

    def _read(
        self,
        engine_read: Callable[[], Any],
        stale_read: Callable[[], Any],
    ) -> Any:
        return self._read_traced(engine_read, stale_read)[0]

    def _read_traced(
        self,
        engine_read: Callable[[], Any],
        stale_read: Callable[[], Any],
    ) -> Tuple[Any, bool]:
        """Serve a read: engine when healthy (or probing), stale otherwise.

        Returns ``(value, stale)`` so callers can surface the serving
        mode instead of silently passing off a possibly-outdated answer
        as fresh. ``stale_read`` raises :class:`DegradedServiceError`
        itself when it cannot answer (no materialized cache, filtered
        query).
        """
        if self.breaker.allow():
            try:
                with self.lock.read_locked():
                    result = engine_read()
            except Exception as exc:
                if not _is_engine_fault(exc):
                    raise
                self.breaker.record_failure()
                if self.breaker.degraded:
                    self._registry().counter(
                        "serve_reads_total", mode="stale", **self.metric_labels
                    ).inc()
                    return stale_read(), True
                raise
            self.breaker.record_success()
            self._registry().counter(
                "serve_reads_total", mode="engine", **self.metric_labels
            ).inc()
            return result, False
        self._registry().counter(
            "serve_reads_total", mode="stale", **self.metric_labels
        ).inc()
        return stale_read(), True

    def _write(
        self,
        engine_write: Callable[[], Any],
        op: str = "update",
        object_name: str = "",
    ) -> Any:
        """Run a translated update, fail-fast while degraded.

        The breaker is consulted *before* taking the write lock, so a
        degraded facade refuses immediately instead of queueing callers
        behind the writer lock. Refusals are audited (outcome
        ``degraded_rejected``) when the session carries an audit log —
        the trail records updates that were *asked for* and never ran,
        not just the ones that did.
        """
        if not self.breaker.allow():
            self._registry().counter(
                "serve_writes_total", mode="refused", **self.metric_labels
            ).inc()
            self._audit_refusal(op, object_name)
            raise DegradedServiceError(
                "service is degraded: writes are refused while the "
                "engine is unhealthy"
            )
        with self.lock.write_locked():
            try:
                result = engine_write()
            except Exception as exc:
                if _is_engine_fault(exc):
                    self.breaker.record_failure()
                self._registry().counter(
                    "serve_writes_total", mode="failed", **self.metric_labels
                ).inc()
                raise
        self.breaker.record_success()
        self._registry().counter(
            "serve_writes_total", mode="applied", **self.metric_labels
        ).inc()
        return result

    def _refuse_stale(self, reason: str) -> Any:
        raise DegradedServiceError(f"service is degraded: {reason}")

    def _audit_refusal(self, op: str, object_name: str) -> None:
        audit = getattr(self.penguin, "audit", None)
        if audit is None:
            return
        from repro.obs.audit import DEGRADED_REJECTED

        audit.append(
            op=op,
            object_name=object_name,
            outcome=DEGRADED_REJECTED,
            error="DegradedServiceError: writes refused while degraded",
        )

    def health(self) -> Dict[str, Any]:
        """The breaker's state and counters, plus total stale reads."""
        report = self.breaker.as_dict()
        report["stale_reads"] = sum(
            view_stats.get("stale_reads", 0)
            for view_stats in self.penguin.cache_stats().values()
        )
        return report

    # -- shared (read-side) operations -------------------------------------

    def query(self, name: str, text: Optional[str] = None) -> List[Instance]:
        return self._read(
            lambda: self.penguin.query(name, text),
            lambda: self._stale_query(name, text),
        )

    def get(self, name: str, key: Sequence[Any]) -> Optional[Instance]:
        return self._read(
            lambda: self.penguin.get(name, key),
            lambda: self._stale_get(name, key),
        )

    def query_served(
        self, name: str, text: Optional[str] = None
    ) -> ServedRead:
        """Like :meth:`query`, with the serving metadata attached."""
        value, stale = self._read_traced(
            lambda: self.penguin.query(name, text),
            lambda: self._stale_query(name, text),
        )
        return self._served(name, value, stale)

    def get_served(self, name: str, key: Sequence[Any]) -> ServedRead:
        """Like :meth:`get`, with the serving metadata attached."""
        value, stale = self._read_traced(
            lambda: self.penguin.get(name, key),
            lambda: self._stale_get(name, key),
        )
        return self._served(name, value, stale)

    def _served(self, name: str, value: Any, stale: bool) -> ServedRead:
        staleness = None
        if stale:
            view = self.penguin.materialized(name)
            if view is not None:
                staleness = view.staleness()
        return ServedRead(
            value=value, stale=stale, staleness=staleness, object_name=name
        )

    def _stale_query(self, name: str, text: Optional[str]) -> List[Instance]:
        view = self.penguin.materialized(name)
        if view is None:
            return self._refuse_stale(
                f"view object {name!r} has no materialized cache to "
                f"serve stale reads from"
            )
        if text:
            return self._refuse_stale(
                "filtered queries need the engine; only full-extent "
                "reads are served stale"
            )
        return view.stale_all()

    def _stale_get(self, name: str, key: Sequence[Any]) -> Instance:
        view = self.penguin.materialized(name)
        if view is None:
            return self._refuse_stale(
                f"view object {name!r} has no materialized cache to "
                f"serve stale reads from"
            )
        instance = view.stale_get(key)
        if instance is None:
            # Not cached — absence cannot be proven without the engine,
            # so refusing beats answering a possibly-wrong None.
            return self._refuse_stale(
                f"instance {tuple(key)!r} of {name!r} is not cached"
            )
        return instance

    def check_integrity(self) -> List[Violation]:
        with self.lock.read_locked():
            return self.penguin.check_integrity()

    def is_consistent(self) -> bool:
        with self.lock.read_locked():
            return self.penguin.is_consistent()

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        with self.lock.read_locked():
            return self.penguin.cache_stats()

    def metrics_snapshot(
        self, component: Optional[str] = None
    ) -> Dict[str, Any]:
        """The merged cluster metrics snapshot (global + components).

        Safe under concurrent serving: registries take no facade-wide
        lock, so this never blocks readers or writers. ``component``
        narrows the view to one shard/replica registry.
        """
        from repro.obs.cluster import ClusterMetrics

        return ClusterMetrics().snapshot(component)

    def metrics_text(self, component: Optional[str] = None) -> str:
        """The merged cluster metrics, rendered for scraping."""
        from repro.obs.cluster import ClusterMetrics

        return ClusterMetrics().render_text(component)

    # -- exclusive (write-side) operations ----------------------------------

    def insert(self, name: str, instance: Union[Instance, Mapping]) -> UpdatePlan:
        return self._write(
            lambda: self.penguin.insert(name, instance),
            op="insert", object_name=name,
        )

    def delete(
        self, name: str, key_or_instance: Union[Instance, Mapping, Sequence[Any]]
    ) -> UpdatePlan:
        return self._write(
            lambda: self.penguin.delete(name, key_or_instance),
            op="delete", object_name=name,
        )

    def replace(
        self,
        name: str,
        old: Union[Instance, Mapping, Sequence[Any]],
        new: Union[Instance, Mapping],
    ) -> UpdatePlan:
        return self._write(
            lambda: self.penguin.replace(name, old, new),
            op="replace", object_name=name,
        )

    def insert_many(
        self, name: str, instances: Iterable[Union[Instance, Mapping]]
    ) -> UpdatePlan:
        return self._write(
            lambda: self.penguin.insert_many(name, instances),
            op="insert", object_name=name,
        )

    def delete_many(
        self,
        name: str,
        keys_or_instances: Iterable[Union[Instance, Mapping, Sequence[Any]]],
    ) -> UpdatePlan:
        return self._write(
            lambda: self.penguin.delete_many(name, keys_or_instances),
            op="delete", object_name=name,
        )

    def apply_plan_batch(self, name: str, requests: Iterable) -> UpdatePlan:
        return self._write(
            lambda: self.penguin.apply_plan_batch(name, requests),
            op="batch", object_name=name,
        )

    def apply_plan(
        self, name: str, plan: UpdatePlan, op: str = "update", items: int = 1
    ) -> UpdatePlan:
        """Apply an already-translated coalesced plan, journaled and audited.

        The sharded write path translates on the owning shard via the
        side-effect-free explain pipeline and then lands the plan here,
        under this facade's breaker and write lock — the plan is not
        re-translated.
        """
        return self._write(
            lambda: self.penguin.apply_translated_plan(
                name, plan, op=op, items=items
            ),
            op=op, object_name=name,
        )

    def delete_where(self, name: str, query: str) -> UpdatePlan:
        return self._write(
            lambda: self.penguin.delete_where(name, query),
            op="delete_where", object_name=name,
        )

    def update_where(self, name: str, query: str, transform) -> UpdatePlan:
        return self._write(
            lambda: self.penguin.update_where(name, query, transform),
            op="update_where", object_name=name,
        )

    # -- materialization (write-side: reshapes what readers see) -------------

    def materialize(self, name: str, policy: Optional[str] = None):
        with self.lock.write_locked():
            if policy is None:
                return self.penguin.materialize(name)
            return self.penguin.materialize(name, policy)

    def dematerialize(self, name: str) -> None:
        with self.lock.write_locked():
            self.penguin.dematerialize(name)

    def sync(self, name: Optional[str] = None) -> int:
        """Bring one (or every) materialized cache up to date, exclusively."""
        with self.lock.write_locked():
            if name is not None:
                view = self.penguin.materialized(name)
                return view.sync() if view is not None else 0
            return self.penguin._materialized.sync_all()

    # -- definition-time operations (write-side) ------------------------------

    def define_object(self, *args: Any, **kwargs: Any):
        with self.lock.write_locked():
            return self.penguin.define_object(*args, **kwargs)

    def register_object(self, view_object) -> None:
        with self.lock.write_locked():
            self.penguin.register_object(view_object)

    def choose_translator(self, name: str, answers=None):
        with self.lock.write_locked():
            return self.penguin.choose_translator(name, answers)

    def set_policy(self, name: str, policy):
        with self.lock.write_locked():
            return self.penguin.set_policy(name, policy)

    # -- passthrough introspection -------------------------------------------

    @property
    def engine(self):
        return self.penguin.engine

    @property
    def graph(self) -> StructuralSchema:
        return self.penguin.graph

    @property
    def object_names(self) -> Tuple[str, ...]:
        return self.penguin.object_names

    @property
    def materialized_names(self) -> Tuple[str, ...]:
        return self.penguin.materialized_names

    def object(self, name: str):
        return self.penguin.object(name)

    def translator(self, name: str):
        return self.penguin.translator(name)

    def materialized(self, name: str):
        return self.penguin.materialized(name)

    def risk_summary(self):
        return self.penguin.risk_summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConcurrentPenguin({self.penguin!r})"
