"""A thread-safe facade over one :class:`~repro.penguin.Penguin` session.

:class:`ConcurrentPenguin` partitions the facade's surface by effect:

* **shared** — ``query``, ``get``, integrity checks, cache statistics.
  These may run from any number of threads at once. (Queries over a
  materialized object still mutate its cache — sync, memoized assembly —
  which the view's own internal lock serializes; the readers-writer lock
  here guarantees no *translated update* is in flight meanwhile, so
  readers can never observe a half-applied translation.)
* **exclusive** — translated updates (single, query-driven, and
  batched), materialization changes, cache syncs, and definition-time
  operations. These take the write side and therefore see no concurrent
  readers.

The wrapper owns its lock but not the session: the underlying
``Penguin`` stays fully usable single-threaded, and is reachable via
``.penguin`` for configuration done before threads start.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.instance import Instance
from repro.penguin import Penguin
from repro.relational.operations import UpdatePlan
from repro.serve.locks import ReadWriteLock
from repro.structural.integrity import Violation
from repro.structural.schema_graph import StructuralSchema

__all__ = ["ConcurrentPenguin"]


class ConcurrentPenguin:
    """Readers-writer concurrency control around a ``Penguin`` session.

    Accepts an existing session, or a :class:`StructuralSchema` plus
    ``Penguin`` keyword arguments to build one::

        serving = ConcurrentPenguin(penguin)
        serving = ConcurrentPenguin(university_schema(), backend="sqlite")
    """

    def __init__(
        self, session: Union[Penguin, StructuralSchema], **penguin_kwargs: Any
    ) -> None:
        if isinstance(session, Penguin):
            if penguin_kwargs:
                raise TypeError(
                    "keyword arguments are only accepted when building a "
                    "new session from a StructuralSchema"
                )
            self.penguin = session
        else:
            self.penguin = Penguin(session, **penguin_kwargs)
        self.lock = ReadWriteLock()

    # -- shared (read-side) operations -------------------------------------

    def query(self, name: str, text: Optional[str] = None) -> List[Instance]:
        with self.lock.read_locked():
            return self.penguin.query(name, text)

    def get(self, name: str, key: Sequence[Any]) -> Optional[Instance]:
        with self.lock.read_locked():
            return self.penguin.get(name, key)

    def check_integrity(self) -> List[Violation]:
        with self.lock.read_locked():
            return self.penguin.check_integrity()

    def is_consistent(self) -> bool:
        with self.lock.read_locked():
            return self.penguin.is_consistent()

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        with self.lock.read_locked():
            return self.penguin.cache_stats()

    # -- exclusive (write-side) operations ----------------------------------

    def insert(self, name: str, instance: Union[Instance, Mapping]) -> UpdatePlan:
        with self.lock.write_locked():
            return self.penguin.insert(name, instance)

    def delete(
        self, name: str, key_or_instance: Union[Instance, Mapping, Sequence[Any]]
    ) -> UpdatePlan:
        with self.lock.write_locked():
            return self.penguin.delete(name, key_or_instance)

    def replace(
        self,
        name: str,
        old: Union[Instance, Mapping, Sequence[Any]],
        new: Union[Instance, Mapping],
    ) -> UpdatePlan:
        with self.lock.write_locked():
            return self.penguin.replace(name, old, new)

    def insert_many(
        self, name: str, instances: Iterable[Union[Instance, Mapping]]
    ) -> UpdatePlan:
        with self.lock.write_locked():
            return self.penguin.insert_many(name, instances)

    def delete_many(
        self,
        name: str,
        keys_or_instances: Iterable[Union[Instance, Mapping, Sequence[Any]]],
    ) -> UpdatePlan:
        with self.lock.write_locked():
            return self.penguin.delete_many(name, keys_or_instances)

    def apply_plan_batch(self, name: str, requests: Iterable) -> UpdatePlan:
        with self.lock.write_locked():
            return self.penguin.apply_plan_batch(name, requests)

    def delete_where(self, name: str, query: str) -> UpdatePlan:
        with self.lock.write_locked():
            return self.penguin.delete_where(name, query)

    def update_where(self, name: str, query: str, transform) -> UpdatePlan:
        with self.lock.write_locked():
            return self.penguin.update_where(name, query, transform)

    # -- materialization (write-side: reshapes what readers see) -------------

    def materialize(self, name: str, policy: Optional[str] = None):
        with self.lock.write_locked():
            if policy is None:
                return self.penguin.materialize(name)
            return self.penguin.materialize(name, policy)

    def dematerialize(self, name: str) -> None:
        with self.lock.write_locked():
            self.penguin.dematerialize(name)

    def sync(self, name: Optional[str] = None) -> int:
        """Bring one (or every) materialized cache up to date, exclusively."""
        with self.lock.write_locked():
            if name is not None:
                view = self.penguin.materialized(name)
                return view.sync() if view is not None else 0
            return self.penguin._materialized.sync_all()

    # -- definition-time operations (write-side) ------------------------------

    def define_object(self, *args: Any, **kwargs: Any):
        with self.lock.write_locked():
            return self.penguin.define_object(*args, **kwargs)

    def register_object(self, view_object) -> None:
        with self.lock.write_locked():
            self.penguin.register_object(view_object)

    def choose_translator(self, name: str, answers=None):
        with self.lock.write_locked():
            return self.penguin.choose_translator(name, answers)

    def set_policy(self, name: str, policy):
        with self.lock.write_locked():
            return self.penguin.set_policy(name, policy)

    # -- passthrough introspection -------------------------------------------

    @property
    def engine(self):
        return self.penguin.engine

    @property
    def graph(self) -> StructuralSchema:
        return self.penguin.graph

    @property
    def object_names(self) -> Tuple[str, ...]:
        return self.penguin.object_names

    @property
    def materialized_names(self) -> Tuple[str, ...]:
        return self.penguin.materialized_names

    def object(self, name: str):
        return self.penguin.object(name)

    def translator(self, name: str):
        return self.penguin.translator(name)

    def materialized(self, name: str):
        return self.penguin.materialized(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConcurrentPenguin({self.penguin!r})"
