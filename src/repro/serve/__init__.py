"""Concurrent serving layer.

Nothing below this package is thread-safe on its own: the engines
serialize only their batched fast paths, and the translation algorithms
read and write freely. :class:`ConcurrentPenguin` makes one
:class:`~repro.penguin.Penguin` session safe to share across threads
with a readers-writer lock — queries and instance lookups run
concurrently, while translated updates, materialization, and cache
syncs get exclusive access.
"""

from repro.serve.breaker import DEGRADED, HEALTHY, CircuitBreaker
from repro.serve.concurrent import ConcurrentPenguin, ServedRead
from repro.serve.http import MicroBatcher, PenguinServer, ServerHandle
from repro.serve.load import LoadReport, run_load
from repro.serve.locks import ReadWriteLock

__all__ = [
    "ConcurrentPenguin",
    "ReadWriteLock",
    "CircuitBreaker",
    "HEALTHY",
    "DEGRADED",
    "LoadReport",
    "MicroBatcher",
    "PenguinServer",
    "ServedRead",
    "ServerHandle",
    "run_load",
]
