"""A zipfian HTTP load generator for the serving front end.

Drives a running :class:`~repro.serve.http.PenguinServer` with the
multi-tenant :class:`~repro.workloads.synthetic.ZipfianWorkload`
stream — hot keys dominated by the head of the zipf law, a small
write fraction, everything derived from one seed — over ``workers``
concurrent keep-alive connections, and reports the latency
distribution, throughput, error counts, and how many answers were
served stale.

The client is raw asyncio (``open_connection`` + hand-rolled HTTP/1.1
parsing) for the same reason the server is: the container ships no
HTTP client library worth blocking the event loop for, and the
protocol subset needed here is ten lines. Operations map onto the
view-object routes:

* ``read``   → ``GET /objects/<object>/<key(rank)>``
* ``update`` → ``GET`` the instance, tweak one attribute, ``PUT`` it
  back (a read-modify-write, the paper's replacement semantics)
* ``insert`` → ``POST`` a fresh chart keyed far above the population
* ``delete`` → ``DELETE`` a previously inserted chart (falls back to
  a read when this worker has not inserted anything yet)

Run it via ``python -m repro serve --load-ops N`` or the serve-smoke
CI job; :func:`run_load` is also importable for tests.
"""

from __future__ import annotations

import asyncio
import json
import math
import statistics
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.workloads.synthetic import ZipfianWorkload

__all__ = ["LoadReport", "run_load", "http_request"]


async def http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    host: str = "localhost",
) -> Tuple[int, bytes]:
    """One keep-alive HTTP/1.1 request on an open connection."""
    payload = body or b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Content-Type: application/json\r\n"
        f"Connection: keep-alive\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()

    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split(b" ", 2)[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        if key.strip().lower() == "content-length":
            length = int(value.strip())
    body_bytes = await reader.readexactly(length) if length else b""
    return status, body_bytes


class LoadReport:
    """Everything a load run measured, JSON-ready."""

    def __init__(self) -> None:
        self.samples: List[Tuple[str, int, float, bool]] = []
        self.elapsed = 0.0
        self.workload = ""

    def record(
        self, kind: str, status: int, seconds: float, stale: bool
    ) -> None:
        self.samples.append((kind, status, seconds, stale))

    # -- aggregates ----------------------------------------------------------

    @property
    def ops(self) -> int:
        return len(self.samples)

    @property
    def errors(self) -> int:
        return sum(1 for _, status, _, _ in self.samples if status >= 500)

    @property
    def rejected(self) -> int:
        return sum(
            1 for _, status, _, _ in self.samples if 400 <= status < 500
        )

    @property
    def stale_reads(self) -> int:
        return sum(1 for _, _, _, stale in self.samples if stale)

    @property
    def throughput(self) -> float:
        return self.ops / self.elapsed if self.elapsed else 0.0

    def latency_ms(self, kind: Optional[str] = None) -> List[float]:
        return [
            seconds * 1000.0
            for sample_kind, _, seconds, _ in self.samples
            if kind is None or sample_kind == kind
        ]

    @staticmethod
    def percentile(samples: List[float], q: float) -> float:
        """Nearest-rank percentile (q in [0, 1])."""
        if not samples:
            return 0.0
        ordered = sorted(samples)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[rank]

    def summary(self, kind: Optional[str] = None) -> Dict[str, float]:
        samples = self.latency_ms(kind)
        if not samples:
            return {"iterations": 0}
        return {
            "iterations": len(samples),
            "median": statistics.median(samples),
            "p95": self.percentile(samples, 0.95),
            "p99": self.percentile(samples, 0.99),
            "min": min(samples),
            "max": max(samples),
        }

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for kind, _, _, _ in self.samples:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "ops": self.ops,
            "elapsed_s": round(self.elapsed, 4),
            "throughput_ops_s": round(self.throughput, 1),
            "errors_5xx": self.errors,
            "rejected_4xx": self.rejected,
            "stale_reads": self.stale_reads,
            "kinds": self.kinds(),
            "latency_ms": self.summary(),
            "latency_ms_read": self.summary("read"),
            "latency_ms_write": {
                "p95": self.percentile(
                    self.latency_ms("update")
                    + self.latency_ms("insert")
                    + self.latency_ms("delete"),
                    0.95,
                ),
            },
        }

    def describe(self) -> str:
        lat = self.summary()
        return (
            f"{self.ops} ops in {self.elapsed:.2f}s "
            f"({self.throughput:.0f} ops/s), "
            f"p50 {lat.get('median', 0):.2f}ms "
            f"p95 {lat.get('p95', 0):.2f}ms p99 {lat.get('p99', 0):.2f}ms, "
            f"{self.errors} errors, {self.rejected} rejected, "
            f"{self.stale_reads} stale"
        )


def _fresh_chart(pid: int) -> Dict[str, Any]:
    """A minimal valid patient chart for inserts (one visit, no leaves)."""
    return {
        "patient_id": pid,
        "name": f"Load Patient {pid}",
        "birth_year": 1960 + (pid % 50),
        "ward_name": None,
        "VISIT": [
            {
                "patient_id": pid,
                "visit_no": 1,
                "visit_date": "1991-05-29",
                "physician_id": 9000,
                "reason": "load",
                "DIAGNOSIS": [],
                "PRESCRIPTION": [],
                "LAB_RESULT": [],
                "PHYSICIAN": [],
            }
        ],
    }


async def run_load(
    host: str,
    port: int,
    ops: int = 400,
    workers: int = 8,
    object_name: str = "patient_chart",
    population: int = 25,
    base_key: int = 100,
    insert_base: int = 70_000,
    skew: float = 1.1,
    seed: int = 7,
    tenants: int = 4,
    read_fraction: float = 0.7,
    insert_fraction: float = 0.1,
    delete_fraction: float = 0.05,
) -> LoadReport:
    """Drive the server with a seeded zipfian stream; return the report.

    ``population`` keys (``base_key + rank``) receive the zipf-weighted
    read/update traffic; inserts land far above at ``insert_base +
    sequence`` so they never collide with the resident population.
    """
    workload = ZipfianWorkload(
        population=population,
        skew=skew,
        seed=seed,
        tenants=tenants,
        read_fraction=read_fraction,
        insert_fraction=insert_fraction,
        delete_fraction=delete_fraction,
    )
    stream = list(workload.ops(ops))
    queue: asyncio.Queue = asyncio.Queue()
    for op in stream:
        queue.put_nowait(op)

    report = LoadReport()
    report.workload = workload.describe()
    inserted: List[int] = []

    async def do_op(reader, writer, op) -> Tuple[str, int, bool]:
        key = base_key + op.rank
        if op.kind == "read":
            status, body = await http_request(
                reader, writer, "GET", f"/objects/{object_name}/{key}",
                host=host,
            )
            return "read", status, _is_stale(body)
        if op.kind == "insert":
            pid = insert_base + op.sequence
            body = json.dumps(
                {"instance": _fresh_chart(pid)}
            ).encode("utf-8")
            status, _ = await http_request(
                reader, writer, "POST", f"/objects/{object_name}",
                body=body, host=host,
            )
            if status == 201:
                inserted.append(pid)
            return "insert", status, False
        if op.kind == "delete":
            if not inserted:
                status, body = await http_request(
                    reader, writer, "GET",
                    f"/objects/{object_name}/{key}", host=host,
                )
                return "read", status, _is_stale(body)
            pid = inserted.pop()
            status, _ = await http_request(
                reader, writer, "DELETE",
                f"/objects/{object_name}/{pid}", host=host,
            )
            return "delete", status, False
        # update: read-modify-write through the replacement route.
        status, body = await http_request(
            reader, writer, "GET", f"/objects/{object_name}/{key}",
            host=host,
        )
        if status != 200:
            return "update", status, False
        instance = json.loads(body.decode("utf-8"))["instance"]
        instance["name"] = f"Patient #{key} t{op.tenant} s{op.sequence}"
        put_body = json.dumps({"instance": instance}).encode("utf-8")
        status, _ = await http_request(
            reader, writer, "PUT", f"/objects/{object_name}/{key}",
            body=put_body, host=host,
        )
        return "update", status, False

    async def worker() -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                try:
                    op = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                started = time.perf_counter()
                try:
                    kind, status, stale = await do_op(reader, writer, op)
                except (ConnectionError, asyncio.IncompleteReadError):
                    report.record(op.kind, 599, 0.0, False)
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                    continue
                report.record(
                    kind, status, time.perf_counter() - started, stale
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    started = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(workers)])
    report.elapsed = time.perf_counter() - started
    return report


def _is_stale(body: bytes) -> bool:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return False
    meta = payload.get("meta") if isinstance(payload, dict) else None
    return bool(meta and meta.get("stale"))
