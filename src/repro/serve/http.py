"""An asyncio HTTP/JSON front end over a (sharded) Penguin session.

:class:`PenguinServer` binds ``asyncio.start_server`` to a small
HTTP/1.1 surface — health, metrics, object queries and gets, and the
three view-object write verbs — and serves them from a
:class:`~repro.shard.sharded.ShardedPenguin` or a single
:class:`~repro.serve.concurrent.ConcurrentPenguin`. The session's
translation pipeline is synchronous by design (the paper's algorithms
are CPU-bound tree walks), so the event loop never runs it inline:
every session call is pushed to the default executor and the loop
stays free to accept and parse connections.

Writes additionally pass through a :class:`MicroBatcher`: concurrent
requests arriving within one ``batch_window`` for the same view object
are folded into a single ``apply_plan_batch`` call — one translation,
one coalesced plan, one journal entry per owner shard — which is where
the serving layer earns back the per-request overhead under zipfian
contention on a hot object. A failed batch falls back to applying its
requests individually so one bad request rejects alone instead of
poisoning its whole window.

Read responses carry the :class:`~repro.serve.concurrent.ServedRead`
metadata (``stale``, ``shard``, ``staleness``), so a DEGRADED-mode
answer is visibly marked at the HTTP surface rather than passed off
as fresh. Error mapping: unknown objects are 404, validation and
translation rejections 400, DEGRADED refusals 503 with a
``Retry-After`` hint, deadline expiries 504, everything else 500.

Overload protection is explicit. Each request runs under a
**deadline** — client-supplied via ``X-Deadline-Ms`` or the server's
``default_deadline_ms`` — with partial-work safety: a write whose
budget is spent is rejected *before* translation (504, nothing
applied), and one that already entered the batcher is never cancelled
mid-commit (the 504 says the write may still apply). An **admission
gate** sheds load past ``max_in_flight`` concurrent requests with a
503 + ``Retry-After`` before any session work happens. ``stop()``
drains gracefully: the listener closes first, in-flight requests run
to completion and get their responses, the batcher flushes, and only
then do connections close.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.obs.cluster import ClusterMetrics, SloTarget, SloTracker
from repro.obs.context import (
    TraceContext,
    attach,
    current_context,
    format_traceparent,
    new_request_id,
    new_trace_id,
    parse_traceparent,
)
from repro.core.updates.operations import (
    CompleteDeletion,
    CompleteInsertion,
    Replacement,
    UpdateRequest,
)
from repro.errors import (
    DegradedServiceError,
    QueryError,
    RelationalError,
    ReproError,
    TransactionError,
    TransientEngineError,
    UpdateError,
    ViewObjectError,
)
from repro.serve.concurrent import ServedRead

__all__ = ["MicroBatcher", "PenguinServer", "ServerHandle", "parse_key"]

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_BODY_BYTES = 1 << 20


def parse_key(text: str) -> Tuple[Any, ...]:
    """An object key from its URL form: comma-separated, ints coerced.

    ``/objects/patient_chart/4711`` addresses key ``(4711,)`` — each
    segment is tried as an int, then a float, and kept as a string
    otherwise, matching how the workloads type their key attributes.
    """
    parts = []
    for raw in text.split(","):
        value: Any = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                pass
        parts.append(value)
    return tuple(parts)


class _HttpError(Exception):
    """An error with a status code, raised by handlers, rendered as JSON."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _classify(exc: BaseException) -> _HttpError:
    if isinstance(exc, _HttpError):
        return exc
    if isinstance(exc, asyncio.TimeoutError):
        return _HttpError(504, "deadline exceeded")
    if isinstance(exc, DegradedServiceError):
        return _HttpError(503, str(exc))
    if isinstance(exc, ViewObjectError) and not isinstance(exc, QueryError):
        # Unknown object names raise ViewObjectError from the registry.
        return _HttpError(404, str(exc))
    if isinstance(exc, QueryError):
        return _HttpError(400, str(exc))
    if isinstance(exc, UpdateError):
        return _HttpError(400, str(exc))
    if isinstance(exc, (TransientEngineError, TransactionError)):
        return _HttpError(503, str(exc))
    if isinstance(exc, (RelationalError, ReproError, KeyError, ValueError,
                        TypeError)):
        return _HttpError(400, str(exc))
    return _HttpError(500, f"{type(exc).__name__}: {exc}")


class _Deadline:
    """A per-request time budget on the loop's monotonic clock."""

    __slots__ = ("loop", "at")

    def __init__(self, loop: asyncio.AbstractEventLoop, seconds: float) -> None:
        self.loop = loop
        self.at = loop.time() + seconds

    @property
    def remaining(self) -> float:
        return self.at - self.loop.time()

    @property
    def expired(self) -> bool:
        return self.remaining <= 0.0


class MicroBatcher:
    """Fold concurrent writes per view object into one coalesced batch.

    Callers :meth:`submit` an :class:`UpdateRequest` and await the
    returned future. The first request for an object opens a window
    (``loop.call_later``); everything arriving before the timer fires —
    or before the queue reaches ``max_batch`` — flushes together
    through ``session.apply_plan_batch``, off-loop in the executor.

    Batch-level failure falls back to per-request application: each
    request is retried alone and only the genuinely bad ones get their
    future rejected. The common failure (one invalid chart among ten
    inserts) therefore costs one extra round instead of ten rejections.
    """

    def __init__(
        self,
        session: Any,
        loop: asyncio.AbstractEventLoop,
        window: float = 0.005,
        max_batch: int = 32,
    ) -> None:
        self.session = session
        self.loop = loop
        self.window = window
        self.max_batch = max_batch
        self._queues: Dict[
            str,
            List[Tuple[UpdateRequest, asyncio.Future, Optional[TraceContext]]],
        ] = {}
        self._timers: Dict[str, asyncio.TimerHandle] = {}
        self.batches_flushed = 0
        self.requests_batched = 0

    def submit(self, name: str, request: UpdateRequest) -> "asyncio.Future":
        future: asyncio.Future = self.loop.create_future()
        queue = self._queues.setdefault(name, [])
        # Capture the submitter's trace context: the executor thread
        # that applies the batch starts with an empty contextvars
        # context, so the handoff must be explicit.
        queue.append((request, future, current_context()))
        if len(queue) >= self.max_batch:
            self._flush(name)
        elif name not in self._timers:
            self._timers[name] = self.loop.call_later(
                self.window, self._flush, name
            )
        return future

    def _flush(self, name: str) -> None:
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()
        queue = self._queues.pop(name, [])
        if not queue:
            return
        self.batches_flushed += 1
        self.requests_batched += len(queue)
        obs.metrics().histogram("serve_batch_size").observe(len(queue))
        asyncio.ensure_future(self._apply(name, queue), loop=self.loop)

    async def _apply(
        self,
        name: str,
        queue: List[
            Tuple[UpdateRequest, asyncio.Future, Optional[TraceContext]]
        ],
    ) -> None:
        requests = [request for request, _, _ in queue]
        contexts = [ctx for _, _, ctx in queue if ctx is not None]
        ctx = contexts[0] if contexts else None
        folded = sorted({c.trace_id for c in contexts})

        def apply_batch() -> Any:
            # The batch fragment joins the first submitter's trace;
            # requests folded in from other traces are named on the
            # span so their timelines can point at this fragment too.
            with attach(ctx):
                with obs.tracer().span(
                    "serve.batch", object=name, requests=len(requests)
                ) as span:
                    if ctx is not None and ctx.request_id:
                        span.set(request_id=ctx.request_id)
                    if len(folded) > 1:
                        span.set(folded_traces=folded)
                    return self.session.apply_plan_batch(name, requests)

        try:
            plan = await self.loop.run_in_executor(None, apply_batch)
        except Exception as exc:
            if len(queue) == 1:
                future = queue[0][1]
                if not future.done():
                    future.set_exception(exc)
                return
            # One bad request rejected the whole window: retry each
            # alone so the good ones still land.
            for request, future, request_ctx in queue:
                await self._apply(name, [(request, future, request_ctx)])
            return
        for _, future, _ in queue:
            if not future.done():
                future.set_result((plan, len(queue)))

    async def drain(self) -> None:
        """Flush every open window and wait for the flushes to land."""
        for name in list(self._queues):
            self._flush(name)
        pending = [
            future
            for queue in self._queues.values()
            for _, future, _ in queue
        ]
        if pending:  # pragma: no cover - _flush empties the queues
            await asyncio.gather(*pending, return_exceptions=True)
        # Give already-scheduled _apply tasks a chance to complete.
        await asyncio.sleep(0)


class ServerHandle:
    """A running server on its own thread: ``.port``, ``.stop()``.

    Tests and the CLI smoke mode use this to serve a session in the
    background of a synchronous process; ``stop()`` is idempotent and
    joins the loop thread.
    """

    def __init__(self, server: "PenguinServer") -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stopped = False
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
                self._started.set()
                loop.run_forever()
                loop.run_until_complete(self.server.stop())
            except BaseException as exc:  # noqa: BLE001 - reported by start()
                self._startup_error = exc
            finally:
                self._started.set()  # unblock start() on startup failure
                for task in asyncio.all_tasks(loop):
                    task.cancel()
                try:
                    loop.run_until_complete(asyncio.sleep(0))
                except BaseException:  # pragma: no cover - best-effort sweep
                    pass
                loop.close()

        self._thread = threading.Thread(
            target=run, name="penguin-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            # The loop is wedged inside server.start(): stopping it makes
            # run_until_complete abandon the startup and unwind the thread.
            if self._loop is not None:
                self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=1.0)
            raise RuntimeError(
                f"server failed to start within {timeout:g}s"
            )
        if not self.server.running:
            detail = (
                f": {self._startup_error}" if self._startup_error else
                "; see logs"
            )
            raise RuntimeError(f"server failed to start{detail}")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._stopped or self._loop is None:
            return
        self._stopped = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)


class PenguinServer:
    """The HTTP surface. Routes:

    ========  ==============================  =================================
    method    path                            meaning
    ========  ==============================  =================================
    GET       /health                         session + breaker health JSON
    GET       /metrics                        Prometheus text exposition
    GET       /objects                        registered view objects
    GET       /objects/<name>                 query (``?q=`` object query)
    GET       /objects/<name>/<key>           one instance by object key
    POST      /objects/<name>                 insert ``{"instance": {...}}``
    PUT       /objects/<name>/<key>           replace with ``{"instance": ...}``
    DELETE    /objects/<name>/<key>           delete by object key
    ========  ==============================  =================================

    ``session`` is anything with the shared read/write surface —
    a :class:`~repro.shard.sharded.ShardedPenguin` or a single
    :class:`~repro.serve.concurrent.ConcurrentPenguin`.
    """

    def __init__(
        self,
        session: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.005,
        max_batch: int = 32,
        default_deadline_ms: Optional[float] = None,
        max_in_flight: int = 64,
        slo_targets: Optional[List[SloTarget]] = None,
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.batch_window = batch_window
        self.max_batch = max_batch
        #: Per-request budget when the client sends no ``X-Deadline-Ms``;
        #: None serves without a deadline, matching the old behavior.
        self.default_deadline_ms = default_deadline_ms
        #: Admission high-water mark: requests past it are shed with 503.
        self.max_in_flight = max_in_flight
        if slo_targets is None:
            slo_targets = [
                SloTarget.latency(
                    "write_latency",
                    "serve_write_ms",
                    threshold_ms=250.0,
                    objective=0.95,
                    description="p95 of write requests under 250ms",
                ),
                SloTarget.availability(
                    "availability",
                    "serve_http_requests_total",
                    objective=0.999,
                    description="non-5xx fraction of HTTP responses",
                ),
            ]
        #: Burn-rate tracker sampled on every ``/health`` poll.
        self.slo: Optional[SloTracker] = (
            SloTracker(slo_targets) if slo_targets else None
        )
        self.batcher: Optional[MicroBatcher] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0
        self.requests_shed = 0
        self.deadlines_exceeded = 0
        self._draining = False
        self._active = 0
        self._idle: Optional[asyncio.Event] = None
        self._writers: set = set()

    @property
    def running(self) -> bool:
        return self._server is not None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "PenguinServer":
        loop = asyncio.get_running_loop()
        self.batcher = MicroBatcher(
            self.session, loop,
            window=self.batch_window, max_batch=self.max_batch,
        )
        self._draining = False
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Graceful drain, in order: stop accepting new connections,
        let every in-flight request finish and send its response, flush
        whatever the :class:`MicroBatcher` still holds, and only then
        close the remaining (idle) connections."""
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        if self._idle is not None:
            await self._idle.wait()
        if self.batcher is not None:
            await self.batcher.drain()
        for writer in list(self._writers):
            writer.close()
        await self._server.wait_closed()
        self._server = None

    def in_background(self) -> ServerHandle:
        """Serve on a dedicated thread; returns the started handle."""
        return ServerHandle(self).start()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                request_line, headers = self._parse_head(head)
                if request_line is None:
                    # Even an unparseable request gets a correlation id
                    # so the client's error report can name something.
                    await self._respond(
                        writer, 400, {"error": "malformed request"},
                        close=True, request_id=new_request_id(),
                    )
                    break
                method, target = request_line
                ctx = self._trace_context(headers)
                request_id = ctx.request_id
                length = int(headers.get("content-length", "0") or "0")
                if length > MAX_BODY_BYTES:
                    await self._respond(
                        writer, 400, {"error": "body too large"},
                        close=True, request_id=request_id, trace=ctx,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                if self._draining:
                    # Requests received after stop() began are refused;
                    # the ones already dispatched run to completion.
                    await self._respond(
                        writer, 503, {"error": "server is draining"},
                        close=True, request_id=request_id, trace=ctx,
                    )
                    break
                if self._active >= self.max_in_flight:
                    self.requests_shed += 1
                    obs.metrics().counter("serve_shed_total").inc()
                    await self._respond(
                        writer, 503,
                        {"error": "server at capacity; retry later"},
                        close=not keep_alive,
                        request_id=request_id, trace=ctx,
                    )
                    if not keep_alive:
                        break
                    continue
                self._active += 1
                if self._idle is not None:
                    self._idle.clear()
                obs.metrics().gauge("serve_in_flight").set(self._active)
                try:
                    started = time.perf_counter()
                    with attach(ctx):
                        with obs.tracer().span(
                            "http.request",
                            method=method,
                            path=target.partition("?")[0],
                            request_id=request_id,
                        ) as span:
                            status, payload, content_type = (
                                await self._dispatch(
                                    method, target, body, headers
                                )
                            )
                            span.set(status=status)
                    elapsed_ms = (time.perf_counter() - started) * 1000
                    op = (
                        "write"
                        if method in ("POST", "PUT", "DELETE")
                        else "read"
                    )
                    obs.metrics().histogram(f"serve_{op}_ms").observe(
                        elapsed_ms
                    )
                    self.requests_served += 1
                    if status == 504:
                        self.deadlines_exceeded += 1
                        obs.metrics().counter(
                            "serve_deadline_exceeded_total", method=method
                        ).inc()
                    obs.metrics().counter(
                        "serve_http_requests_total",
                        method=method,
                        status=str(status),
                    ).inc()
                    await self._respond(
                        writer, status, payload,
                        content_type=content_type, close=not keep_alive,
                        request_id=request_id,
                        trace=TraceContext(
                            ctx.trace_id, span.span_id or "", ctx.baggage
                        ),
                    )
                finally:
                    # The response is already on the wire: a concurrent
                    # drain waiting on _idle never drops this request.
                    self._active -= 1
                    obs.metrics().gauge("serve_in_flight").set(self._active)
                    if self._active == 0 and self._idle is not None:
                        self._idle.set()
                if not keep_alive:
                    break
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    def _trace_context(headers: Dict[str, str]) -> TraceContext:
        """The request's trace context: joined from a ``traceparent``
        header when the client sent a valid one, fresh otherwise. The
        ``X-Request-Id`` (client-sent or generated) rides in baggage."""
        request_id = headers.get("x-request-id") or new_request_id()
        parent = parse_traceparent(headers.get("traceparent"))
        if parent is not None:
            return TraceContext(
                parent.trace_id, parent.span_id, {"request_id": request_id}
            )
        return TraceContext(new_trace_id(), "", {"request_id": request_id})

    @staticmethod
    def _parse_head(
        head: bytes,
    ) -> Tuple[Optional[Tuple[str, str]], Dict[str, str]]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            return None, {}
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None, {}
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line or ":" not in line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        return (method.upper(), target), headers

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        content_type: str = "application/json",
        close: bool = False,
        request_id: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> None:
        if content_type == "application/json":
            body = (json.dumps(payload) + "\n").encode("utf-8")
        else:
            body = str(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}; charset=utf-8",
            f"Content-Length: {len(body)}",
            "Connection: " + ("close" if close else "keep-alive"),
        ]
        if request_id:
            headers.append(f"X-Request-Id: {request_id}")
        if trace is not None:
            headers.append(f"Traceparent: {format_traceparent(trace)}")
        if status == 503:
            headers.append("Retry-After: 1")
        writer.write(
            ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any, str]:
        path, _, query_string = target.partition("?")
        segments = [s for s in path.split("/") if s]
        try:
            deadline = self._request_deadline(headers or {})
            if path == "/health" and method == "GET":
                return (
                    200,
                    await self._run(self._collect_health, deadline),
                    "application/json",
                )
            if path == "/metrics" and method == "GET":
                params = self._query_params(query_string)
                component = params.get("component")
                if params.get("format") == "json":
                    snapshot = await self._run(
                        lambda: self._metrics_snapshot(component), deadline
                    )
                    return 200, snapshot, "application/json"
                text = await self._run(
                    lambda: self._metrics_text(component), deadline
                )
                return 200, text, "text/plain; version=0.0.4"
            if path == "/objects" and method == "GET":
                return 200, await self._objects_index(), "application/json"
            if segments[:1] == ["objects"] and len(segments) == 2:
                name = segments[1]
                if method == "GET":
                    return (
                        200,
                        await self._query(name, query_string, deadline),
                        "application/json",
                    )
                if method == "POST":
                    return (
                        201,
                        await self._insert(name, body, deadline),
                        "application/json",
                    )
                raise _HttpError(405, f"{method} not allowed here")
            if segments[:1] == ["objects"] and len(segments) == 3:
                name, key = segments[1], parse_key(segments[2])
                if method == "GET":
                    return (
                        200,
                        await self._get(name, key, deadline),
                        "application/json",
                    )
                if method == "PUT":
                    return (
                        200,
                        await self._replace(name, key, body, deadline),
                        "application/json",
                    )
                if method == "DELETE":
                    return (
                        200,
                        await self._delete(name, key, deadline),
                        "application/json",
                    )
                raise _HttpError(405, f"{method} not allowed here")
            raise _HttpError(404, f"no route for {method} {path}")
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            error = _classify(exc)
            return error.status, {"error": str(error)}, "application/json"

    def _collect_health(self) -> Dict[str, Any]:
        payload = self.session.health()
        if self.slo is not None:
            payload["slo"] = self.slo.sample()
        return payload

    def _metrics_text(self, component: Optional[str] = None) -> str:
        fn = getattr(self.session, "metrics_text", None)
        if fn is not None:
            return fn(component)
        return ClusterMetrics().render_text(component)

    def _metrics_snapshot(
        self, component: Optional[str] = None
    ) -> Dict[str, Any]:
        fn = getattr(self.session, "metrics_snapshot", None)
        if fn is not None:
            return fn(component)
        return ClusterMetrics().snapshot(component)

    @staticmethod
    def _query_params(query_string: str) -> Dict[str, str]:
        params: Dict[str, str] = {}
        if not query_string:
            return params
        for pair in query_string.split("&"):
            key, _, value = pair.partition("=")
            if key:
                params[key] = _url_unquote(value)
        return params

    def _request_deadline(
        self, headers: Dict[str, str]
    ) -> Optional[_Deadline]:
        raw = headers.get("x-deadline-ms")
        if raw is None:
            millis = self.default_deadline_ms
        else:
            try:
                millis = float(raw)
            except ValueError:
                raise _HttpError(
                    400, f"X-Deadline-Ms must be a number, got {raw!r}"
                ) from None
            if millis <= 0:
                raise _HttpError(
                    400, f"X-Deadline-Ms must be positive, got {raw!r}"
                )
        if millis is None:
            return None
        return _Deadline(asyncio.get_running_loop(), millis / 1000.0)

    async def _run(
        self, fn: Callable[[], Any], deadline: Optional[_Deadline] = None
    ) -> Any:
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(None, fn)
        if deadline is None:
            return await future
        # Reads (and pre-translation work) are safe to abandon: the
        # executor call has no session side effects worth keeping.
        return await asyncio.wait_for(
            future, timeout=max(deadline.remaining, 0.0)
        )

    async def _objects_index(self) -> Dict[str, Any]:
        names = list(self.session.object_names)
        payload: Dict[str, Any] = {"objects": names}
        describe = getattr(self.session, "describe", None)
        if describe is not None:
            payload["topology"] = describe()
        risk_summary = getattr(self.session, "risk_summary", None)
        if risk_summary is not None:
            payload["risk"] = await self._run(risk_summary)
        return payload

    # -- reads ---------------------------------------------------------------

    async def _query(
        self,
        name: str,
        query_string: str,
        deadline: Optional[_Deadline] = None,
    ) -> Dict[str, Any]:
        text = self._query_text(query_string)
        served: ServedRead = await self._run(
            lambda: self.session.query_served(name, text), deadline
        )
        return {
            "instances": [instance.to_dict() for instance in served.value],
            "count": len(served.value),
            "meta": served.meta(),
        }

    async def _get(
        self,
        name: str,
        key: Tuple[Any, ...],
        deadline: Optional[_Deadline] = None,
    ) -> Dict[str, Any]:
        served: ServedRead = await self._run(
            lambda: self.session.get_served(name, key), deadline
        )
        if served.value is None:
            raise _HttpError(404, f"no instance {key!r} of {name!r}")
        return {"instance": served.value.to_dict(), "meta": served.meta()}

    @staticmethod
    def _query_text(query_string: str) -> Optional[str]:
        if not query_string:
            return None
        for pair in query_string.split("&"):
            key, _, value = pair.partition("=")
            if key == "q":
                return _url_unquote(value) or None
        return None

    # -- writes (batched) ----------------------------------------------------

    def _instance_body(self, body: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "body is not valid JSON")
        if not isinstance(payload, dict) or "instance" not in payload:
            raise _HttpError(400, 'body must be {"instance": {...}}')
        instance = payload["instance"]
        if not isinstance(instance, dict):
            raise _HttpError(400, '"instance" must be an object')
        return instance

    def _coerce(self, name: str, mapping: Dict[str, Any]):
        coerce = getattr(self.session, "_coerce", None)
        if coerce is not None:  # ShardedPenguin
            return coerce(name, mapping)
        from repro.core.instance import build_instance

        return build_instance(self.session.object(name), mapping)

    async def _submit(
        self,
        name: str,
        request: UpdateRequest,
        deadline: Optional[_Deadline] = None,
    ) -> Dict[str, Any]:
        assert self.batcher is not None, "server not started"
        if deadline is not None and deadline.expired:
            # Partial-work safety, half one: a spent budget rejects the
            # write before translation ever runs — nothing was applied.
            raise _HttpError(
                504, "deadline exceeded before translation; nothing applied"
            )
        future = self.batcher.submit(name, request)
        if deadline is None:
            plan, batched = await future
        else:
            try:
                # Half two: once submitted, the write is shielded — a
                # deadline expiry reports 504 but never cancels a batch
                # mid-commit, so the store cannot be left torn.
                plan, batched = await asyncio.wait_for(
                    asyncio.shield(future),
                    timeout=max(deadline.remaining, 0.0),
                )
            except asyncio.TimeoutError:
                future.add_done_callback(_consume_result)
                raise _HttpError(
                    504,
                    "deadline exceeded while committing; the write was "
                    "not cancelled and may still apply",
                ) from None
        return {
            "applied": True,
            "operations": len(plan.operations),
            "batched_with": batched - 1,
        }

    async def _insert(
        self, name: str, body: bytes, deadline: Optional[_Deadline] = None
    ) -> Dict[str, Any]:
        mapping = self._instance_body(body)
        instance = await self._run(lambda: self._coerce(name, mapping), deadline)
        return await self._submit(name, CompleteInsertion(instance), deadline)

    async def _replace(
        self,
        name: str,
        key: Tuple[Any, ...],
        body: bytes,
        deadline: Optional[_Deadline] = None,
    ) -> Dict[str, Any]:
        mapping = self._instance_body(body)
        new = await self._run(lambda: self._coerce(name, mapping), deadline)
        return await self._submit(name, Replacement(key, new), deadline)

    async def _delete(
        self,
        name: str,
        key: Tuple[Any, ...],
        deadline: Optional[_Deadline] = None,
    ) -> Dict[str, Any]:
        return await self._submit(name, CompleteDeletion(key), deadline)


def _consume_result(future: "asyncio.Future") -> None:
    """Retrieve an abandoned write future's outcome (silences warnings)."""
    if not future.cancelled():
        future.exception()


_HEX = set("0123456789abcdefABCDEF")


def _url_unquote(text: str) -> str:
    """Strict %XX + '+'-as-space decoding.

    A ``%`` must be followed by exactly two hex digits — a truncated
    escape (``%``, ``%4``) or non-hex digits (``%zz``, ``%+1``; note
    ``int(_, 16)`` would happily accept signs and whitespace) is a
    malformed request and surfaces as a 400, never a silent
    mis-decode or a 500. Escaped bytes are accumulated and decoded as
    UTF-8 at the end, so multibyte sequences (``%C3%A9`` → ``é``)
    come out as the character, not two mojibake code points.
    """
    out = bytearray()
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch == "%":
            digits = text[i + 1:i + 3]
            if len(digits) != 2 or not (
                digits[0] in _HEX and digits[1] in _HEX
            ):
                raise _HttpError(
                    400, f"malformed percent escape {text[i:i + 3]!r}"
                )
            out.append(int(digits, 16))
            i += 3
        elif ch == "+":
            out.append(0x20)
            i += 1
        else:
            out.extend(ch.encode("utf-8"))
            i += 1
    try:
        return out.decode("utf-8")
    except UnicodeDecodeError:
        raise _HttpError(
            400, "percent-encoded bytes are not valid UTF-8"
        ) from None
