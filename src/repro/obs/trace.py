"""Hierarchical tracing of the translation pipeline.

The paper treats a translated update as a derivation the DBA can audit
("the output is the set of database operations"); tracing extends that
auditability to *time*. A :class:`Tracer` produces trees of
:class:`Span` objects — ``translate > validate > propagate >
engine.apply > commit`` — with attributes recorded along the way
(relation names, plan sizes, cache hits, retry counts).

Design constraints, in order:

* **zero cost when disabled** — the singleton no-op span makes a
  disabled ``tracer.span(...)`` a dict-free constant-time call;
* **zero dependencies** — spans live in plain objects, the sink is an
  in-memory ring buffer (a bounded ``deque``), and the exporter writes
  JSON Lines with the standard library;
* **thread-local nesting** — each thread grows its own span stack, so
  concurrent serving threads trace independently without locking each
  other.

Finished *root* spans land in the ring buffer and are offered to any
registered ``on_root`` callbacks (the slow-operation log hooks in
there).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Tuple, Union

__all__ = ["Span", "Tracer", "NOOP_TRACER"]

Clock = Callable[[], float]


class Span:
    """One timed operation, possibly with children.

    A span is its own context manager: ``with tracer.span(...) as s``
    pushes it onto the tracer's thread-local stack on enter and pops
    (recording the end time and any error) on exit.  The enter/exit
    bodies are deliberately flat — no helper calls, the thread-local
    stack resolved once and cached — because this is the hottest path
    of the whole layer: every traced operation pays it.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "start",
        "end",
        "error",
        "_tracer",
        "_stack",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = attributes or {}
        self.children: List["Span"] = []
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.error: Optional[str] = None
        self._tracer = tracer

    # -- context management (the hot path) ------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        local = tracer._local
        try:
            stack = local.stack
        except AttributeError:
            stack = local.stack = []
        self._stack = stack
        if stack:
            stack[-1].children.append(self)
        stack.append(self)
        self.start = tracer.clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.end = self._tracer.clock()
        if exc is not None and self.error is None:
            self.error = f"{type(exc).__name__}: {exc}"
        # Tolerate a mismatched pop (a crash mid-span unwinding through
        # BaseException handlers) by draining down to this span.
        stack = self._stack
        while stack and stack.pop() is not self:
            pass
        if not stack:
            self._tracer._finish_root(self)
        return False

    # -- recording -----------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def record_error(self, exc: BaseException) -> None:
        self.error = f"{type(exc).__name__}: {exc}"

    # -- introspection -------------------------------------------------------

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with ``name``, depth first."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration * 1000, 3),
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, show_durations: bool = True) -> str:
        """An indented, human-readable span tree."""
        lines: List[str] = []
        self._render_into(lines, 0, show_durations)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], depth: int, show_durations: bool) -> None:
        parts = [("  " * depth) + self.name]
        if show_durations:
            parts.append(f"[{self.duration * 1000:.3f}ms]")
        if self.attributes:
            parts.extend(
                f"{key}={self.attributes[key]}" for key in sorted(self.attributes)
            )
        if self.error is not None:
            parts.append(f"error={self.error!r}")
        lines.append(" ".join(parts))
        for child in self.children:
            child._render_into(lines, depth + 1, show_durations)

    def normalized(self) -> str:
        """The tree with every timing stripped: golden-trace form.

        Two runs of the same workload produce byte-identical normalized
        trees, so translation-pipeline changes show up as fixture
        diffs.
        """
        return self.render(show_durations=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, children={len(self.children)}, "
            f"attrs={self.attributes!r})"
        )


class _NoopSpan:
    """Shared span stand-in for the disabled tracer: absorbs everything."""

    __slots__ = ()
    name = "noop"
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    duration = 0.0
    error = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def record_error(self, exc: BaseException) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces span trees and keeps the most recent roots.

    Parameters
    ----------
    capacity:
        Ring-buffer size: how many finished root spans are retained.
    clock:
        Injection point for tests (defaults to ``time.perf_counter``).
    enabled:
        A disabled tracer hands out the shared no-op span; flipping
        :attr:`enabled` at runtime is allowed (in-flight spans finish
        normally).
    """

    def __init__(
        self,
        capacity: int = 256,
        clock: Clock = time.perf_counter,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.enabled = enabled
        self.on_root: List[Callable[[Span], None]] = []
        self._roots: deque = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.dropped = 0  # roots evicted from the ring buffer

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Union[Span, _NoopSpan]:
        """A context manager opening one span under the current one."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(name, attributes, tracer=self)

    def _finish_root(self, span: Span) -> None:
        with self._lock:
            if len(self._roots) == self._roots.maxlen:
                self.dropped += 1
            self._roots.append(span)
        for callback in self.on_root:
            callback(span)

    # -- introspection -------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost live span of this thread, or None."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def roots(self) -> Tuple[Span, ...]:
        """The retained finished root spans, oldest first."""
        with self._lock:
            return tuple(self._roots)

    def take(self) -> Tuple[Span, ...]:
        """Return the retained roots and clear the buffer."""
        with self._lock:
            roots = tuple(self._roots)
            self._roots.clear()
            return roots

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self.dropped = 0

    # -- export --------------------------------------------------------------

    def render(self, show_durations: bool = True) -> str:
        """Every retained root span rendered as one text block."""
        return "\n".join(
            root.render(show_durations=show_durations) for root in self.roots()
        )

    def export_jsonl(self, sink: Union[str, IO[str]]) -> int:
        """Write retained roots as JSON Lines; returns spans written.

        ``sink`` is a path or an open text file object. Each line is
        one root span with its full child tree inlined.
        """
        roots = self.roots()
        if isinstance(sink, str):
            with open(sink, "w", encoding="utf-8") as handle:
                return self.export_jsonl(handle)
        for root in roots:
            sink.write(json.dumps(root.to_dict(), default=str) + "\n")
        return len(roots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(enabled={self.enabled}, roots={len(self._roots)}, "
            f"capacity={self.capacity})"
        )


#: The shared disabled tracer handed out while tracing is off.
NOOP_TRACER = Tracer(enabled=False)
