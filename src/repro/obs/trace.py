"""Hierarchical tracing of the translation pipeline.

The paper treats a translated update as a derivation the DBA can audit
("the output is the set of database operations"); tracing extends that
auditability to *time*. A :class:`Tracer` produces trees of
:class:`Span` objects — ``translate > validate > propagate >
engine.apply > commit`` — with attributes recorded along the way
(relation names, plan sizes, cache hits, retry counts).

Design constraints, in order:

* **zero cost when disabled** — the singleton no-op span makes a
  disabled ``tracer.span(...)`` a dict-free constant-time call;
* **zero dependencies** — spans live in plain objects, the sink is an
  in-memory ring buffer (a bounded ``deque``), and the exporter writes
  JSON Lines with the standard library;
* **context-local nesting** — the span stack lives in a
  :mod:`contextvars` variable, so concurrent serving *threads* trace
  independently (fresh threads start with an empty context) and so do
  concurrent asyncio *tasks* sharing the event-loop thread: each task
  gets its own copy of the context at creation, and the stack is an
  immutable tuple, so one task's pushes are invisible to its siblings.
  (Thread-locals, the previous scheme, interleaved spans across
  overlapping in-flight HTTP requests.)

Finished *root* spans land in the ring buffer and are offered to any
registered ``on_root`` callbacks (the slow-operation log hooks in
there). A root opened while a :class:`~repro.obs.context.TraceContext`
is ambient stamps its ``trace_id``/parent span id, which is how the
cluster-wide :class:`~repro.obs.cluster.TraceAssembler` stitches
fragments from different threads back into one causal timeline.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Tuple, Union

from repro.obs.context import current_context, new_span_id

__all__ = ["Span", "Tracer", "NOOP_TRACER"]

Clock = Callable[[], float]


class Span:
    """One timed operation, possibly with children.

    A span is its own context manager: ``with tracer.span(...) as s``
    pushes it onto the tracer's context-local stack on enter and pops
    (recording the end time and any error) on exit.  The stack is an
    immutable tuple held in a ``ContextVar`` — asyncio tasks copy the
    *mapping* at creation but would share a mutable list by reference,
    which is exactly the interleaving bug tuples avoid. The enter/exit
    bodies are deliberately flat because this is the hottest path of
    the whole layer: every traced operation pays it.

    Root spans (opened on an empty stack) get a ``span_id`` and, when
    a :class:`~repro.obs.context.TraceContext` is ambient, stamp its
    ``trace_id`` and parent span id for cross-thread assembly.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "start",
        "end",
        "error",
        "trace_id",
        "_span_id",
        "parent_id",
        "_tracer",
        "_is_root",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = (
            attributes if attributes is not None else {}
        )
        self.children: List["Span"] = []
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.error: Optional[str] = None
        self.trace_id: Optional[str] = None
        self._span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._tracer = tracer
        self._is_root = False

    @property
    def span_id(self) -> Optional[str]:
        """The root's id, minted on first read.

        Most spans are opened, closed, and evicted from the ring
        buffer without anyone ever cross-referencing them; deferring
        the id keeps that cost off the hot path entirely. Readers
        (trace assembly, the ``Traceparent`` response header, flight
        bundles) see a stable id from their first access on.
        """
        if self._span_id is None and self._is_root:
            self._span_id = new_span_id()
        return self._span_id

    @span_id.setter
    def span_id(self, value: Optional[str]) -> None:
        self._span_id = value

    # -- context management (the hot path) ------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack.get()
        if stack:
            stack[-1].children.append(self)
        else:
            self._is_root = True
            ctx = current_context()
            if ctx is not None:
                self.trace_id = ctx.trace_id
                self.parent_id = ctx.span_id or None
        tracer._stack.set(stack + (self,))
        self.start = tracer.clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        tracer = self._tracer
        self.end = tracer.clock()
        if exc is not None and self.error is None:
            self.error = f"{type(exc).__name__}: {exc}"
        stack = tracer._stack.get()
        if stack and stack[-1] is self:
            tracer._stack.set(stack[:-1])
        else:
            # Mismatched pop (a crash mid-span unwinding through
            # BaseException handlers): truncate down to this span.
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is self:
                    tracer._stack.set(stack[:index])
                    break
        if self._is_root:
            tracer._finish_root(self)
        return False

    # -- recording -----------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def record_error(self, exc: BaseException) -> None:
        self.error = f"{type(exc).__name__}: {exc}"

    # -- introspection -------------------------------------------------------

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with ``name``, depth first."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration * 1000, 3),
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, show_durations: bool = True) -> str:
        """An indented, human-readable span tree."""
        lines: List[str] = []
        self._render_into(lines, 0, show_durations)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], depth: int, show_durations: bool) -> None:
        parts = [("  " * depth) + self.name]
        if show_durations:
            parts.append(f"[{self.duration * 1000:.3f}ms]")
        if self.attributes:
            parts.extend(
                f"{key}={self.attributes[key]}" for key in sorted(self.attributes)
            )
        if self.error is not None:
            parts.append(f"error={self.error!r}")
        lines.append(" ".join(parts))
        for child in self.children:
            child._render_into(lines, depth + 1, show_durations)

    def normalized(self) -> str:
        """The tree with every timing stripped: golden-trace form.

        Two runs of the same workload produce byte-identical normalized
        trees, so translation-pipeline changes show up as fixture
        diffs.
        """
        return self.render(show_durations=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, children={len(self.children)}, "
            f"attrs={self.attributes!r})"
        )


class _NoopSpan:
    """Shared span stand-in for the disabled tracer: absorbs everything."""

    __slots__ = ()
    name = "noop"
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    duration = 0.0
    error = None
    trace_id = None
    span_id = None
    parent_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def record_error(self, exc: BaseException) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces span trees and keeps the most recent roots.

    Parameters
    ----------
    capacity:
        Ring-buffer size: how many finished root spans are retained.
    clock:
        Injection point for tests (defaults to ``time.perf_counter``).
    enabled:
        A disabled tracer hands out the shared no-op span; flipping
        :attr:`enabled` at runtime is allowed (in-flight spans finish
        normally).
    """

    def __init__(
        self,
        capacity: int = 256,
        clock: Clock = time.perf_counter,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.enabled = enabled
        self.on_root: List[Callable[[Span], None]] = []
        self._roots: deque = deque(maxlen=capacity)
        # The nesting stack: an immutable tuple per context. Tracers are
        # few and long-lived, so one ContextVar per tracer is fine (and
        # keeps independently `use()`d hubs from seeing each other's
        # in-flight spans).
        self._stack: ContextVar[Tuple[Span, ...]] = ContextVar(
            "repro_span_stack", default=()
        )
        self.dropped = 0  # roots evicted from the ring buffer

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Union[Span, _NoopSpan]:
        """A context manager opening one span under the current one."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(name, attributes, tracer=self)

    def _finish_root(self, span: Span) -> None:
        # deque.append with a maxlen is a single atomic C call under
        # the GIL, so the hot path takes no lock; the dropped counter
        # is best-effort under concurrency, which is all it needs.
        roots = self._roots
        if len(roots) == roots.maxlen:
            self.dropped += 1
        roots.append(span)
        for callback in self.on_root:
            callback(span)

    # -- introspection -------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost live span of this context, or None."""
        stack = self._stack.get()
        return stack[-1] if stack else None

    def roots(self) -> Tuple[Span, ...]:
        """The retained finished root spans, oldest first."""
        return tuple(self._roots)

    def take(self) -> Tuple[Span, ...]:
        """Return the retained roots and clear the buffer.

        Drains via atomic ``popleft`` so a root appended concurrently
        with the drain is either returned here or left for the next
        call — never lost.
        """
        taken: List[Span] = []
        roots = self._roots
        while True:
            try:
                taken.append(roots.popleft())
            except IndexError:
                return tuple(taken)

    def clear(self) -> None:
        self._roots.clear()
        self.dropped = 0

    # -- export --------------------------------------------------------------

    def render(self, show_durations: bool = True) -> str:
        """Every retained root span rendered as one text block."""
        return "\n".join(
            root.render(show_durations=show_durations) for root in self.roots()
        )

    def export_jsonl(self, sink: Union[str, IO[str]]) -> int:
        """Write retained roots as JSON Lines; returns spans written.

        ``sink`` is a path or an open text file object. Each line is
        one root span with its full child tree inlined.
        """
        roots = self.roots()
        if isinstance(sink, str):
            with open(sink, "w", encoding="utf-8") as handle:
                return self.export_jsonl(handle)
        for root in roots:
            sink.write(json.dumps(root.to_dict(), default=str) + "\n")
        return len(roots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(enabled={self.enabled}, roots={len(self._roots)}, "
            f"capacity={self.capacity})"
        )


#: The shared disabled tracer handed out while tracing is off.
NOOP_TRACER = Tracer(enabled=False)
