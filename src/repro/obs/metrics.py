"""A thread-safe, zero-dependency metrics registry.

The serving story grown around the paper's translator — materialized
caches, batched pipelines, retries, circuit breaking, journaled
recovery — needs *numbers*: how many translations ran, how large their
plans were, how often the cache answered, how hard the retry policy is
working. This module provides the three classic instrument kinds:

* :class:`Counter` — a monotonically increasing count (``inc``);
* :class:`Gauge` — a value that goes up and down (``set``/``add``);
* :class:`Histogram` — observations bucketed under fixed upper bounds,
  plus a running sum and count.

A :class:`MetricsRegistry` names instruments (optionally with labels),
creates them on first use, and renders the whole family set either as a
nested :meth:`~MetricsRegistry.snapshot` dictionary or as a
Prometheus-style :meth:`~MetricsRegistry.render_text` exposition.

Every instrument takes its own lock, so concurrent serving threads can
record without contending on a registry-wide lock; the registry lock is
only taken when an instrument is first created (or enumerated).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, sized for plan/op counts and millisecond
#: durations alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 250, 1000)


def _label_pairs(labels: Dict[str, Any]) -> LabelPairs:
    if not labels:
        return ()
    if len(labels) == 1:
        # The overwhelmingly common case at instrumented call sites
        # (op=..., object=..., engine=...): skip the sort.
        ((key, value),) = labels.items()
        return ((key, str(value)),)
    if len(labels) == 2:
        # Two labels (shard=..., outcome=...) covers nearly all of the
        # rest; one comparison beats building a generator for sorted().
        (k1, v1), (k2, v2) = labels.items()
        if k1 <= k2:
            return ((k1, str(v1)), (k2, str(v2)))
        return ((k2, str(v2)), (k1, str(v1)))
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus exposition format: inside a quoted
    label value, backslash, double-quote, and line-feed must appear as
    ``\\\\``, ``\\"``, and ``\\n``."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(pairs: LabelPairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{_render_labels(self.labels)}={self.value})"


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}{_render_labels(self.labels)}={self.value})"


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches everything beyond the largest bound, so ``count`` always
    equals the number of observations.
    """

    __slots__ = ("name", "labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> Dict[str, int]:
        """Per-bucket (non-cumulative) observation counts."""
        with self._lock:
            out = {
                f"le={bound:g}": count
                for bound, count in zip(self.buckets, self._counts)
            }
            out["le=+Inf"] = self._counts[-1]
            return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, count={self.count}, sum={self.sum})"


class MetricsRegistry:
    """Names instruments, creates them on first use, renders them all.

    >>> registry = MetricsRegistry()
    >>> registry.counter("translations_total", op="insert").inc()
    >>> registry.counter("translations_total", op="insert").value
    1.0
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelPairs], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelPairs], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelPairs], Histogram] = {}

    # -- instrument access (create on first use) ----------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_pairs(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter(*key))
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_pairs(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(*key))
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_pairs(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(key[0], key[1], buckets or DEFAULT_BUCKETS)
                )
        return instrument

    # -- aggregation ---------------------------------------------------------

    def counter_total(self, name: str) -> float:
        """Sum of one counter family across every label set."""
        with self._lock:
            instruments = [c for (n, _), c in self._counters.items() if n == name]
        return sum(c.value for c in instruments)

    def histogram_total_count(self, name: str) -> int:
        """Total observations of one histogram family."""
        with self._lock:
            instruments = [h for (n, _), h in self._histograms.items() if n == name]
        return sum(h.count for h in instruments)

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values one label takes across a family, sorted.

        The cardinality guard for per-shard serving series: a
        deployment of N shards must never grow more than N distinct
        ``shard`` values, no matter how long it serves — label values
        must come from fixed topology, not per-request data.
        """
        with self._lock:
            keys = (
                list(self._counters)
                + list(self._gauges)
                + list(self._histograms)
            )
        return sorted(
            {
                value
                for family, pairs in keys
                if family == name
                for pair_label, value in pairs
                if pair_label == label
            }
        )

    # -- export --------------------------------------------------------------

    def series(self) -> List[Tuple[str, str, LabelPairs, Any]]:
        """Every instrument as structured ``(kind, name, labels, value)``.

        ``value`` is a float for counters/gauges and a ``{"count",
        "sum", "buckets", "bounds"}`` dict for histograms. This is the
        merge-friendly form :class:`~repro.obs.cluster.ClusterMetrics`
        consumes: unlike :meth:`snapshot`, labels stay structured so a
        ``component`` label can be injected before rendering.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        out: List[Tuple[str, str, LabelPairs, Any]] = []
        for counter in counters:
            out.append(("counter", counter.name, counter.labels, counter.value))
        for gauge in gauges:
            out.append(("gauge", gauge.name, gauge.labels, gauge.value))
        for histogram in histograms:
            out.append(
                (
                    "histogram",
                    histogram.name,
                    histogram.labels,
                    {
                        "count": histogram.count,
                        "sum": histogram.sum,
                        "buckets": histogram.bucket_counts(),
                        "bounds": histogram.buckets,
                    },
                )
            )
        return out

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every instrument's current value, as plain data."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for counter in counters:
            key = counter.name + _render_labels(counter.labels)
            out["counters"][key] = counter.value
        for gauge in gauges:
            key = gauge.name + _render_labels(gauge.labels)
            out["gauges"][key] = gauge.value
        for histogram in histograms:
            key = histogram.name + _render_labels(histogram.labels)
            out["histograms"][key] = {
                "count": histogram.count,
                "sum": histogram.sum,
                "buckets": histogram.bucket_counts(),
            }
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        snap = self.snapshot()
        lines: List[str] = []
        for kind in ("counters", "gauges"):
            type_name = kind[:-1]  # counter / gauge
            for key in sorted(snap[kind]):
                lines.append(f"# TYPE {key.split('{')[0]} {type_name}")
                lines.append(f"{key} {snap[kind][key]:g}")
        for key in sorted(snap["histograms"]):
            data = snap["histograms"][key]
            base, brace, labels = key.partition("{")
            lines.append(f"# TYPE {base} histogram")
            for bucket, count in data["buckets"].items():
                bound = bucket.split("=", 1)[1]
                label_text = labels[:-1] + "," if brace else ""
                lines.append(
                    f'{base}_bucket{{{label_text}le="{bound}"}} {count}'
                )
            lines.append(f"{base}_sum{brace}{labels} {data['sum']:g}")
            lines.append(f"{base}_count{brace}{labels} {data['count']}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (tests and fresh benchmark runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = "null"
    labels: LabelPairs = ()
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float = 1.0) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> Dict[str, int]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry(MetricsRegistry):
    """A registry whose instruments discard everything.

    Returned by :func:`repro.obs.metrics` while metrics are disabled:
    instrumented code paths stay branch-free and pay only a method call.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: Any):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None, **labels: Any):
        return _NULL_INSTRUMENT


NULL_REGISTRY = _NullRegistry()
