"""EXPLAIN for update translations.

``explain_query`` already shows how an *object query* would execute;
this module does the same for *updates*: the would-be
:class:`~repro.relational.operations.UpdatePlan` of a translation,
computed without touching the database. The translator runs the real
VO-CI / VO-CD / replacement algorithms over a
:class:`~repro.core.updates.bulk.BufferedEngine` overlay, then the
overlay is discarded — so the explanation is exact (same code path as
execution) yet side-effect free.

A :class:`TranslationExplanation` reports, in the spirit of the paper's
"set of database operations" output:

* the operations with their recorded reasons (which CASE emitted each);
* the relations touched and the operation-kind tally;
* the integrity context consulted — the dependency island, the
  structural connections incident to the touched relations, and whether
  a full integrity verification would run;
* the coalescing decision the batch pipeline would make (raw operation
  count vs the folded plan).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.relational.operations import UpdatePlan

__all__ = ["TranslationExplanation"]


class TranslationExplanation:
    """The would-be plan of one translated update (or batch)."""

    def __init__(
        self,
        object_name: str,
        operation: str,
        plan: UpdatePlan,
        coalesced: UpdatePlan,
        island_relations: Tuple[str, ...],
        connections: Tuple[str, ...],
        verify_integrity: bool,
        items: int = 1,
        risk: Any = None,
    ) -> None:
        self.object_name = object_name
        self.operation = operation
        self.plan = plan
        self.coalesced = coalesced
        self.island_relations = island_relations
        self.connections = connections
        self.verify_integrity = verify_integrity
        self.items = items
        # The definition-time RiskReport of the translator that produced
        # this plan (None when the strategy checker never ran).
        self.risk = risk

    # -- the facts tests assert against --------------------------------------

    @property
    def relations_touched(self) -> Tuple[str, ...]:
        return self.plan.relations_touched()

    @property
    def op_kinds(self) -> Dict[str, int]:
        """Operation-kind tally of the raw (uncoalesced) plan."""
        kinds: Dict[str, int] = {}
        for op in self.plan.operations:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        return kinds

    @property
    def raw_ops(self) -> int:
        return len(self.plan)

    @property
    def coalesced_ops(self) -> int:
        return len(self.coalesced)

    @property
    def folds(self) -> int:
        """Operations the coalescer removes (0 = nothing to fold)."""
        return self.raw_ops - self.coalesced_ops

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "object": self.object_name,
            "operation": self.operation,
            "items": self.items,
            "operations": [
                {"kind": op.kind, "relation": op.relation, "detail": op.describe()}
                for op in self.plan.operations
            ],
            "relations_touched": list(self.relations_touched),
            "op_kinds": self.op_kinds,
            "island_relations": list(self.island_relations),
            "connections": list(self.connections),
            "verify_integrity": self.verify_integrity,
            "raw_ops": self.raw_ops,
            "coalesced_ops": self.coalesced_ops,
            "risk": None if self.risk is None else self.risk.to_dict(),
        }

    def render(self) -> str:
        """A readable account, styled after ``explain_query``."""
        kinds = self.op_kinds
        tally = (
            ", ".join(f"{kinds[kind]} {kind}" for kind in sorted(kinds))
            or "no operations"
        )
        lines: List[str] = [
            f"update translation on {self.object_name!r} "
            f"({self.operation}, {self.items} item(s)):",
            f"  plan             : {tally} over "
            f"{len(self.relations_touched)} relation(s)",
        ]
        for op, reason in zip(self.plan.operations, self.plan.reasons):
            suffix = f"    -- {reason}" if reason else ""
            lines.append(f"    {op.describe()}{suffix}")
        lines.append(
            "  relations        : " + (", ".join(self.relations_touched) or "none")
        )
        lines.append(
            "  island           : " + (", ".join(self.island_relations) or "none")
        )
        if self.connections:
            lines.append("  integrity rules  :")
            lines.extend(f"    {rule}" for rule in self.connections)
        else:
            lines.append("  integrity rules  : none consulted")
        lines.append(
            "  verify integrity : "
            + ("full post-translation check" if self.verify_integrity else "off")
        )
        if self.risk is None:
            lines.append("  strategy risk    : unchecked")
        else:
            lines.append(
                f"  strategy risk    : {self.risk.level.value.upper()} "
                f"({len(self.risk)} finding(s))"
            )
            lines.extend(
                f"    {finding.describe()}" for finding in self.risk.findings
            )
        if self.folds:
            lines.append(
                f"  coalescing       : {self.raw_ops} -> {self.coalesced_ops} "
                f"operations ({self.folds} folded)"
            )
        else:
            lines.append(
                f"  coalescing       : nothing to fold ({self.raw_ops} operations)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TranslationExplanation({self.object_name!r}, {self.operation!r}, "
            f"{self.raw_ops} ops)"
        )
