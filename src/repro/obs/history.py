"""Time travel and replay verification over the audit log.

Two capabilities turn the audit log from a passive trail into a
correctness oracle:

* :func:`as_of` — reconstruct any relation's state at a past ASN by
  *undoing* the committed records newer than it, newest first, using
  their before-images. Every undo step is verified against the state it
  expects (the record's after-image must match what is there): a
  mismatch means a write bypassed the audit trail, and with
  ``verify=True`` that raises :class:`~repro.errors.AuditError` instead
  of silently producing a fictional past.
* :func:`replay` — re-execute the audited plans, in ASN order, onto a
  fresh engine seeded with the reconstructed initial state, then compare
  the final state byte for byte against the live engine. Rolled-back,
  degraded-rejected, and unreconciled crashed records are *excluded* —
  their effects are not in the database, so replaying them would be
  wrong — and reported as skipped. A clean report proves the audit log
  is a complete, faithful account of how the database got here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AuditError
from repro.obs.audit import COMMITTED, AuditLog
from repro.relational.engine import Engine

__all__ = ["as_of", "divergence", "replay", "ReplayReport"]

RelationState = Dict[Tuple[Any, ...], Tuple[Any, ...]]
DatabaseState = Dict[str, RelationState]


def snapshot(engine: Engine) -> DatabaseState:
    """Every relation's rows keyed by primary key (live state)."""
    state: DatabaseState = {}
    for name in engine.relation_names():
        schema = engine.schema(name)
        state[name] = {
            tuple(schema.key_of(row)): tuple(row)
            for row in engine.scan(name)
        }
    return state


def divergence(
    engine: Engine, other: Engine
) -> List[Tuple[str, Tuple[Any, ...], Any, Any]]:
    """Cells where two engines' states differ, byte for byte.

    Returns ``(relation, key, value_in_engine, value_in_other)`` tuples
    in a stable order; empty means the states are identical. This is the
    replication layer's convergence check: a primary and a caught-up
    replica must diverge nowhere.
    """
    live = snapshot(engine)
    shadow = snapshot(other)
    diffs: List[Tuple[str, Tuple[Any, ...], Any, Any]] = []
    for name in set(live) | set(shadow):
        rows = live.get(name, {})
        other_rows = shadow.get(name, {})
        for key in set(rows) | set(other_rows):
            a = rows.get(key)
            b = other_rows.get(key)
            if a != b:
                diffs.append((name, key, a, b))
    diffs.sort(key=lambda d: (d[0], repr(d[1])))
    return diffs


def as_of(
    log: AuditLog,
    engine: Engine,
    asn: int,
    relation: Optional[str] = None,
    verify: bool = True,
) -> Any:
    """The database state just after audit record ``asn`` committed.

    ``asn=0`` reconstructs the state before the first audited update
    (the seed data). Returns ``{relation: {key: row}}``, or one
    relation's ``{key: row}`` when ``relation`` is given.

    With ``verify=True`` every undo step checks the cell against the
    undone record's after-image; a mismatch raises
    :class:`~repro.errors.AuditError` naming the first cell whose live
    value the audit trail cannot account for.
    """
    state = snapshot(engine)
    for record in reversed(log.committed()):
        if record.asn <= asn:
            break
        for (rel, key), (before, after) in record.images().items():
            rows = state.setdefault(rel, {})
            if verify:
                current = rows.get(key)
                if current != after:
                    raise AuditError(
                        f"as_of({asn}): undoing audit record "
                        f"#{record.asn} expected {rel}{key!r} to be "
                        f"{after!r} but found {current!r} — a write "
                        f"bypassed the audit trail"
                    )
            if before is None:
                rows.pop(key, None)
            else:
                rows[key] = before
    if relation is not None:
        return state.get(relation, {})
    return state


class ReplayReport:
    """What :func:`replay` re-executed and whether the states agree."""

    def __init__(self) -> None:
        self.replayed: List[int] = []  # committed ASNs re-applied
        self.skipped: List[Tuple[int, str]] = []  # (asn, outcome) excluded
        self.mismatches: List[Tuple[str, Tuple[Any, ...], Any, Any]] = []
        self.relations = 0

    @property
    def ok(self) -> bool:
        """True when the replayed state is byte-identical to the live one."""
        return not self.mismatches

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "replayed": list(self.replayed),
            "skipped": [list(pair) for pair in self.skipped],
            "mismatches": [
                [rel, list(key), repr(expected), repr(got)]
                for rel, key, expected, got in self.mismatches
            ],
            "relations": self.relations,
        }

    def summary(self) -> str:
        lines = [
            f"replayed  : {len(self.replayed)} committed record(s)",
            f"skipped   : {len(self.skipped)} non-committed record(s)",
            f"relations : {self.relations} compared",
            f"verdict   : {'byte-identical' if self.ok else 'MISMATCH'}",
        ]
        for rel, key, expected, got in self.mismatches[:10]:
            lines.append(
                f"  {rel}{key!r}: live={expected!r} replayed={got!r}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplayReport(ok={self.ok}, replayed={len(self.replayed)}, "
            f"skipped={len(self.skipped)})"
        )


def replay(
    log: AuditLog,
    engine: Engine,
    fresh_engine: Optional[Engine] = None,
) -> ReplayReport:
    """Re-execute the audited plans on a fresh engine; compare final states.

    The fresh engine (a new
    :class:`~repro.relational.memory_engine.MemoryEngine` unless one is
    passed) gets the live engine's schemas, is seeded with
    ``as_of(0)`` — the reconstructed pre-audit state — and then applies
    every *committed* plan in ASN order. Every other outcome is skipped
    and reported. The returned report's :attr:`~ReplayReport.ok` is the
    oracle: the audit log fully explains the live database.

    Seeding reconstructs *without* head verification: when a write has
    bypassed the trail, replay must still run so the divergence surfaces
    as mismatches in the report instead of an exception mid-seed.
    """
    if fresh_engine is None:
        from repro.relational.memory_engine import MemoryEngine

        fresh_engine = MemoryEngine()
    report = ReplayReport()

    initial = as_of(log, engine, 0, verify=False)
    for name in engine.relation_names():
        if name not in fresh_engine.relation_names():
            fresh_engine.create_relation(engine.schema(name))
        rows = initial.get(name, {})
        if rows:
            fresh_engine.insert_many(name, list(rows.values()))

    for record in log.records():
        if record.outcome == COMMITTED:
            fresh_engine.apply_batch(record.plan().operations)
            report.replayed.append(record.asn)
        else:
            report.skipped.append((record.asn, record.outcome))

    live = snapshot(engine)
    replayed = snapshot(fresh_engine)
    report.relations = len(live)
    for name, rows in live.items():
        other = replayed.get(name, {})
        for key in set(rows) | set(other):
            expected = rows.get(key)
            got = other.get(key)
            if expected != got:
                report.mismatches.append((name, key, expected, got))
    report.mismatches.sort(key=lambda m: (m[0], repr(m[1])))
    return report
