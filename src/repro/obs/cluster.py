"""The cluster-wide observability plane.

PR 4's hub is strictly per-process scoped to one stack; a sharded,
replicated deployment (PRs 6/8) runs a dozen stacks inside one process
and a single write crosses four of them. This module aggregates what
:mod:`repro.obs.context` correlates:

* :class:`ClusterMetrics` — merges the hub's global registry and every
  per-component registry (``shard0``, ``shard1/r2``, ...) into one
  labeled render, Prometheus text or JSON, filterable per component;
* :func:`histogram_quantile` — Prometheus-style linear interpolation
  over the fixed buckets the registries already keep;
* :class:`SloTarget` / :class:`SloTracker` — declared objectives (p95
  write latency, availability) with multi-window burn rates computed
  from counter/histogram deltas, surfaced on ``/health`` and as gauges;
* :class:`TraceAssembler` — stitches the tracer's ring-buffer root
  spans (HTTP task, micro-batch executor thread, 2PC coordinator,
  replica applier threads) into one causal timeline per trace id;
* :class:`FlightRecorder` — an always-on bounded recorder that dumps
  spans + metrics + audit tails to a timestamped JSONL bundle when
  :func:`repro.obs.anomaly` fires (failover, breaker open, quorum
  revert, torn recovery, SLO fast burn).

Everything here is read-side: nothing in this module sits on a write
hot path, so the <5%-enabled overhead bar is carried entirely by the
(cheap) context propagation in :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import repro.obs as obs
from repro.obs.metrics import LabelPairs, MetricsRegistry, _render_labels
from repro.obs.trace import Span, Tracer

__all__ = [
    "ClusterMetrics",
    "histogram_quantile",
    "SloTarget",
    "SloTracker",
    "AssembledTrace",
    "TraceAssembler",
    "FlightRecorder",
]

Series = Tuple[str, str, LabelPairs, Any]


# ---------------------------------------------------------------------------
# Metrics aggregation
# ---------------------------------------------------------------------------


class ClusterMetrics:
    """One merged view over the global and every component registry.

    Series from a component registry gain a ``component="..."`` label;
    series from the global registry pass through unlabeled. The merge
    is performed lazily at render time — recording stays entirely on
    the per-registry fast paths.
    """

    def __init__(self, hub: Optional["obs.Observability"] = None) -> None:
        self._hub = hub

    def _active_hub(self) -> "obs.Observability":
        return self._hub if self._hub is not None else obs.active()

    def components(self) -> List[str]:
        """The component names seen so far, sorted."""
        return sorted(self._active_hub().components)

    def sources(
        self, component: Optional[str] = None
    ) -> List[Tuple[str, MetricsRegistry]]:
        hub = self._active_hub()
        out: List[Tuple[str, MetricsRegistry]] = []
        if component is None or component == "":
            out.append(("", hub.metrics))
        for name in sorted(hub.components):
            if component is None or name == component:
                out.append((name, hub.components[name]))
        return out

    def series(self, component: Optional[str] = None) -> List[Series]:
        """Every series cluster-wide as ``(kind, name, labels, value)``."""
        merged: List[Series] = []
        for comp, registry in self.sources(component):
            for kind, name, labels, value in registry.series():
                if comp:
                    labels = tuple(
                        sorted(labels + (("component", comp),))
                    )
                merged.append((kind, name, labels, value))
        return merged

    def counter_total(
        self, name: str, component: Optional[str] = None
    ) -> float:
        """Sum of one counter family across every component."""
        return sum(
            value
            for kind, family, _labels, value in self.series(component)
            if kind == "counter" and family == name
        )

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values one label takes across the merged family."""
        return sorted(
            {
                value
                for _kind, family, labels, _v in self.series()
                if family == name
                for pair_label, value in labels
                if pair_label == label
            }
        )

    def merged_histogram(
        self, name: str, component: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """One histogram family folded across labels and components.

        Bucket-aligned addition (every registry uses the same fixed
        bounds per family), which is exactly what quantile estimation
        over the cluster needs.
        """
        total: Optional[Dict[str, Any]] = None
        for kind, family, _labels, value in self.series(component):
            if kind != "histogram" or family != name:
                continue
            if total is None:
                total = {
                    "count": value["count"],
                    "sum": value["sum"],
                    "bounds": tuple(value["bounds"]),
                    "buckets": dict(value["buckets"]),
                }
            else:
                total["count"] += value["count"]
                total["sum"] += value["sum"]
                for bucket, count in value["buckets"].items():
                    total["buckets"][bucket] = (
                        total["buckets"].get(bucket, 0) + count
                    )
        return total

    def snapshot(self, component: Optional[str] = None) -> Dict[str, Any]:
        """The merged series as plain data (the JSON exposition body)."""
        out: Dict[str, Any] = {
            "components": self.components(),
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for kind, name, labels, value in self.series(component):
            key = name + _render_labels(labels)
            if kind == "counter":
                out["counters"][key] = value
            elif kind == "gauge":
                out["gauges"][key] = value
            else:
                out["histograms"][key] = {
                    "count": value["count"],
                    "sum": value["sum"],
                    "buckets": dict(value["buckets"]),
                }
        return out

    def render_text(self, component: Optional[str] = None) -> str:
        """Prometheus-style text exposition of the merged series."""
        snap = self.snapshot(component)
        lines: List[str] = []
        for kind in ("counters", "gauges"):
            type_name = kind[:-1]
            for key in sorted(snap[kind]):
                lines.append(f"# TYPE {key.split('{')[0]} {type_name}")
                lines.append(f"{key} {snap[kind][key]:g}")
        for key in sorted(snap["histograms"]):
            data = snap["histograms"][key]
            base, brace, labels = key.partition("{")
            lines.append(f"# TYPE {base} histogram")
            for bucket, count in data["buckets"].items():
                bound = bucket.split("=", 1)[1]
                label_text = labels[:-1] + "," if brace else ""
                lines.append(
                    f'{base}_bucket{{{label_text}le="{bound}"}} {count}'
                )
            lines.append(f"{base}_sum{brace}{labels} {data['sum']:g}")
            lines.append(f"{base}_count{brace}{labels} {data['count']}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Quantiles and SLOs
# ---------------------------------------------------------------------------


def histogram_quantile(histogram: Any, q: float) -> Optional[float]:
    """Estimate the ``q``-quantile from fixed-bucket counts.

    ``histogram`` is either a live :class:`~repro.obs.metrics.Histogram`
    or the ``{"count", "buckets", "bounds"}`` dict produced by
    ``MetricsRegistry.series()`` / :meth:`ClusterMetrics.merged_histogram`.
    Linear interpolation within the winning bucket, Prometheus style;
    observations in the ``+Inf`` bucket clamp to the largest finite
    bound. Returns ``None`` on an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if isinstance(histogram, dict):
        bounds = tuple(histogram["bounds"])
        bucket_map = histogram["buckets"]
        counts = [
            bucket_map.get(f"le={bound:g}", 0) for bound in bounds
        ]
        counts.append(bucket_map.get("le=+Inf", 0))
    else:
        bounds = histogram.buckets
        bucket_map = histogram.bucket_counts()
        counts = [
            bucket_map.get(f"le={bound:g}", 0) for bound in bounds
        ]
        counts.append(bucket_map.get("le=+Inf", 0))
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0.0
    for index, bound in enumerate(bounds):
        previous = cumulative
        cumulative += counts[index]
        if cumulative >= rank:
            lower = bounds[index - 1] if index > 0 else 0.0
            if counts[index] == 0:
                return float(bound)
            fraction = (rank - previous) / counts[index]
            return lower + (bound - lower) * fraction
    # Landed in +Inf: the honest answer is "beyond the largest bound".
    return float(bounds[-1])


class SloTarget:
    """One declared objective over existing instrument families.

    Two kinds:

    * ``latency`` — "fraction of ``family`` observations at or under
      ``threshold`` must be ≥ ``objective``" (threshold in the
      histogram's native unit, here milliseconds). ``quantile`` is
      what :meth:`SloTracker.report` additionally estimates for
      display (p95 by default).
    * ``availability`` — "fraction of ``family`` counter increments
      whose ``bad_label`` value does *not* start with a
      ``bad_prefixes`` entry must be ≥ ``objective``" (5xx statuses by
      default).
    """

    __slots__ = (
        "name",
        "kind",
        "objective",
        "family",
        "threshold",
        "quantile",
        "bad_label",
        "bad_prefixes",
        "description",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        objective: float,
        family: str,
        threshold: Optional[float] = None,
        quantile: float = 0.95,
        bad_label: str = "status",
        bad_prefixes: Tuple[str, ...] = ("5",),
        description: str = "",
    ) -> None:
        if kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {kind!r}")
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be a ratio in (0, 1)")
        if kind == "latency" and threshold is None:
            raise ValueError("a latency SLO needs a threshold")
        self.name = name
        self.kind = kind
        self.objective = objective
        self.family = family
        self.threshold = threshold
        self.quantile = quantile
        self.bad_label = bad_label
        self.bad_prefixes = bad_prefixes
        self.description = description

    @classmethod
    def latency(
        cls,
        name: str,
        family: str,
        threshold_ms: float,
        objective: float = 0.95,
        quantile: float = 0.95,
        description: str = "",
    ) -> "SloTarget":
        return cls(
            name,
            "latency",
            objective,
            family,
            threshold=threshold_ms,
            quantile=quantile,
            description=description,
        )

    @classmethod
    def availability(
        cls,
        name: str,
        family: str,
        objective: float = 0.999,
        bad_label: str = "status",
        bad_prefixes: Tuple[str, ...] = ("5",),
        description: str = "",
    ) -> "SloTarget":
        return cls(
            name,
            "availability",
            objective,
            family,
            bad_label=bad_label,
            bad_prefixes=bad_prefixes,
            description=description,
        )

    def good_bad(self, cluster: ClusterMetrics) -> Tuple[float, float]:
        """Cumulative (good, bad) event counts for this objective."""
        if self.kind == "latency":
            merged = cluster.merged_histogram(self.family)
            if merged is None:
                return 0.0, 0.0
            good = sum(
                merged["buckets"].get(f"le={bound:g}", 0)
                for bound in merged["bounds"]
                if bound <= self.threshold
            )
            return float(good), float(merged["count"] - good)
        good = bad = 0.0
        for kind, family, labels, value in cluster.series():
            if kind != "counter" or family != self.family:
                continue
            label_map = dict(labels)
            status = label_map.get(self.bad_label, "")
            if any(status.startswith(p) for p in self.bad_prefixes):
                bad += value
            else:
                good += value
        return good, bad

    def estimate(self, cluster: ClusterMetrics) -> Optional[float]:
        """The display estimate: latency quantile, or None."""
        if self.kind != "latency":
            return None
        merged = cluster.merged_histogram(self.family)
        if merged is None:
            return None
        return histogram_quantile(merged, self.quantile)


class SloTracker:
    """Multi-window burn rates over cumulative good/bad counts.

    Burn rate is the classic definition: the error rate observed over
    a window, divided by the error budget ``1 - objective``. A burn
    of 1.0 spends the budget exactly at the objective's pace; 14.4
    over an hour is Google's "page now" threshold, and :attr:`
    fast_burn_threshold` defaults near it. Each :meth:`sample` appends
    cumulative counts to a bounded deque, so the tracker costs O(1)
    per health poll and nothing on the write path.
    """

    MIN_WINDOW_EVENTS = 10  # don't alert on the first unlucky request

    def __init__(
        self,
        targets: Sequence[SloTarget],
        fast_window: float = 60.0,
        slow_window: float = 3600.0,
        fast_burn_threshold: float = 14.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.targets = list(targets)
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.fast_burn_threshold = fast_burn_threshold
        self.clock = clock
        self._lock = threading.Lock()
        self._samples: Dict[str, deque] = {
            t.name: deque() for t in self.targets
        }
        self._burning: Dict[str, bool] = {t.name: False for t in self.targets}

    def _window_rates(
        self, samples: deque, now: float
    ) -> Dict[str, Optional[float]]:
        """Error rate over each window, or None with too little data."""
        out: Dict[str, Optional[float]] = {}
        for label, window in (
            ("fast", self.fast_window),
            ("slow", self.slow_window),
        ):
            base = None
            for t, good, bad in samples:
                if t >= now - window:
                    base = (t, good, bad)
                    break
            if base is None or not samples:
                out[label] = None
                continue
            _t0, good0, bad0 = base
            _tn, goodn, badn = samples[-1]
            good_delta = goodn - good0
            bad_delta = badn - bad0
            total = good_delta + bad_delta
            if total < self.MIN_WINDOW_EVENTS:
                out[label] = None
            else:
                out[label] = bad_delta / total
        return out

    def sample(
        self,
        cluster: Optional[ClusterMetrics] = None,
        hub: Optional["obs.Observability"] = None,
    ) -> Dict[str, Any]:
        """Take one sample and return the SLO report.

        Also exports ``slo_burn_rate{slo=,window=}`` and
        ``slo_attainment{slo=}`` gauges and fires the
        ``slo_fast_burn`` anomaly on the *transition* into fast burn
        (so a long incident produces one flight bundle, not one per
        health poll).
        """
        hub = hub if hub is not None else obs.active()
        cluster = cluster if cluster is not None else ClusterMetrics(hub)
        now = self.clock()
        report: Dict[str, Any] = {}
        fired: List[str] = []
        with self._lock:
            for target in self.targets:
                good, bad = target.good_bad(cluster)
                samples = self._samples[target.name]
                samples.append((now, good, bad))
                while samples and samples[0][0] < now - self.slow_window:
                    samples.popleft()
                rates = self._window_rates(samples, now)
                budget = 1.0 - target.objective
                burn = {
                    label: (None if rate is None else rate / budget)
                    for label, rate in rates.items()
                }
                total = good + bad
                attainment = (good / total) if total else None
                fast_burning = (
                    burn["fast"] is not None
                    and burn["fast"] >= self.fast_burn_threshold
                )
                if fast_burning and not self._burning[target.name]:
                    fired.append(target.name)
                self._burning[target.name] = fast_burning
                entry: Dict[str, Any] = {
                    "kind": target.kind,
                    "objective": target.objective,
                    "attainment": attainment,
                    "good": good,
                    "bad": bad,
                    "burn": burn,
                    "fast_burn": fast_burning,
                }
                estimate = target.estimate(cluster)
                if estimate is not None:
                    entry[f"p{int(target.quantile * 100)}_ms"] = round(
                        estimate, 3
                    )
                    entry["threshold_ms"] = target.threshold
                report[target.name] = entry
                registry = hub.metrics
                if attainment is not None:
                    registry.gauge(
                        "slo_attainment", slo=target.name
                    ).set(attainment)
                for label, value in burn.items():
                    if value is not None:
                        registry.gauge(
                            "slo_burn_rate", slo=target.name, window=label
                        ).set(value)
        for name in fired:
            obs.anomaly(
                "slo_fast_burn",
                slo=name,
                burn=report[name]["burn"]["fast"],
                threshold=self.fast_burn_threshold,
            )
        return report


# ---------------------------------------------------------------------------
# Trace assembly
# ---------------------------------------------------------------------------


class AssembledTrace:
    """Every retained fragment of one trace, as a causal timeline.

    ``fragments`` are root spans sorted by start time —
    ``perf_counter`` is monotonic process-wide, so cross-thread starts
    order correctly. Each fragment's ``parent_id`` names the span (in
    an earlier fragment) that caused it.
    """

    __slots__ = ("trace_id", "fragments")

    def __init__(self, trace_id: str, fragments: Sequence[Span]) -> None:
        self.trace_id = trace_id
        self.fragments = sorted(fragments, key=lambda s: s.start)

    @property
    def request_id(self) -> Optional[str]:
        for fragment in self.fragments:
            value = fragment.attributes.get("request_id")
            if value is not None:
                return str(value)
        return None

    def iter_spans(self) -> Iterator[Span]:
        for fragment in self.fragments:
            yield from fragment.iter_spans()

    def span_names(self) -> List[str]:
        return [span.name for span in self.iter_spans()]

    def find_all(self, name: str) -> List[Span]:
        return [span for span in self.iter_spans() if span.name == name]

    def audit_asns(self) -> List[Any]:
        """ASNs recorded on spans — the trace→audit cross-link."""
        return [
            span.attributes["asn"]
            for span in self.iter_spans()
            if "asn" in span.attributes
        ]

    @property
    def duration_ms(self) -> float:
        if not self.fragments:
            return 0.0
        start = self.fragments[0].start
        end = max(
            (f.end for f in self.fragments if f.end is not None),
            default=start,
        )
        return (end - start) * 1000

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "duration_ms": round(self.duration_ms, 3),
            "fragments": [f.to_dict() for f in self.fragments],
            "audit_asns": self.audit_asns(),
        }

    def render(self) -> str:
        """The whole trace as one indented text timeline."""
        header = [
            f"trace {self.trace_id}"
            + (f" request_id={self.request_id}" if self.request_id else "")
            + f" fragments={len(self.fragments)}"
            + f" spans={len(self.span_names())}"
            + f" duration={self.duration_ms:.3f}ms"
        ]
        asns = self.audit_asns()
        if asns:
            header.append(f"audit_asns={asns}")
        lines = [" ".join(header)]
        origin = self.fragments[0].start if self.fragments else 0.0
        for index, fragment in enumerate(self.fragments):
            offset = (fragment.start - origin) * 1000
            cause = (
                f" caused_by={fragment.parent_id}"
                if fragment.parent_id
                else ""
            )
            lines.append(
                f"-- fragment {index} (+{offset:.3f}ms, "
                f"span {fragment.span_id}){cause} --"
            )
            lines.append(fragment.render())
        return "\n".join(lines)


class TraceAssembler:
    """Groups a tracer's retained root spans by trace id."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer

    def _roots(self) -> Tuple[Span, ...]:
        tracer = self._tracer if self._tracer is not None else obs.tracer()
        return tracer.roots()

    def traces(self) -> List[AssembledTrace]:
        """Every assembled trace, oldest first by first fragment."""
        groups: Dict[str, List[Span]] = {}
        for root in self._roots():
            if root.trace_id is not None:
                groups.setdefault(root.trace_id, []).append(root)
        return sorted(
            (AssembledTrace(tid, spans) for tid, spans in groups.items()),
            key=lambda t: t.fragments[0].start,
        )

    def assemble(
        self,
        trace_id: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> Optional[AssembledTrace]:
        """One trace by id or by the request id riding in its spans."""
        if trace_id is None and request_id is None:
            raise ValueError("need a trace_id or a request_id")
        if trace_id is None:
            for root in self._roots():
                if root.attributes.get("request_id") == request_id:
                    trace_id = root.trace_id
                    break
            if trace_id is None:
                return None
        fragments = [
            root for root in self._roots() if root.trace_id == trace_id
        ]
        if not fragments:
            return None
        return AssembledTrace(trace_id, fragments)


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class FlightRecorder:
    """Always-on bounded recorder dumped on anomaly triggers.

    The ring buffers it reads (tracer roots, metrics registries, audit
    tails) are already maintained by the live system, so "always-on"
    costs nothing extra; :meth:`trigger` freezes them into one
    timestamped JSONL bundle, written atomically (temp file +
    ``os.replace``) so a reader never sees a half bundle. Triggers for
    the same anomaly kind are rate-limited to one bundle per
    ``min_interval`` seconds.
    """

    def __init__(
        self,
        directory: str,
        span_limit: int = 100,
        audit_tail: int = 20,
        min_interval: float = 5.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = directory
        self.span_limit = span_limit
        self.audit_tail = audit_tail
        self.min_interval = min_interval
        self.clock = clock
        self.bundles: List[str] = []
        self.suppressed = 0
        self._sources: Dict[str, Callable[[], Any]] = {}
        self._last: Dict[str, float] = {}
        self._seq = 0
        self._lock = threading.Lock()
        os.makedirs(directory, exist_ok=True)

    def add_source(self, name: str, fn: Callable[[], Any]) -> None:
        """Register an extra bundle section (e.g. one stack's audit tail)."""
        self._sources[name] = fn

    def add_audit_source(self, name: str, audit_log: Any) -> None:
        """Convenience: a section with the log's last N record dicts."""
        limit = self.audit_tail

        def tail() -> List[Dict[str, Any]]:
            return [record.as_dict() for record in audit_log.tail(limit)]

        self.add_source(name, tail)

    def install(self, hub: Optional["obs.Observability"] = None) -> "FlightRecorder":
        """Attach to a hub so :func:`repro.obs.anomaly` triggers dumps."""
        hub = hub if hub is not None else obs.active()
        hub.flight = self
        return self

    def latest(self) -> Optional[str]:
        return self.bundles[-1] if self.bundles else None

    # -- dumping -------------------------------------------------------------

    def trigger(
        self,
        kind: str,
        detail: Optional[Dict[str, Any]] = None,
        hub: Optional["obs.Observability"] = None,
    ) -> Optional[str]:
        """Dump a bundle for one anomaly; returns its path (or None
        when rate-limited)."""
        now = time.monotonic()
        with self._lock:
            last = self._last.get(kind)
            if last is not None and now - last < self.min_interval:
                self.suppressed += 1
                return None
            self._last[kind] = now
            self._seq += 1
            seq = self._seq
        hub = hub if hub is not None else obs.active()
        stamp = time.strftime(
            "%Y%m%dT%H%M%S", time.gmtime(self.clock())
        )
        safe_kind = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in kind
        )
        path = os.path.join(
            self.directory, f"flight-{stamp}-{seq:04d}-{safe_kind}.jsonl"
        )
        lines = self._bundle_lines(kind, detail or {}, hub)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line, default=str) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.bundles.append(path)
        hub.metrics.counter("flight_bundles_total", kind=kind).inc()
        return path

    def _bundle_lines(
        self, kind: str, detail: Dict[str, Any], hub: "obs.Observability"
    ) -> List[Dict[str, Any]]:
        lines: List[Dict[str, Any]] = [
            {
                "record": "flight",
                "anomaly": kind,
                "detail": detail,
                "unix_ts": self.clock(),
                "pid": os.getpid(),
            }
        ]
        roots = hub.tracer.roots()[-self.span_limit:]
        lines.append(
            {
                "section": "spans",
                "count": len(roots),
                "spans": [root.to_dict() for root in roots],
            }
        )
        lines.append(
            {
                "section": "metrics",
                "snapshot": ClusterMetrics(hub).snapshot(),
            }
        )
        for name in sorted(self._sources):
            try:
                data = self._sources[name]()
            except Exception as exc:  # a dying stack must not kill the dump
                data = {"error": f"{type(exc).__name__}: {exc}"}
            lines.append({"section": name, "data": data})
        return lines

    # -- inspection ----------------------------------------------------------

    @staticmethod
    def load(path: str) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    @staticmethod
    def inspect(path: str) -> str:
        """A human-readable rendering of one bundle."""
        records = FlightRecorder.load(path)
        if not records or records[0].get("record") != "flight":
            raise ValueError(f"{path}: not a flight-recorder bundle")
        header = records[0]
        when = time.strftime(
            "%Y-%m-%d %H:%M:%SZ", time.gmtime(header.get("unix_ts", 0))
        )
        lines = [
            f"flight bundle {os.path.basename(path)}",
            f"  anomaly: {header['anomaly']}",
            f"  at:      {when}",
        ]
        detail = header.get("detail") or {}
        for key in sorted(detail):
            lines.append(f"  {key}: {detail[key]}")
        for section in records[1:]:
            name = section.get("section", "?")
            if name == "spans":
                lines.append(f"  spans: {section.get('count', 0)} retained")
                for span in section.get("spans", [])[-5:]:
                    trace = span.get("trace_id")
                    suffix = f" trace={trace}" if trace else ""
                    lines.append(
                        f"    - {span['name']} "
                        f"[{span.get('duration_ms', 0)}ms]{suffix}"
                    )
            elif name == "metrics":
                snap = section.get("snapshot", {})
                lines.append(
                    "  metrics: "
                    f"{len(snap.get('counters', {}))} counters, "
                    f"{len(snap.get('gauges', {}))} gauges, "
                    f"{len(snap.get('histograms', {}))} histograms, "
                    f"components={snap.get('components', [])}"
                )
            else:
                data = section.get("data")
                size = len(data) if isinstance(data, (list, dict)) else 1
                lines.append(f"  {name}: {size} entries")
                if isinstance(data, list):
                    for entry in data[-3:]:
                        if isinstance(entry, dict) and "asn" in entry:
                            trace = entry.get("trace")
                            suffix = f" trace={trace}" if trace else ""
                            lines.append(
                                f"    - #{entry['asn']} "
                                f"{entry.get('object', '?')}."
                                f"{entry.get('op', '?')} "
                                f"{entry.get('outcome', '?')}{suffix}"
                            )
        return "\n".join(lines)
