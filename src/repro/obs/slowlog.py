"""A threshold-gated log of slow operations.

Most traces are noise; the ones worth keeping are the outliers. The
:class:`SlowLog` subscribes to the tracer's finished root spans and
retains only those whose duration crosses a threshold, each entry
carrying the span's name, duration, and attributes — enough to answer
"what was slow and what was it touching" without storing every trace.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.trace import Span

__all__ = ["SlowLog", "SlowEntry"]


class SlowEntry:
    """One retained slow operation."""

    __slots__ = ("name", "duration", "attributes", "error")

    def __init__(
        self,
        name: str,
        duration: float,
        attributes: Dict[str, Any],
        error: Optional[str] = None,
    ) -> None:
        self.name = name
        self.duration = duration
        self.attributes = attributes
        self.error = error

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration * 1000, 3),
            "attributes": dict(self.attributes),
        }
        if self.error is not None:
            out["error"] = self.error
        return out

    def describe(self) -> str:
        attrs = " ".join(
            f"{key}={self.attributes[key]}" for key in sorted(self.attributes)
        )
        suffix = f" error={self.error!r}" if self.error else ""
        return f"{self.name} {self.duration * 1000:.3f}ms {attrs}{suffix}".rstrip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlowEntry({self.describe()})"


class SlowLog:
    """Keeps the most recent root spans slower than ``threshold``.

    Parameters
    ----------
    threshold:
        Duration (seconds) a span must *exceed* to be retained; a span
        landing exactly on the threshold is not slow. Zero therefore
        retains every span with nonzero duration — useful in tests and
        demos.
    capacity:
        Ring-buffer size.
    """

    def __init__(self, threshold: float = 0.1, capacity: int = 128) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold = threshold
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=capacity)
        self.observed = 0  # spans offered
        self.retained = 0  # spans kept

    def consider(self, span: Span) -> bool:
        """Tracer ``on_root`` hook: retain the span if slow enough."""
        self.observed += 1
        if span.duration <= self.threshold:
            return False
        entry = SlowEntry(
            span.name, span.duration, dict(span.attributes), span.error
        )
        with self._lock:
            self._entries.append(entry)
            self.retained += 1
        return True

    def entries(self) -> List[SlowEntry]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def render(self) -> str:
        return "\n".join(entry.describe() for entry in self.entries())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlowLog(threshold={self.threshold}, entries={len(self)}, "
            f"observed={self.observed})"
        )
