"""The update audit log: every view-level update as an immutable record.

The paper's translator turns one view-object update into "the set of
database operations"; PR 4 made each execution *watchable* (spans,
counters, EXPLAIN). This module makes executions *permanent*: an
:class:`AuditLog` assigns every view-level update a monotonically
increasing **audit sequence number** (ASN) and records

* the view operation as submitted (op kind, object name, item count,
  requesting user),
* the dependency island the translator computed at definition time,
* the coalesced :class:`~repro.relational.operations.UpdatePlan` that
  was applied,
* the per-cell before/after images (reusing the journal's image
  machinery — one serialization format for both subsystems),
* the translator policy answers in force, and
* the **outcome**: ``committed``, ``rolled_back``, ``degraded_rejected``
  (the serving layer refused it while the circuit breaker was open), or
  ``crashed`` (a simulated/real crash interrupted it; recovery later
  reconciles it to committed or rolled back via :meth:`AuditLog.reconcile`).

Like the journal, the log is append-only: an outcome change is a
*resolution marker* appended after the fact, never an in-place edit, so
replaying a :class:`FileAuditLog` file reconstructs exactly the
in-memory state. The file backend fsyncs every append and tolerates a
torn tail line on reopen (truncated, mirroring ``journal.py``'s crash
discipline); corruption anywhere *before* the tail raises
:class:`~repro.errors.AuditError`.

On top of this log sit :class:`~repro.obs.lineage.LineageIndex`
(``why`` / ``history`` per tuple) and :mod:`repro.obs.history`
(``as_of`` time travel, ``replay`` verification).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import AuditError
from repro.obs.context import current_trace_id
from repro.relational.journal import (
    Images,
    PlanJournal,
    decode_images,
    decode_plan,
    encode_images,
    encode_plan,
)
from repro.relational.journal import ABORTED as JOURNAL_ABORTED
from repro.relational.journal import COMMITTED as JOURNAL_COMMITTED
from repro.relational.operations import UpdatePlan

__all__ = [
    "COMMITTED",
    "ROLLED_BACK",
    "DEGRADED_REJECTED",
    "CRASHED",
    "OUTCOMES",
    "AuditRecord",
    "AuditLog",
    "MemoryAuditLog",
    "FileAuditLog",
    "ShippingCursor",
]

COMMITTED = "committed"
ROLLED_BACK = "rolled_back"
DEGRADED_REJECTED = "degraded_rejected"
CRASHED = "crashed"
OUTCOMES = (COMMITTED, ROLLED_BACK, DEGRADED_REJECTED, CRASHED)


class AuditRecord:
    """One audited view-level update.

    Immutable by convention: the only field that ever changes after
    append is :attr:`outcome` (and :attr:`error`), and only through
    :meth:`AuditLog.resolve`, which appends a resolution marker rather
    than rewriting the record.
    """

    __slots__ = (
        "asn",
        "op",
        "object_name",
        "outcome",
        "plan_records",
        "image_records",
        "island",
        "policy",
        "user",
        "items",
        "error",
        "journal_entry",
        "trace_id",
    )

    def __init__(
        self,
        asn: int,
        op: str,
        object_name: str,
        outcome: str,
        plan_records: List[Dict[str, Any]],
        image_records: List[List[Any]],
        island: Tuple[str, ...] = (),
        policy: Optional[Dict[str, Any]] = None,
        user: Optional[str] = None,
        items: int = 1,
        error: Optional[str] = None,
        journal_entry: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.asn = asn
        self.op = op
        self.object_name = object_name
        self.outcome = outcome
        self.plan_records = plan_records
        self.image_records = image_records
        self.island = tuple(island)
        self.policy = policy
        self.user = user
        self.items = items
        self.error = error
        self.journal_entry = journal_entry
        self.trace_id = trace_id

    def plan(self) -> UpdatePlan:
        return decode_plan(self.plan_records)

    def images(self) -> Images:
        return decode_images(self.image_records)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "asn": self.asn,
            "op": self.op,
            "object": self.object_name,
            "outcome": self.outcome,
            "items": self.items,
            "plan": self.plan_records,
            "images": self.image_records,
            "island": list(self.island),
        }
        if self.policy is not None:
            out["policy"] = self.policy
        if self.user is not None:
            out["user"] = self.user
        if self.error is not None:
            out["error"] = self.error
        if self.journal_entry is not None:
            out["journal_entry"] = self.journal_entry
        if self.trace_id is not None:
            out["trace"] = self.trace_id
        return out

    def describe(self) -> str:
        """One human-readable line (the ``audit tail`` format)."""
        parts = [
            f"#{self.asn}",
            f"{self.object_name}.{self.op}",
            self.outcome,
            f"ops={len(self.plan_records)}",
            f"cells={len(self.image_records)}",
        ]
        if self.items != 1:
            parts.append(f"items={self.items}")
        if self.user is not None:
            parts.append(f"user={self.user}")
        if self.journal_entry is not None:
            parts.append(f"journal=#{self.journal_entry}")
        if self.error is not None:
            parts.append(f"error={self.error!r}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AuditRecord(#{self.asn}, {self.object_name}.{self.op}, "
            f"{self.outcome}, {len(self.plan_records)} ops)"
        )


class AuditLog:
    """Common machinery of the audit backends (append-only, thread-safe).

    :attr:`version` increments on every append *and* resolution; the
    :class:`~repro.obs.lineage.LineageIndex` uses it to know when its
    derived chains are stale.
    """

    def __init__(self) -> None:
        self._records: Dict[int, AuditRecord] = {}
        self._next_asn = 1
        self._lock = threading.Lock()
        self.version = 0

    # -- writing ------------------------------------------------------------

    def append(
        self,
        op: str,
        object_name: str,
        outcome: str,
        plan: Optional[UpdatePlan] = None,
        images: Optional[Images] = None,
        island: Iterable[str] = (),
        policy: Optional[Dict[str, Any]] = None,
        user: Optional[str] = None,
        items: int = 1,
        error: Optional[str] = None,
        journal_entry: Optional[int] = None,
        plan_records: Optional[List[Dict[str, Any]]] = None,
        image_records: Optional[List[List[Any]]] = None,
        trace_id: Optional[str] = None,
    ) -> int:
        """Record one view-level update; returns its ASN.

        ``plan_records``/``image_records`` accept payloads already in
        the journal's encoded form (log shipping hands replicas the
        primary's encodings verbatim); when given, ``plan``/``images``
        are ignored and no re-encoding happens on the write path.

        ``trace_id`` cross-links the record to the distributed trace
        that produced it; when omitted, the ambient
        :class:`~repro.obs.context.TraceContext` (if any) is stamped,
        so every audited update inside a traced request joins the
        trace for free.
        """
        if outcome not in OUTCOMES:
            raise AuditError(
                f"unknown audit outcome {outcome!r}; choose from {OUTCOMES}"
            )
        if trace_id is None:
            trace_id = current_trace_id()
        if plan_records is None:
            plan_records = encode_plan(plan) if plan is not None else []
        if image_records is None:
            image_records = encode_images(images) if images is not None else []
        with self._lock:
            asn = self._next_asn
            self._next_asn += 1
            record = AuditRecord(
                asn,
                op,
                object_name,
                outcome,
                plan_records,
                image_records,
                island=tuple(island),
                policy=policy,
                user=user,
                items=items,
                error=error,
                journal_entry=journal_entry,
                trace_id=trace_id,
            )
            self._records[asn] = record
            self._append_payload(
                {"event": "record", **record.as_dict()}
            )
            self.version += 1
        return asn

    def resolve(
        self, asn: int, outcome: str, error: Optional[str] = None
    ) -> None:
        """Append a resolution marker changing a record's outcome.

        Used by :meth:`reconcile` when journal recovery settles the fate
        of an update audited as ``crashed``.
        """
        if outcome not in OUTCOMES:
            raise AuditError(
                f"unknown audit outcome {outcome!r}; choose from {OUTCOMES}"
            )
        with self._lock:
            record = self._records.get(asn)
            if record is None:
                raise AuditError(f"unknown audit record #{asn}")
            record.outcome = outcome
            if error is not None:
                record.error = error
            self._append_payload(
                {"event": "resolve", "asn": asn, "outcome": outcome,
                 **({"error": error} if error is not None else {})}
            )
            self.version += 1

    def reconcile(self, journal: PlanJournal) -> int:
        """Settle every ``crashed`` record against the journal's verdict.

        A crash between audit append and commit leaves the record
        ``crashed`` while the journal entry is still PENDING; after
        :func:`~repro.relational.journal.recover` runs, the entry is
        COMMITTED (the plan had fully landed) or ABORTED (it was
        reverted). This folds that verdict back into the audit log so
        ``replay``/``as_of`` see the truth. Idempotent; returns how many
        records were resolved.
        """
        with self._lock:
            crashed = [
                record
                for record in self._records.values()
                if record.outcome == CRASHED
                and record.journal_entry is not None
            ]
        settled = 0
        entries = {entry.entry_id: entry for entry in journal.entries()}
        for record in crashed:
            entry = entries.get(record.journal_entry)
            if entry is None:
                continue
            if entry.status == JOURNAL_COMMITTED:
                self.resolve(record.asn, COMMITTED)
                settled += 1
            elif entry.status == JOURNAL_ABORTED:
                self.resolve(
                    record.asn, ROLLED_BACK, error="reverted by recovery"
                )
                settled += 1
        return settled

    # -- reading ------------------------------------------------------------

    def records(self) -> List[AuditRecord]:
        """Every record, in ASN order."""
        with self._lock:
            return [self._records[asn] for asn in sorted(self._records)]

    def committed(self) -> List[AuditRecord]:
        """The records whose effects are in the database, in ASN order."""
        return [r for r in self.records() if r.outcome == COMMITTED]

    def committed_since(self, asn: int) -> List[AuditRecord]:
        """Committed records with an ASN strictly greater than ``asn``.

        The log-shipping read: a :class:`ShippingCursor` calls this to
        find what a replica has not been sent yet. Records resolved to a
        non-committed outcome (or not yet committed) are skipped — and a
        ``crashed`` record that recovery later resolves to committed
        shows up on the first call after the resolution, which is
        exactly when its effects become shippable.
        """
        return [r for r in self.committed() if r.asn > asn]

    def records_for_trace(self, trace_id: str) -> List[AuditRecord]:
        """Every record stamped with ``trace_id``, in ASN order.

        The trace→audit direction of the cross-link: given an
        assembled distributed trace, surface the audited updates it
        committed (``why()`` provides the other direction, since a
        lineage link's record now carries the trace id).
        """
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.asn)
        return [r for r in records if r.trace_id == trace_id]

    def tail(self, n: int = 10) -> List[AuditRecord]:
        return self.records()[-n:]

    def record(self, asn: int) -> AuditRecord:
        with self._lock:
            try:
                return self._records[asn]
            except KeyError:
                raise AuditError(f"unknown audit record #{asn}") from None

    def head_asn(self) -> int:
        """The highest assigned ASN (0 when the log is empty)."""
        with self._lock:
            return self._next_asn - 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- backend hook --------------------------------------------------------

    def _append_payload(self, payload: Dict[str, Any]) -> None:
        """Persist one event (called under the log lock)."""

    def close(self) -> None:
        pass


class ShippingCursor:
    """Tracks how far a log-shipping consumer has read an audit log.

    The replication layer keeps one cursor per shard primary: each
    committed record the primary's :class:`AuditLog` gains is *taken*
    exactly once (:meth:`take`) and turned into a shipped record for the
    replicas. :meth:`lag` is the number of committed records not yet
    taken — the primary-side half of lag accounting (the replica-side
    half, received-but-unapplied, lives in the replica's inbox).

    The cursor starts at the log's current head by default: replicas
    attached to a primary with prior history receive their baseline via
    seeding, not via replay from ASN 0.
    """

    def __init__(self, log: AuditLog, start_asn: Optional[int] = None) -> None:
        self.log = log
        self.asn = log.head_asn() if start_asn is None else start_asn

    def pending(self) -> List[AuditRecord]:
        """Committed records not yet taken, in ASN order."""
        return self.log.committed_since(self.asn)

    def take(self) -> List[AuditRecord]:
        """Return the pending records and advance past them."""
        fresh = self.pending()
        if fresh:
            self.asn = fresh[-1].asn
        return fresh

    def skip(self, asn: int) -> None:
        """Advance past ``asn`` without shipping it.

        Used for records whose effects were already replicated by
        another channel — a cross-shard transaction ships each
        participant's sub-plan during the two-phase commit, then audits
        the full coalesced plan on the owner; shipping that owner record
        too would apply foreign sub-plans to the owner's replicas.
        """
        self.asn = max(self.asn, asn)

    def lag(self) -> int:
        """How many committed records the consumer has not taken."""
        return len(self.pending())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShippingCursor(asn={self.asn}, lag={self.lag()})"


class MemoryAuditLog(AuditLog):
    """Audit log kept only in memory — tests and ephemeral sessions."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryAuditLog({len(self._records)} records)"


class FileAuditLog(AuditLog):
    """Durable audit log: append-only JSON lines, fsync'd per append.

    Reopening the same path reloads every record and folds the
    resolution markers. A torn final line — the process died mid-append
    — is detected and truncated away, exactly the crash discipline of
    :class:`~repro.relational.journal.FileJournal`; a corrupt line
    anywhere *before* the tail is real damage and raises
    :class:`~repro.errors.AuditError`.
    """

    def __init__(self, path) -> None:
        super().__init__()
        self.path = os.fspath(path)
        self._load()
        self._file = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as f:
            data = f.read()
        offset = 0
        torn_at: Optional[int] = None
        for raw in data.split(b"\n"):
            line_start = offset
            offset += len(raw) + 1
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
                self._replay_payload(payload)
            except (ValueError, KeyError, UnicodeDecodeError) as exc:
                # Only the *final* non-blank line may be damaged (a
                # crash mid-append); anything after it means mid-file
                # corruption.
                rest = data[min(offset, len(data)):]
                if rest.strip():
                    raise AuditError(
                        f"{self.path}: corrupt audit record before the "
                        f"tail (byte offset {line_start})"
                    ) from exc
                torn_at = line_start
                break
        if torn_at is not None:
            with open(self.path, "r+b") as f:
                f.truncate(torn_at)

    def _replay_payload(self, payload: Dict[str, Any]) -> None:
        event = payload["event"]
        if event == "record":
            record = AuditRecord(
                payload["asn"],
                payload["op"],
                payload["object"],
                payload["outcome"],
                payload["plan"],
                payload["images"],
                island=tuple(payload.get("island", ())),
                policy=payload.get("policy"),
                user=payload.get("user"),
                items=payload.get("items", 1),
                error=payload.get("error"),
                journal_entry=payload.get("journal_entry"),
                trace_id=payload.get("trace"),
            )
            self._records[record.asn] = record
            self._next_asn = max(self._next_asn, record.asn + 1)
            self.version += 1
        elif event == "resolve":
            record = self._records.get(payload["asn"])
            if record is None:
                raise AuditError(
                    f"{self.path}: resolution marker for unknown "
                    f"record #{payload['asn']}"
                )
            record.outcome = payload["outcome"]
            if payload.get("error") is not None:
                record.error = payload["error"]
            self.version += 1
        else:
            raise AuditError(f"{self.path}: unknown audit event {event!r}")

    def _append_payload(self, payload: Dict[str, Any]) -> None:
        self._file.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileAuditLog({self.path!r}, {len(self._records)} records)"
