"""Per-tuple lineage over the audit log.

The audit log answers "what happened, in order"; this module inverts it
to answer the operator's question: *which view updates, through which
translator rules, produced or last touched this base tuple?* A
:class:`LineageIndex` derives, from the committed audit records, a chain
of ASNs per ``(relation, key)`` cell and exposes

* :meth:`~LineageIndex.why` — the full provenance chain of a tuple,
  oldest first, each link carrying the audited view operation and the
  cell's before/after images at that step. Key re-homing is followed:
  when a replacement moved the tuple from another primary key, the
  chain continues through the old key's history, so ``why`` always
  terminates in the view update that originally created the tuple;
* :meth:`~LineageIndex.history` — the exact-cell image sequence (no
  re-homing), i.e. every value this *key* has held and which update
  wrote it.

The index is a pure derivation: it rebuilds itself lazily whenever the
log's version counter moves, never holds a lock on the log beyond the
snapshot read, and only considers ``committed`` records — a rolled-back
or degraded-rejected update never touched the database, so it cannot be
part of any tuple's provenance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.audit import COMMITTED, AuditLog, AuditRecord
from repro.relational.journal import Cell

__all__ = ["LineageLink", "LineageIndex"]


class LineageLink:
    """One step of a tuple's provenance: a committed update touched a cell."""

    __slots__ = ("asn", "record", "cell", "before", "after")

    def __init__(
        self,
        asn: int,
        record: AuditRecord,
        cell: Cell,
        before: Optional[Tuple[Any, ...]],
        after: Optional[Tuple[Any, ...]],
    ) -> None:
        self.asn = asn
        self.record = record
        self.cell = cell
        self.before = before
        self.after = after

    def describe(self) -> str:
        relation, key = self.cell
        def show(row):
            return "∅" if row is None else repr(tuple(row))
        return (
            f"#{self.asn} {self.record.object_name}.{self.record.op} "
            f"[{relation}{tuple(key)!r}] {show(self.before)} -> "
            f"{show(self.after)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LineageLink({self.describe()})"


class LineageIndex:
    """Maps every ``(relation, key)`` cell to its chain of ASNs."""

    def __init__(self, log: AuditLog) -> None:
        self.log = log
        self._version = -1
        self._chains: Dict[Cell, List[int]] = {}
        self._images: Dict[int, Dict[Cell, Tuple[Any, Any]]] = {}
        self._records: Dict[int, AuditRecord] = {}
        # (asn, new_cell) -> old_cell for key-changing replacements.
        self._rehomed: Dict[Tuple[int, Cell], Cell] = {}

    # -- derivation ----------------------------------------------------------

    def _refresh(self) -> None:
        if self._version == self.log.version:
            return
        self._chains = {}
        self._images = {}
        self._records = {}
        self._rehomed = {}
        for record in self.log.records():
            if record.outcome != COMMITTED:
                continue
            images = record.images()
            self._images[record.asn] = images
            self._records[record.asn] = record
            for cell in images:
                self._chains.setdefault(cell, []).append(record.asn)
            self._index_rehoming(record, images)
        self._version = self.log.version

    def _index_rehoming(
        self, record: AuditRecord, images: Dict[Cell, Tuple[Any, Any]]
    ) -> None:
        """Detect key-changing replacements from the record's own images.

        A replacement that moves a tuple to a new primary key shows up
        as two cells: the vacated old key ``(row, None)`` and the
        occupied new key ``(None, row')``. The plan's replace operation
        names the old key and carries the new row, which is exactly the
        new cell's after-image — no schema lookup needed.
        """
        for operation in record.plan().operations:
            if operation.kind != "replace":
                continue
            old_cell = (operation.relation, tuple(operation.key))
            new_values = tuple(operation.values)
            for cell, (before, after) in images.items():
                if (
                    cell[0] == operation.relation
                    and cell != old_cell
                    and before is None
                    and after == new_values
                ):
                    self._rehomed[(record.asn, cell)] = old_cell
                    break

    # -- queries -------------------------------------------------------------

    def chain(self, relation: str, key: Sequence[Any]) -> List[int]:
        """The ASNs of committed updates that touched this exact cell."""
        self._refresh()
        return list(self._chains.get((relation, tuple(key)), []))

    def history(self, relation: str, key: Sequence[Any]) -> List[LineageLink]:
        """The cell's before/after image sequence, oldest first."""
        self._refresh()
        cell = (relation, tuple(key))
        links = []
        for asn in self._chains.get(cell, []):
            before, after = self._images[asn][cell]
            links.append(LineageLink(asn, self._records[asn], cell, before, after))
        return links

    def why(self, relation: str, key: Sequence[Any]) -> List[LineageLink]:
        """The full provenance chain of the tuple now living at ``key``.

        Returned oldest first; the first link is the view update that
        originally created the tuple (possibly under a different primary
        key, if replacements re-homed it since), the last is the most
        recent committed update to touch it. Empty when no audited
        update ever touched the cell.
        """
        self._refresh()
        links: List[LineageLink] = []
        cell: Optional[Cell] = (relation, tuple(key))
        upper: Optional[int] = None  # only consider ASNs strictly below
        seen = set()
        while cell is not None and cell not in seen:
            seen.add(cell)
            asns = self._chains.get(cell, [])
            if upper is not None:
                asns = [asn for asn in asns if asn < upper]
            if not asns:
                break
            for asn in reversed(asns):
                before, after = self._images[asn][cell]
                links.append(
                    LineageLink(asn, self._records[asn], cell, before, after)
                )
            earliest = asns[0]
            cell = self._rehomed.get((earliest, cell))
            upper = earliest
        links.reverse()
        return links

    def cells(self) -> Tuple[Cell, ...]:
        """Every cell any committed update has touched."""
        self._refresh()
        return tuple(self._chains)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._refresh()
        return (
            f"LineageIndex({len(self._chains)} cells, "
            f"{len(self._records)} committed records)"
        )
