"""Observability: tracing, metrics, and the slow-operation log.

Keller's framework treats the chosen translation strategy as a
first-class artifact; this package makes the *executions* of that
strategy first-class too. One :class:`Observability` hub bundles

* a :class:`~repro.obs.trace.Tracer` (hierarchical spans:
  ``translate > validate > propagate > engine.apply > commit``),
* a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms for every layer), and
* a :class:`~repro.obs.slowlog.SlowLog` (threshold-gated outliers),

and the library's layers consult the *active* hub through the
module-level accessors :func:`tracer` / :func:`metrics` /
:func:`slow_log`. By default the hub is disabled: the accessors hand
out shared no-op objects, so instrumented code paths cost one function
call and nothing else. :func:`configure` swaps in a live hub;
:func:`disable` restores the no-op one; :func:`use` scopes a hub to a
``with`` block (tests, benchmarks, property-based equivalence checks).

>>> import repro.obs as obs
>>> hub = obs.configure()
>>> # ... run translated updates ...
>>> print(hub.tracer.render())          # doctest: +SKIP
>>> print(hub.metrics.render_text())    # doctest: +SKIP
>>> obs.disable()
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from typing import Iterator, Optional

from repro.obs.context import (
    TraceContext,
    activate,
    attach,
    current_context,
    current_request_id,
    current_trace_id,
    format_traceparent,
    new_request_id,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowEntry, SlowLog
from repro.obs.trace import NOOP_TRACER, Span, Tracer

__all__ = [
    "Observability",
    "configure",
    "disable",
    "use",
    "active",
    "tracer",
    "metrics",
    "slow_log",
    "component_metrics",
    "anomaly",
    "TraceContext",
    "activate",
    "attach",
    "current_context",
    "current_request_id",
    "current_trace_id",
    "format_traceparent",
    "new_request_id",
    "new_trace_id",
    "parse_traceparent",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SlowLog",
    "SlowEntry",
    "NOOP_TRACER",
    "NULL_REGISTRY",
    "AuditLog",
    "AuditRecord",
    "MemoryAuditLog",
    "FileAuditLog",
    "LineageIndex",
    "LineageLink",
    "ReplayReport",
    "as_of",
    "replay",
    "COMMITTED",
    "ROLLED_BACK",
    "DEGRADED_REJECTED",
    "CRASHED",
]

# The audit subsystem sits *above* the relational layer (it reuses the
# journal's plan/image serialization), while this package sits *below*
# it (the engines report metrics here). Importing it eagerly would close
# that loop, so the audit names resolve lazily on first attribute access
# (PEP 562) — `repro.obs.MemoryAuditLog` works, but importing
# `repro.obs` alone never touches the relational layer.
_LAZY_EXPORTS = {
    "AuditLog": "repro.obs.audit",
    "AuditRecord": "repro.obs.audit",
    "MemoryAuditLog": "repro.obs.audit",
    "FileAuditLog": "repro.obs.audit",
    "COMMITTED": "repro.obs.audit",
    "ROLLED_BACK": "repro.obs.audit",
    "DEGRADED_REJECTED": "repro.obs.audit",
    "CRASHED": "repro.obs.audit",
    "LineageIndex": "repro.obs.lineage",
    "LineageLink": "repro.obs.lineage",
    "ReplayReport": "repro.obs.history",
    "as_of": "repro.obs.history",
    "replay": "repro.obs.history",
    "ClusterMetrics": "repro.obs.cluster",
    "TraceAssembler": "repro.obs.cluster",
    "AssembledTrace": "repro.obs.cluster",
    "FlightRecorder": "repro.obs.cluster",
    "SloTarget": "repro.obs.cluster",
    "SloTracker": "repro.obs.cluster",
    "histogram_quantile": "repro.obs.cluster",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


class Observability:
    """One tracer + one metrics registry + one slow log, as a unit.

    A live hub additionally hands out *component* registries
    (:meth:`component`) — per-shard / per-replica metric namespaces a
    :class:`~repro.obs.cluster.ClusterMetrics` view merges back into
    one labeled render — and may carry a
    :class:`~repro.obs.cluster.FlightRecorder` that :func:`anomaly`
    triggers dump to.
    """

    def __init__(
        self,
        tracer: Tracer,
        metrics: MetricsRegistry,
        slow_log: Optional[SlowLog] = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.slow_log = slow_log
        self.components: "OrderedDict[str, MetricsRegistry]" = OrderedDict()
        self._components_lock = threading.Lock()
        self.flight = None  # Optional[FlightRecorder], set via install
        if slow_log is not None and tracer.enabled:
            tracer.on_root.append(slow_log.consider)

    def component(self, name: str) -> MetricsRegistry:
        """The named component's registry (created on first use).

        On a disabled hub this is the shared null registry, keeping the
        instrumented path cost identical to the global accessors.
        """
        if not self.is_enabled:
            return NULL_REGISTRY
        if not name:
            return self.metrics
        registry = self.components.get(name)
        if registry is None:
            with self._components_lock:
                registry = self.components.setdefault(name, MetricsRegistry())
        return registry

    @classmethod
    def disabled(cls) -> "Observability":
        """The no-op hub: shared disabled tracer, null registry."""
        return cls(NOOP_TRACER, NULL_REGISTRY, None)

    @classmethod
    def enabled(
        cls,
        span_capacity: int = 256,
        slow_threshold: Optional[float] = None,
        clock=None,
    ) -> "Observability":
        tracer = Tracer(capacity=span_capacity)
        if clock is not None:
            tracer.clock = clock
        slow = None if slow_threshold is None else SlowLog(slow_threshold)
        return cls(tracer, MetricsRegistry(), slow)

    @property
    def is_enabled(self) -> bool:
        return self.tracer.enabled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Observability(enabled={self.is_enabled}, "
            f"slow_log={self.slow_log is not None})"
        )


_DISABLED = Observability.disabled()
_active = _DISABLED


def active() -> Observability:
    """The hub instrumented code currently reports to."""
    return _active


def tracer() -> Tracer:
    return _active.tracer


def metrics() -> MetricsRegistry:
    return _active.metrics


def slow_log() -> Optional[SlowLog]:
    return _active.slow_log


def component_metrics(name: str) -> MetricsRegistry:
    """The active hub's registry for one cluster component.

    Component names follow topology: ``shard0`` for a primary stack,
    ``shard0/r1`` for its second replica. The empty name is the global
    (cross-cutting) registry.
    """
    return _active.component(name)


def anomaly(kind: str, **detail) -> None:
    """Report a cluster anomaly: count it and trip the flight recorder.

    Call sites are the moments worth a post-mortem — failover, breaker
    open, quorum revert, torn two-phase recovery, SLO fast burn. On a
    disabled hub this is a no-op counter touch; when a
    :class:`~repro.obs.cluster.FlightRecorder` is installed on the
    active hub, it dumps a bundle (rate-limited per kind).
    """
    hub = _active
    hub.metrics.counter("anomalies_total", kind=kind).inc()
    recorder = hub.flight
    if recorder is not None:
        recorder.trigger(kind, detail, hub=hub)


def configure(
    span_capacity: int = 256,
    slow_threshold: Optional[float] = None,
    clock=None,
) -> Observability:
    """Install (and return) a fresh live hub.

    ``slow_threshold`` (seconds) turns on the slow-operation log;
    ``clock`` injects a fake clock for deterministic tests.
    """
    global _active
    _active = Observability.enabled(
        span_capacity=span_capacity, slow_threshold=slow_threshold, clock=clock
    )
    return _active


def disable() -> None:
    """Restore the shared no-op hub."""
    global _active
    _active = _DISABLED


@contextlib.contextmanager
def use(hub: Optional[Observability] = None) -> Iterator[Observability]:
    """Scope a hub to a ``with`` block, restoring the previous one after.

    With no argument, a fresh enabled hub is created for the block:

    >>> import repro.obs as obs
    >>> with obs.use() as hub:
    ...     pass  # instrumented code reports to `hub` here
    """
    global _active
    previous = _active
    _active = hub if hub is not None else Observability.enabled()
    try:
        yield _active
    finally:
        _active = previous
