"""Trace-context propagation across threads, tasks, and shipping.

A distributed write crosses four execution domains: the asyncio event
loop that parsed the HTTP request, the executor thread folding a
micro-batch, the coordinator thread driving a cross-shard two-phase
commit, and (later, asynchronously) each replica's applier thread. A
:class:`TraceContext` is the correlation token that survives all of
those hops: an immutable ``(trace_id, span_id, baggage)`` triple
carried in a :mod:`contextvars` variable inside one domain and carried
*explicitly* (as plain strings on :class:`~repro.replicate.replica.
ShippedRecord`s, journal intents, and audit records) across domain
boundaries that ``contextvars`` cannot cross.

Root spans opened while a context is active stamp its ``trace_id``
(see :mod:`repro.obs.trace`), which is what lets the
:class:`~repro.obs.cluster.TraceAssembler` stitch the fragments back
into one causal timeline.

The wire format follows W3C Trace Context (``traceparent:
00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>``) so external
callers can join traces, plus the pragmatic ``X-Request-Id`` header
which lands in :attr:`TraceContext.baggage` under ``"request_id"``.
"""

from __future__ import annotations

import contextlib
import itertools
import os
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "TraceContext",
    "current_context",
    "current_trace_id",
    "current_request_id",
    "attach",
    "activate",
    "new_trace_id",
    "new_span_id",
    "new_request_id",
    "parse_traceparent",
    "format_traceparent",
]

_HEX = "0123456789abcdef"

# Process-unique id generation: a random-ish per-process prefix (pid +
# startup entropy) plus a cheap monotonic counter. uuid4 costs ~1.5us
# per call; this is ~100ns and still unique across the processes that
# can ever share a trace file. ``next()`` on an ``itertools.count`` is
# a single C call — atomic under the GIL — so no lock is needed, and
# the pid prefixes are frozen at import (re-derived on fork via
# ``os.register_at_fork`` where available).
_SEED = int.from_bytes(os.urandom(6), "big")
_counter = itertools.count(1)
_TRACE_PREFIX = f"{_SEED:012x}{os.getpid() & 0xFFFF:04x}"
_SPAN_PREFIX = f"{os.getpid() & 0xFFFF:04x}"


def _reseed_after_fork() -> None:  # pragma: no cover - fork-only
    global _SEED, _counter, _TRACE_PREFIX, _SPAN_PREFIX
    _SEED = int.from_bytes(os.urandom(6), "big")
    _counter = itertools.count(1)
    _TRACE_PREFIX = f"{_SEED:012x}{os.getpid() & 0xFFFF:04x}"
    _SPAN_PREFIX = f"{os.getpid() & 0xFFFF:04x}"


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reseed_after_fork)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (W3C trace-id width)."""
    return _TRACE_PREFIX + format(next(_counter) & 0xFFFFFFFFFFFFFFFF, "016x")


def new_span_id() -> str:
    """A fresh 16-hex-char span id (W3C parent-id width)."""
    return _SPAN_PREFIX + format(next(_counter) & 0xFFFFFFFFFFFF, "012x")


def new_request_id() -> str:
    """A request id for responses when the client did not send one."""
    return f"req-{new_span_id()}"


class TraceContext:
    """The immutable correlation token for one logical request.

    ``trace_id``
        Shared by every span fragment of the request, cluster-wide.
    ``span_id``
        The id of the span that *created* this context — fragments
        started under it record it as their causal parent.
    ``baggage``
        Small string map that rides along (``request_id`` lives here).
    """

    __slots__ = ("trace_id", "span_id", "baggage")

    def __init__(
        self,
        trace_id: str,
        span_id: str = "",
        baggage: Optional[Dict[str, str]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.baggage: Dict[str, str] = dict(baggage) if baggage else {}

    @classmethod
    def new(cls, request_id: Optional[str] = None) -> "TraceContext":
        baggage = {"request_id": request_id} if request_id else {}
        return cls(new_trace_id(), new_span_id(), baggage)

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        """The same trace continued under a new parent span id."""
        return TraceContext(
            self.trace_id, span_id or new_span_id(), self.baggage
        )

    @property
    def request_id(self) -> Optional[str]:
        return self.baggage.get("request_id")

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.span_id:
            out["span_id"] = self.span_id
        if self.baggage:
            out["baggage"] = dict(self.baggage)
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        return cls(
            payload["trace_id"],
            payload.get("span_id", ""),
            payload.get("baggage") or {},
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.baggage == other.baggage
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, baggage={self.baggage!r})"
        )


#: The ambient context of the current thread/task. ``contextvars``
#: gives asyncio tasks an isolated copy and fresh threads an empty one;
#: cross-thread handoff is explicit via :func:`attach`.
_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext`, or ``None`` outside a trace."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    ctx = _CURRENT.get()
    return ctx.trace_id if ctx is not None else None


def current_request_id() -> Optional[str]:
    ctx = _CURRENT.get()
    return ctx.baggage.get("request_id") if ctx is not None else None


@contextlib.contextmanager
def attach(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``ctx`` ambient for the block; ``attach(None)`` is a no-op.

    This is the cross-thread handoff primitive: capture
    ``current_context()`` on the submitting side, then ``with
    attach(ctx):`` around the work on the executing side.
    """
    if ctx is None:
        yield None
        return
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def activate(
    trace_id: Optional[str] = None,
    request_id: Optional[str] = None,
    **baggage: str,
) -> Iterator[TraceContext]:
    """Start (or continue) a trace for the block and return its context.

    >>> from repro.obs.context import activate
    >>> with activate(request_id="req-1") as ctx:
    ...     pass  # spans opened here carry ctx.trace_id
    """
    bag = dict(baggage)
    if request_id:
        bag["request_id"] = request_id
    ctx = TraceContext(trace_id or new_trace_id(), new_span_id(), bag)
    with attach(ctx):
        yield ctx


# -- W3C traceparent ----------------------------------------------------------


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """``00-<trace>-<span>-<flags>`` → context, or None if malformed.

    Per the spec, an all-zero trace or span id is invalid; version
    ``ff`` is invalid; unknown versions parse leniently as long as the
    known fields are well-formed.
    """
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id = parts[0], parts[1], parts[2]
    if len(version) != 2 or version == "ff":
        return None
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    if any(ch not in _HEX for ch in version + trace_id + span_id):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id, span_id)


def format_traceparent(ctx: TraceContext) -> str:
    """The context as a ``traceparent`` header value (sampled flag set)."""
    trace_id = (ctx.trace_id or new_trace_id()).ljust(32, "0")[:32]
    span_id = (ctx.span_id or new_span_id()).ljust(16, "0")[:16]
    return f"00-{trace_id}-{span_id}-01"
