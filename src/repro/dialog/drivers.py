"""Dialog drivers: turning DBA answers into a translator policy.

"The algorithms that drive the dialogs for choosing a translator follow
closely the actual translation algorithms of Section 5." Concretely:

* the **replacement** dialog walks the object's tree depth-first (the
  same order VO-R walks it); island nodes get the three key-replacement
  questions, other nodes the three modification questions — asked once
  per relation, and follow-up questions are skipped when their gate
  question was answered no (footnote 5 of the paper);
* the **deletion** dialog asks, for every relation referencing an
  island relation (the peninsulas first), how the dangling references
  should be repaired;
* the **insertion** dialog shares the modification questions with the
  replacement dialog — the paper phrases them as "during insertions (or
  replacements)" — so it only contributes its opening gate question.

Running all three yields the complete
:class:`~repro.core.updates.policy.TranslatorPolicy` for the object.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.core.dependency_island import IslandAnalysis, analyze_island
from repro.core.updates.policy import (
    ReferenceRepair,
    RelationPolicy,
    TranslatorPolicy,
)
from repro.core.updates.translator import Translator
from repro.core.view_object import ViewObjectDefinition
from repro.dialog import questions as q
from repro.dialog.answers import AnswerSource
from repro.dialog.transcript import Transcript
from repro.structural.connections import ConnectionKind

__all__ = [
    "run_replacement_dialog",
    "run_insertion_dialog",
    "run_deletion_dialog",
    "run_definition_dialog",
    "choose_translator",
]


def _ask(
    source: AnswerSource, transcript: Transcript, question: q.Question
) -> bool:
    answer = source.answer(question)
    transcript.record(question, answer)
    return answer


def run_replacement_dialog(
    view_object: ViewObjectDefinition,
    source: AnswerSource,
    policy: TranslatorPolicy,
    transcript: Transcript,
    analysis: Optional[IslandAnalysis] = None,
) -> None:
    """The Section 6 dialog portion dealing with replacement."""
    analysis = analysis or analyze_island(view_object)
    policy.allow_replacement = _ask(
        source, transcript, q.allow_replacement()
    )
    if not policy.allow_replacement:
        return
    asked: Set[str] = set()
    for node in view_object.tree.dfs():
        relation = node.relation
        if relation in asked:
            continue
        asked.add(relation)
        relation_policy = policy.for_relation(relation)
        if analysis.is_island(node.node_id):
            _island_questions(source, transcript, relation, relation_policy)
        else:
            _modification_questions(
                source, transcript, relation, relation_policy
            )


def _island_questions(
    source: AnswerSource,
    transcript: Transcript,
    relation: str,
    relation_policy: RelationPolicy,
) -> None:
    relation_policy.allow_key_replacement = _ask(
        source, transcript, q.island_key_modifiable(relation)
    )
    if not relation_policy.allow_key_replacement:
        relation_policy.allow_db_key_replacement = False
        relation_policy.allow_merge_on_key_conflict = False
        return
    relation_policy.allow_db_key_replacement = _ask(
        source, transcript, q.island_db_key_replace(relation)
    )
    if not relation_policy.allow_db_key_replacement:
        relation_policy.allow_merge_on_key_conflict = False
        return
    relation_policy.allow_merge_on_key_conflict = _ask(
        source, transcript, q.island_merge_on_conflict(relation)
    )


def _modification_questions(
    source: AnswerSource,
    transcript: Transcript,
    relation: str,
    relation_policy: RelationPolicy,
) -> None:
    relation_policy.can_modify = _ask(
        source, transcript, q.relation_modifiable(relation)
    )
    if not relation_policy.can_modify:
        # Footnote 5: the two subsequent questions are irrelevant and
        # thus will not be asked.
        relation_policy.can_insert = False
        relation_policy.can_replace_existing = False
        return
    relation_policy.can_insert = _ask(
        source, transcript, q.relation_insertable(relation)
    )
    relation_policy.can_replace_existing = _ask(
        source, transcript, q.relation_replaceable(relation)
    )


def run_insertion_dialog(
    view_object: ViewObjectDefinition,
    source: AnswerSource,
    policy: TranslatorPolicy,
    transcript: Transcript,
    analysis: Optional[IslandAnalysis] = None,
) -> None:
    """Insertion gate; per-relation switches are shared with replacement."""
    policy.allow_insertion = _ask(source, transcript, q.allow_insertion())


def run_deletion_dialog(
    view_object: ViewObjectDefinition,
    source: AnswerSource,
    policy: TranslatorPolicy,
    transcript: Transcript,
    analysis: Optional[IslandAnalysis] = None,
) -> None:
    """Deletion gate plus reference-repair choices.

    Every relation referencing an island relation in the *database
    schema* is covered — the DBA "can address issues of global
    integrity maintenance over the entire database" — which includes the
    peninsulas inside the object and any outside referencing relation.
    """
    analysis = analysis or analyze_island(view_object)
    policy.allow_deletion = _ask(source, transcript, q.allow_deletion())
    if not policy.allow_deletion:
        return
    graph = view_object.graph
    covered: Set[Tuple[str, str]] = set()
    for relation in analysis.island_relations:
        for connection in graph.connections_to(
            relation, ConnectionKind.REFERENCE
        ):
            pair = (connection.source, relation)
            if pair in covered:
                continue
            covered.add(pair)
            relation_policy = policy.for_relation(connection.source)
            can_delete = _ask(
                source,
                transcript,
                q.deletion_repair_delete(connection.source, relation),
            )
            if can_delete:
                relation_policy.on_reference_delete = ReferenceRepair.DELETE
                continue
            schema = graph.relation(connection.source)
            nullable = all(
                schema.attribute(a).nullable
                and not schema.is_key_attribute(a)
                for a in connection.source_attributes
            )
            if nullable:
                can_nullify = _ask(
                    source,
                    transcript,
                    q.deletion_repair_nullify(connection.source, relation),
                )
                relation_policy.on_reference_delete = (
                    ReferenceRepair.NULLIFY
                    if can_nullify
                    else ReferenceRepair.PROHIBIT
                )
            else:
                relation_policy.on_reference_delete = ReferenceRepair.PROHIBIT


def run_definition_dialog(
    view_object: ViewObjectDefinition,
    source: AnswerSource,
) -> Tuple[TranslatorPolicy, Transcript]:
    """The full definition-time dialog: insertion, deletion, replacement."""
    policy = TranslatorPolicy()
    transcript = Transcript()
    analysis = analyze_island(view_object)
    run_insertion_dialog(view_object, source, policy, transcript, analysis)
    run_deletion_dialog(view_object, source, policy, transcript, analysis)
    run_replacement_dialog(view_object, source, policy, transcript, analysis)
    return policy, transcript


def choose_translator(
    view_object: ViewObjectDefinition,
    source: AnswerSource,
    verify_integrity: bool = False,
    strictness: Optional[str] = None,
) -> Tuple[Translator, Transcript]:
    """Run the dialog and return the configured translator.

    "The effort of answering the series of questions once during
    view-definition time is amortized over all the times that updates
    against the view are subsequently requested."
    """
    policy, transcript = run_definition_dialog(view_object, source)
    translator = Translator(
        view_object,
        policy=policy,
        verify_integrity=verify_integrity,
        strictness=strictness,
    )
    return translator, transcript
