"""Answer sources: where the DBA's yes/no answers come from.

The paper's dialog is interactive; for a library we also need scripted
(fixed sequence), mapping (by question id), and constant sources, plus
an interactive one reading from stdin for the example application.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, TextIO

from repro.errors import AnswerError
from repro.dialog.questions import Question

__all__ = [
    "AnswerSource",
    "ScriptedAnswers",
    "MappingAnswers",
    "ConstantAnswers",
    "CallableAnswers",
    "InteractiveAnswers",
]


class AnswerSource:
    """Interface: produce a yes/no answer for each question asked."""

    def answer(self, question: Question) -> bool:
        raise NotImplementedError


class ScriptedAnswers(AnswerSource):
    """A fixed sequence of answers, consumed in dialog order.

    Mirrors the paper's transcript: the DBA's inputs are just a
    sequence of YES/NO. Raises :class:`AnswerError` if the dialog asks
    more questions than the script provides (a sign the script was
    written for a different object or the skipping logic diverged).
    """

    def __init__(self, answers: Iterable[bool]) -> None:
        self._answers: List[bool] = list(answers)
        self._position = 0

    def answer(self, question: Question) -> bool:
        if self._position >= len(self._answers):
            raise AnswerError(
                f"scripted answers exhausted at question {question.qid!r} "
                f"(provided {len(self._answers)})"
            )
        value = self._answers[self._position]
        self._position += 1
        return bool(value)

    @property
    def remaining(self) -> int:
        return len(self._answers) - self._position


class MappingAnswers(AnswerSource):
    """Answers by question id, with a default for unlisted questions."""

    def __init__(self, mapping: Dict[str, bool], default: bool = True) -> None:
        self._mapping = dict(mapping)
        self._default = default

    def answer(self, question: Question) -> bool:
        return bool(self._mapping.get(question.qid, self._default))


class ConstantAnswers(AnswerSource):
    """Always the same answer (fully permissive / fully restrictive)."""

    def __init__(self, value: bool) -> None:
        self._value = bool(value)

    def answer(self, question: Question) -> bool:
        return self._value


class CallableAnswers(AnswerSource):
    """Delegate to a callable ``f(question) -> bool``."""

    def __init__(self, function: Callable[[Question], bool]) -> None:
        self._function = function

    def answer(self, question: Question) -> bool:
        return bool(self._function(question))


class InteractiveAnswers(AnswerSource):
    """Prompt a human on a terminal, accepting y/yes/n/no."""

    def __init__(
        self,
        input_stream: Optional[TextIO] = None,
        output_stream: Optional[TextIO] = None,
    ) -> None:
        self._input = input_stream
        self._output = output_stream

    def answer(self, question: Question) -> bool:
        import sys

        out = self._output or sys.stdout
        src = self._input or sys.stdin
        while True:
            out.write(f"{question.text} <YES/NO> ")
            out.flush()
            line = src.readline()
            if not line:
                raise AnswerError("input stream closed mid-dialog")
            lowered = line.strip().lower()
            if lowered in ("y", "yes"):
                return True
            if lowered in ("n", "no"):
                return False
            out.write("Please answer YES or NO.\n")
