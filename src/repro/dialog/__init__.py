"""The translator-choosing dialog of Section 6.

"The DBA enters in a dialog with the object-definition facility; the
sequence of answers to the system's questions defines the desired
translator for the object at hand."
"""

from repro.dialog.answers import (
    AnswerSource,
    CallableAnswers,
    ConstantAnswers,
    InteractiveAnswers,
    MappingAnswers,
    ScriptedAnswers,
)
from repro.dialog.drivers import (
    choose_translator,
    run_definition_dialog,
    run_deletion_dialog,
    run_insertion_dialog,
    run_replacement_dialog,
)
from repro.dialog.questions import Question
from repro.dialog.transcript import Transcript

__all__ = [
    "Question",
    "Transcript",
    "AnswerSource",
    "ScriptedAnswers",
    "MappingAnswers",
    "ConstantAnswers",
    "CallableAnswers",
    "InteractiveAnswers",
    "choose_translator",
    "run_definition_dialog",
    "run_replacement_dialog",
    "run_insertion_dialog",
    "run_deletion_dialog",
]
