"""Dialog transcripts, rendered in the paper's format.

The Section 6 transcript shows each system question in typewriter style
followed by the DBA's bold-faced ``<YES>``/``<NO>``; we render one
question per line with the answer appended, which the transcript test
compares against the paper verbatim.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dialog.questions import Question

__all__ = ["Transcript"]


class Transcript:
    """Ordered record of (question, answer) pairs."""

    def __init__(self) -> None:
        self.entries: List[Tuple[Question, bool]] = []

    def record(self, question: Question, answer: bool) -> None:
        self.entries.append((question, answer))

    def render(self, section: str = None) -> str:
        """One ``question <YES|NO>`` line per entry."""
        lines = []
        for question, answer in self.entries:
            if section is not None and question.section != section:
                continue
            lines.append(f"{question.text} <{'YES' if answer else 'NO'}>")
        return "\n".join(lines)

    def questions_asked(self, section: str = None) -> List[str]:
        return [
            q.qid
            for q, __ in self.entries
            if section is None or q.section == section
        ]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transcript({len(self.entries)} entries)"
