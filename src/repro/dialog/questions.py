"""Question model for the translator-choosing dialog (Section 6).

Each question is a yes/no prompt with a stable identifier, so scripted
and programmatic answer sources can address questions without matching
on display text. The display texts reproduce the paper's transcript
verbatim for the questions that appear in it.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Question"]


class Question:
    """One yes/no question of the definition-time dialog."""

    __slots__ = ("qid", "text", "relation", "section")

    def __init__(
        self,
        qid: str,
        text: str,
        relation: Optional[str] = None,
        section: str = "",
    ) -> None:
        self.qid = qid
        self.text = text
        self.relation = relation
        self.section = section

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Question({self.qid!r})"


# -- question factories (texts from the paper where shown) -------------------


def allow_replacement() -> Question:
    return Question(
        "replacement.allowed",
        "Is replacement of tuples in an object instance allowed?",
        section="replacement",
    )


def allow_insertion() -> Question:
    return Question(
        "insertion.allowed",
        "Is insertion of new object instances allowed?",
        section="insertion",
    )


def allow_deletion() -> Question:
    return Question(
        "deletion.allowed",
        "Is deletion of object instances allowed?",
        section="deletion",
    )


def island_key_modifiable(relation: str) -> Question:
    return Question(
        f"replacement.{relation}.key_modifiable",
        f"The key of a tuple of relation {relation} could be modified "
        f"during replacements. Do you allow this?",
        relation=relation,
        section="replacement",
    )


def island_db_key_replace(relation: str) -> Question:
    return Question(
        f"replacement.{relation}.db_key_replace",
        "Can we replace the key of the corresponding database tuple?",
        relation=relation,
        section="replacement",
    )


def island_merge_on_conflict(relation: str) -> Question:
    return Question(
        f"replacement.{relation}.merge_on_conflict",
        "The system might need to delete the old database tuple, and "
        "replace it with an existing tuple with matching key. Do you "
        "allow this?",
        relation=relation,
        section="replacement",
    )


def relation_modifiable(relation: str) -> Question:
    return Question(
        f"modify.{relation}.allowed",
        f"Can the relation {relation} be modified during insertions "
        f"(or replacements)?",
        relation=relation,
        section="replacement",
    )


def relation_insertable(relation: str) -> Question:
    return Question(
        f"modify.{relation}.insert",
        "Can a new tuple be inserted?",
        relation=relation,
        section="replacement",
    )


def relation_replaceable(relation: str) -> Question:
    return Question(
        f"modify.{relation}.replace",
        "Can an existing tuple be modified?",
        relation=relation,
        section="replacement",
    )


def deletion_repair_delete(referencing: str, referenced: str) -> Question:
    return Question(
        f"deletion.{referencing}.repair_delete",
        f"Deleting an instance removes tuples of relation {referenced} "
        f"that tuples of relation {referencing} reference. Can those "
        f"referencing tuples be deleted?",
        relation=referencing,
        section="deletion",
    )


def deletion_repair_nullify(referencing: str, referenced: str) -> Question:
    return Question(
        f"deletion.{referencing}.repair_nullify",
        f"Can the foreign key of relation {referencing} referencing "
        f"{referenced} be set to null instead?",
        relation=referencing,
        section="deletion",
    )
